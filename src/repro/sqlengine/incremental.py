"""Incremental evaluation of qualifying per-source queries.

The per-source queries of pipeline step 3 are standing queries over a
single window relation. Two common shapes don't need re-execution on
every trigger:

* **identity** — ``select * from wrapper``: the answer *is* the window
  relation, which the incremental pipeline already maintains in place
  (:mod:`repro.streams.materialized`).
* **simple aggregates** — ``select avg(v), count(*) from wrapper
  [where <row predicate>]``: every aggregate in ``count/sum/avg/min/max``
  is maintainable under the window's append/evict deltas with O(1) work
  per element (``min``/``max`` degrade to a rescan only when the current
  extremum is evicted).

:func:`classify` inspects a compiled :class:`SelectPlan` and reports
which shape (if any) applies; :class:`IncrementalAggregateState` is the
running accumulator, fed row deltas by a
:class:`~repro.streams.materialized.WindowRelation`.

Equivalence contract: for every qualifying query the produced relation is
row-for-row identical to executing the plan against a freshly rebuilt
window relation (the property tests assert this). Queries that would
*fail* under the legacy executor (unknown columns, mixed-type sums, …)
must keep failing at query time — accumulators therefore never raise out
of the delta callbacks; they mark themselves unhealthy and the sensor
falls back to the legacy path, which re-raises the legacy error.
"""

from __future__ import annotations

import logging
from collections import deque
from dataclasses import dataclass
from typing import (
    Any, Callable, Dict, FrozenSet, List, Optional, Sequence, Tuple, Union,
)

from repro.sqlengine.ast_nodes import (
    ColumnRef, FunctionCall, Node, SelectItem, Star, contains_aggregate,
)
from repro.sqlengine.compiler import compile_expression, has_subquery
from repro.sqlengine.executor import (
    Catalog, Env, LazyRow, _Executor, _hashable, _truthy,
)
from repro.sqlengine.introspect import (
    dedupe_columns, expression_columns, expression_name,
)
from repro.sqlengine.planner import (
    HashJoinPlan, NestedLoopJoinPlan, ScanPlan, SelectPlan,
    SubqueryScanPlan,
)
from repro.sqlengine.relation import Relation
from repro.streams.materialized import RowListener, WindowRelation

logger = logging.getLogger("repro.sqlengine.incremental")

#: Aggregates maintainable under append/evict deltas.
INCREMENTAL_AGGREGATES = frozenset({"count", "sum", "avg", "min", "max"})

# -- ineligibility reason taxonomy ------------------------------------------
#
# Stable strings shared by this runtime classifier and the deploy-time
# plan pass (``repro.analysis.planpass``): keeping them in one place is
# what makes the static verdict and the runtime attachment agree by
# construction. Each names the *first* disqualifying feature found; the
# set doubles as the worklist for extending delta maintenance.

REASON_SET_OPERATION = "set-operation"
# Historical: plain GROUP BY now classifies (grouped accumulator maps);
# the constant stays in the taxonomy because recorded verdicts and
# baselines reference it, but the classifier no longer emits it.
REASON_GROUP_BY = "group-by"
REASON_HAVING = "having"
REASON_ORDER_BY = "order-by"
REASON_DISTINCT = "distinct"
REASON_LIMIT_OFFSET = "limit-offset"
REASON_JOIN = "join-shape"
REASON_SUBQUERY = "subquery"
REASON_CONSTANT_SOURCE = "constant-source"
REASON_WHERE = "where-clause"
REASON_PROJECTION = "projection"
REASON_NON_INCREMENTAL_FUNCTION = "non-incremental-function"
REASON_EXPRESSION_ARGUMENT = "expression-argument"
# Reasons only the deploy-time pass can decide (window + schema context).
# ``time-window`` is historical as well: accumulators ride the window
# observer protocol, which time windows publish too, so the plan pass
# no longer rejects them.
REASON_TIME_WINDOW = "time-window"
REASON_UNKNOWN_SCHEMA = "unknown-schema"
REASON_UNKNOWN_COLUMN = "unknown-column"
REASON_TYPE_RISK = "type-risk"
REASON_DISABLED = "incremental-disabled"

#: Every reason string the classifier or the plan pass may report.
INELIGIBILITY_REASONS = frozenset({
    REASON_SET_OPERATION, REASON_GROUP_BY, REASON_HAVING, REASON_ORDER_BY,
    REASON_DISTINCT, REASON_LIMIT_OFFSET, REASON_JOIN, REASON_SUBQUERY,
    REASON_CONSTANT_SOURCE, REASON_WHERE, REASON_PROJECTION,
    REASON_NON_INCREMENTAL_FUNCTION, REASON_EXPRESSION_ARGUMENT,
    REASON_TIME_WINDOW, REASON_UNKNOWN_SCHEMA, REASON_UNKNOWN_COLUMN,
    REASON_TYPE_RISK, REASON_DISABLED,
})


@dataclass(frozen=True)
class IdentityQuery:
    """``select * from wrapper`` — answerable by the window relation."""
    binding: str


@dataclass(frozen=True)
class AggregateItem:
    """One select item of a qualifying aggregate query."""
    kind: str                    # "count_star", "count", "sum", "avg", ...
    column: Optional[str]        # argument column name (None for count(*))


@dataclass(frozen=True)
class AggregateQuery:
    """A qualifying single-table aggregate query."""
    binding: str
    items: Tuple[AggregateItem, ...]
    columns: Tuple[str, ...]               # output column names, deduped
    where: Optional[Node]
    referenced: FrozenSet[str]             # every column the query reads


@dataclass(frozen=True)
class GroupedAggregateQuery:
    """A qualifying single-table GROUP BY aggregate query.

    ``keys`` are the GROUP BY column names (plain column references
    only); ``items`` reuse :class:`AggregateItem` with the extra kind
    ``"column"`` for plain column select items, which — matching the
    legacy executor's ``eval_group`` — read the group's first row.
    """
    binding: str
    keys: Tuple[str, ...]
    items: Tuple[AggregateItem, ...]
    columns: Tuple[str, ...]               # output column names, deduped
    where: Optional[Node]
    referenced: FrozenSet[str]             # every column the query reads


@dataclass(frozen=True)
class JoinQuery:
    """A qualifying two-source inner equi-join stream query.

    Wraps the full :class:`SelectPlan` (whose source is a
    :class:`HashJoinPlan` over two scans); key, residual, WHERE and
    projection closures are compiled positionally by
    :class:`IncrementalJoinState` once the two window schemas are known.
    """
    plan: SelectPlan
    left_table: str
    left_binding: str
    right_table: str
    right_binding: str


Classified = Union[IdentityQuery, AggregateQuery, GroupedAggregateQuery]


def classify(plan: SelectPlan) -> Optional[Classified]:
    """Decide whether ``plan`` qualifies for an incremental fast path.

    Returns an :class:`IdentityQuery`, an :class:`AggregateQuery`, or
    ``None`` when only the generic executor can answer it. The check is
    deliberately conservative: any feature with semantics the
    accumulators don't replicate exactly (joins, subqueries, DISTINCT,
    GROUP BY, ORDER BY/LIMIT, expressions inside aggregates) disqualifies
    the plan.
    """
    return classify_with_reason(plan)[0]


def classify_with_reason(plan: SelectPlan
                         ) -> Tuple[Optional[Classified], Optional[str]]:
    """:func:`classify` plus the taxonomy reason when disqualified.

    Returns ``(classified, None)`` for qualifying plans and
    ``(None, reason)`` otherwise, where ``reason`` is one of the
    ``REASON_*`` constants naming the first disqualifying feature.
    """
    if not isinstance(plan.source, ScanPlan):
        if isinstance(plan.source, (NestedLoopJoinPlan, HashJoinPlan)):
            return None, REASON_JOIN
        if isinstance(plan.source, SubqueryScanPlan):
            return None, REASON_SUBQUERY
        return None, REASON_CONSTANT_SOURCE
    if plan.set_operations:
        return None, REASON_SET_OPERATION
    if plan.having is not None:
        return None, REASON_HAVING
    if plan.order_by:
        return None, REASON_ORDER_BY
    if plan.distinct:
        return None, REASON_DISTINCT
    if plan.limit is not None or plan.offset is not None:
        return None, REASON_LIMIT_OFFSET
    binding = plan.source.binding

    if plan.group_by:
        return _classify_grouped(plan, binding)
    if not plan.is_aggregate:
        return _classify_identity(plan, binding)
    return _classify_aggregate(plan, binding)


def _classify_identity(plan: SelectPlan, binding: str
                       ) -> Tuple[Optional[IdentityQuery], Optional[str]]:
    if plan.where is not None:
        return None, REASON_WHERE
    if len(plan.items) != 1:
        return None, REASON_PROJECTION
    expr = plan.items[0].expression
    if not isinstance(expr, Star):
        return None, REASON_PROJECTION
    if expr.table is not None and expr.table != binding:
        return None, REASON_PROJECTION
    return IdentityQuery(binding), None


def _classify_aggregate(plan: SelectPlan, binding: str
                        ) -> Tuple[Optional[AggregateQuery], Optional[str]]:
    referenced: List[str] = []
    items: List[AggregateItem] = []
    for item in plan.items:
        parsed, reason = _classify_item(item, binding)
        if parsed is None:
            return None, reason
        items.append(parsed)
        if parsed.column is not None:
            referenced.append(parsed.column)

    if plan.where is not None:
        if has_subquery(plan.where):
            return None, REASON_SUBQUERY
        if contains_aggregate(plan.where):
            return None, REASON_WHERE
        for ref in expression_columns(plan.where):
            if ref.table is not None and ref.table != binding:
                return None, REASON_WHERE
            referenced.append(ref.name)

    columns = dedupe_columns([
        item.alias or expression_name(item.expression)
        for item in plan.items
    ])
    return AggregateQuery(
        binding=binding,
        items=tuple(items),
        columns=tuple(columns),
        where=plan.where,
        referenced=frozenset(referenced),
    ), None


def _classify_grouped(plan: SelectPlan, binding: str
                      ) -> Tuple[Optional[GroupedAggregateQuery],
                                 Optional[str]]:
    keys: List[str] = []
    for expr in plan.group_by:
        if not isinstance(expr, ColumnRef):
            return None, REASON_EXPRESSION_ARGUMENT
        if expr.table is not None and expr.table != binding:
            return None, REASON_EXPRESSION_ARGUMENT
        keys.append(expr.name)

    referenced: List[str] = list(keys)
    items: List[AggregateItem] = []
    for item in plan.items:
        expr = item.expression
        if isinstance(expr, ColumnRef):
            if expr.table is not None and expr.table != binding:
                return None, REASON_PROJECTION
            items.append(AggregateItem("column", expr.name))
            referenced.append(expr.name)
            continue
        parsed, reason = _classify_item(item, binding)
        if parsed is None:
            return None, reason
        items.append(parsed)
        if parsed.column is not None:
            referenced.append(parsed.column)

    if plan.where is not None:
        if has_subquery(plan.where):
            return None, REASON_SUBQUERY
        if contains_aggregate(plan.where):
            return None, REASON_WHERE
        for ref in expression_columns(plan.where):
            if ref.table is not None and ref.table != binding:
                return None, REASON_WHERE
            referenced.append(ref.name)

    columns = dedupe_columns([
        item.alias or expression_name(item.expression)
        for item in plan.items
    ])
    return GroupedAggregateQuery(
        binding=binding,
        keys=tuple(keys),
        items=tuple(items),
        columns=tuple(columns),
        where=plan.where,
        referenced=frozenset(referenced),
    ), None


def classify_join(plan: SelectPlan) -> Optional[JoinQuery]:
    """Whether ``plan`` is a delta-maintainable two-source equi-join.

    Qualifying shape: ``SELECT <row-local items> FROM a JOIN b ON
    <equi-keys> [WHERE <row-local predicate>]`` — an *inner* hash join
    of two plain scans, no aggregation and no suffix clauses. Matched
    pairs are then index-maintainable under both windows' deltas; every
    other join shape re-executes through the (compiled or legacy)
    executor.
    """
    source = plan.source
    if not isinstance(source, HashJoinPlan) or source.kind != "inner":
        return None
    if not isinstance(source.left, ScanPlan) \
            or not isinstance(source.right, ScanPlan):
        return None
    if plan.set_operations or plan.group_by or plan.having is not None \
            or plan.order_by or plan.distinct \
            or plan.limit is not None or plan.offset is not None \
            or plan.is_aggregate:
        return None
    nodes: List[Node] = [item.expression for item in plan.items
                         if not isinstance(item.expression, Star)]
    nodes.extend(node for node in (plan.where, source.residual)
                 if node is not None)
    nodes.extend(source.left_keys)
    nodes.extend(source.right_keys)
    for node in nodes:
        if has_subquery(node) or contains_aggregate(node):
            return None
    return JoinQuery(
        plan=plan,
        left_table=source.left.table,
        left_binding=source.left.binding,
        right_table=source.right.table,
        right_binding=source.right.binding,
    )


def _classify_item(item: SelectItem, binding: str
                   ) -> Tuple[Optional[AggregateItem], Optional[str]]:
    expr = item.expression
    if not isinstance(expr, FunctionCall):
        return None, REASON_PROJECTION
    if expr.distinct:
        return None, REASON_DISTINCT
    if expr.name not in INCREMENTAL_AGGREGATES:
        return None, REASON_NON_INCREMENTAL_FUNCTION
    if expr.star:
        # Only count(*) is legal SQL; anything else must keep raising
        # through the generic path.
        if expr.name != "count":
            return None, REASON_EXPRESSION_ARGUMENT
        return AggregateItem("count_star", None), None
    if len(expr.args) != 1:
        return None, REASON_EXPRESSION_ARGUMENT
    arg = expr.args[0]
    if not isinstance(arg, ColumnRef):
        return None, REASON_EXPRESSION_ARGUMENT
    if arg.table is not None and arg.table != binding:
        return None, REASON_EXPRESSION_ARGUMENT
    return AggregateItem(expr.name, arg.name), None


# --------------------------------------------------------------------------
# Running accumulators
# --------------------------------------------------------------------------


class _ItemState:
    """Mutable accumulator for one :class:`AggregateItem`."""

    __slots__ = ("kind", "position", "nonnull", "total", "extremum", "dirty")

    def __init__(self, kind: str, position: Optional[int]) -> None:
        self.kind = kind
        self.position = position          # column position in the relation
        self.nonnull = 0                  # non-null inputs currently included
        self.total: Any = 0               # running sum (sum/avg)
        self.extremum: Any = None         # current min/max
        self.dirty = False                # extremum evicted: rescan needed


class IncrementalAggregateState(RowListener):
    """Maintains one qualifying aggregate query under window deltas.

    Attached as a listener to the source's :class:`WindowRelation`; all
    callbacks run inside the owning SourceRuntime's lock, so no locking
    happens here. If any delta update fails (mixed-type arithmetic, a
    predicate raising, …) the state poisons itself (``healthy = False``)
    and stays poisoned: the sensor then routes the query through the
    legacy executor, which surfaces the same error at query time exactly
    like the non-incremental pipeline would.
    """

    def __init__(self, spec: AggregateQuery,
                 relation: WindowRelation,
                 label: str = "",
                 on_poison: Optional[Callable[[BaseException], None]] = None
                 ) -> None:
        self.spec = spec
        self.relation = relation
        self.healthy = True
        self.label = label                # query text, for the poison log
        self._on_poison = on_poison
        self.poison_cause: Optional[BaseException] = None
        self.updates = 0                  # delta applications (observability)
        self._included = 0                # rows passing WHERE
        self._binding = spec.binding
        self._index = relation._index
        # WHERE is compiled once; LIKE needs a live executor for its
        # pattern cache, hence the private throwaway instance.
        self._executor = _Executor(Catalog())
        self._where = (compile_expression(spec.where)
                       if spec.where is not None else None)
        self._items = [
            _ItemState(item.kind,
                       None if item.column is None
                       else self._index[item.column])
            for item in spec.items
        ]
        self.rows_reset(list(relation.rows))

    # -- RowListener protocol ----------------------------------------------

    def row_appended(self, row: Tuple[Any, ...]) -> None:
        if not self.healthy:
            return
        try:
            if self._passes(row):
                self._include(row)
            self.updates += 1
        except Exception as exc:
            self._poison(exc)

    def row_evicted(self, row: Tuple[Any, ...]) -> None:
        if not self.healthy:
            return
        try:
            if self._passes(row):
                self._exclude(row)
            self.updates += 1
        except Exception as exc:
            self._poison(exc)

    def rows_reset(self, rows: Sequence[Tuple[Any, ...]]) -> None:
        if not self.healthy:
            return
        try:
            self._included = 0
            for state in self._items:
                state.nonnull = 0
                state.total = 0
                state.extremum = None
                state.dirty = False
            for row in rows:
                if self._passes(row):
                    self._include(row)
            self.updates += 1
        except Exception as exc:
            self._poison(exc)

    def _poison(self, exc: BaseException) -> None:
        """Flip to the legacy path, loudly.

        The fallback itself is by design (the legacy executor re-raises
        the real error at query time), but it must be *observable*: the
        triggering query is logged exactly once per accumulator and the
        owner's ``fastpath_poisoned_total`` counter is bumped through
        ``on_poison`` — a silently swallowed poisoning reads as "the
        optimization is on" while every query runs the slow path.
        """
        if not self.healthy:
            return
        self.healthy = False
        self.poison_cause = exc
        logger.warning(
            "incremental accumulator poisoned; falling back to the legacy "
            "executor for %s (%s: %s)",
            self.label or "<unlabeled query>", type(exc).__name__, exc,
        )
        if self._on_poison is not None:
            try:
                self._on_poison(exc)
            except Exception:
                # The counter callback must never mask the original
                # poisoning (which is already logged above).
                logger.exception("on_poison callback failed")

    # -- delta application --------------------------------------------------

    def _passes(self, row: Tuple[Any, ...]) -> bool:
        if self._where is None:
            return True
        env = Env.root({self._binding: LazyRow(self._index, row)})
        return _truthy(self._where(self._executor, env))

    def _include(self, row: Tuple[Any, ...]) -> None:
        self._included += 1
        for state in self._items:
            if state.kind == "count_star":
                continue
            value = row[state.position]
            if value is None:
                continue
            state.nonnull += 1
            if state.kind in ("sum", "avg"):
                # Always fold into the 0-seeded total: sum() over
                # non-numeric values must raise exactly like the legacy
                # aggregate does.
                state.total = state.total + value
            elif not state.dirty:
                if state.nonnull == 1:
                    state.extremum = value
                elif state.kind == "min":
                    if value < state.extremum:
                        state.extremum = value
                elif value > state.extremum:
                    state.extremum = value

    def _exclude(self, row: Tuple[Any, ...]) -> None:
        self._included -= 1
        for state in self._items:
            if state.kind == "count_star":
                continue
            value = row[state.position]
            if value is None:
                continue
            state.nonnull -= 1
            if state.kind in ("sum", "avg"):
                state.total = state.total - value if state.nonnull else 0
            elif state.nonnull == 0:
                state.extremum = None
                state.dirty = False
            elif not state.dirty and value == state.extremum:
                # The extremum left the window; only a rescan of the
                # retained rows can find the runner-up.
                state.dirty = True

    # -- result ------------------------------------------------------------

    def snapshot(self) -> Relation:
        """The query's current answer as a single-row relation.

        May raise (a ``min``/``max`` rescan inherits the executor's
        mixed-type comparison errors); callers must treat a raising
        snapshot as poisoning and fall back to the legacy path.
        """
        values: List[Any] = []
        for state in self._items:
            values.append(self._value_of(state))
        return Relation(self.spec.columns, [tuple(values)])

    def _value_of(self, state: _ItemState) -> Any:
        if state.kind == "count_star":
            return self._included
        if state.kind == "count":
            return state.nonnull
        if state.nonnull == 0:
            return None
        if state.kind == "sum":
            return state.total
        if state.kind == "avg":
            return state.total / state.nonnull
        if state.dirty:
            self._rescan(state)
        return state.extremum

    def _rescan(self, state: _ItemState) -> None:
        best: Any = None
        for row in self.relation.rows:
            if not self._passes(row):
                continue
            value = row[state.position]
            if value is None:
                continue
            if best is None:
                best = value
            elif state.kind == "min":
                if value < best:
                    best = value
            elif value > best:
                best = value
        state.extremum = best
        state.dirty = False

    def __repr__(self) -> str:
        return (f"IncrementalAggregateState({self.spec.columns}, "
                f"included={self._included}, healthy={self.healthy})")


# --------------------------------------------------------------------------
# Grouped accumulators
# --------------------------------------------------------------------------


class _GroupState:
    """Per-group accumulators plus the group's included rows.

    The rows are kept (as references into the window's tuples) because
    three things need them: ``min``/``max`` rescans after an extremum
    eviction, plain-column select items (the group's *first* row, per
    ``eval_group``), and output ordering — the legacy executor emits
    groups in first-seen window order, which after evictions is the
    order of each group's oldest surviving row.
    """

    __slots__ = ("rows", "items")

    def __init__(self, items: List[_ItemState]) -> None:
        self.rows: "deque[Tuple[int, Tuple[Any, ...]]]" = deque()
        self.items = items


class GroupedAggregateState(RowListener):
    """Maintains a qualifying GROUP BY query under window deltas.

    One accumulator map keyed on the group-key tuple; appends update the
    row's group in O(1) (plus group creation), evictions retract from it
    and delete the group when its last row leaves. Equivalence contract
    and poisoning behaviour are identical to
    :class:`IncrementalAggregateState`.
    """

    def __init__(self, spec: GroupedAggregateQuery,
                 relation: WindowRelation,
                 label: str = "",
                 on_poison: Optional[Callable[[BaseException], None]] = None
                 ) -> None:
        self.spec = spec
        self.relation = relation
        self.healthy = True
        self.label = label
        self._on_poison = on_poison
        self.poison_cause: Optional[BaseException] = None
        self.updates = 0
        self._binding = spec.binding
        self._index = relation._index
        self._executor = _Executor(Catalog())
        self._where = (compile_expression(spec.where)
                       if spec.where is not None else None)
        self._key_positions = [self._index[key] for key in spec.keys]
        self._item_specs = [
            (item.kind,
             None if item.column is None else self._index[item.column])
            for item in spec.items
        ]
        self._groups: Dict[Tuple[Any, ...], _GroupState] = {}
        self._seq = 0
        self.rows_reset(list(relation.rows))

    # -- RowListener protocol ----------------------------------------------

    def row_appended(self, row: Tuple[Any, ...]) -> None:
        if not self.healthy:
            return
        try:
            if self._passes(row):
                self._include(row)
            self.updates += 1
        except Exception as exc:
            self._poison(exc)

    def row_evicted(self, row: Tuple[Any, ...]) -> None:
        if not self.healthy:
            return
        try:
            if self._passes(row):
                self._exclude(row)
            self.updates += 1
        except Exception as exc:
            self._poison(exc)

    def rows_reset(self, rows: Sequence[Tuple[Any, ...]]) -> None:
        if not self.healthy:
            return
        try:
            self._groups.clear()
            for row in rows:
                if self._passes(row):
                    self._include(row)
            self.updates += 1
        except Exception as exc:
            self._poison(exc)

    _poison = IncrementalAggregateState._poison
    _passes = IncrementalAggregateState._passes

    # -- delta application --------------------------------------------------

    def _key_of(self, row: Tuple[Any, ...]) -> Tuple[Any, ...]:
        return tuple(_hashable(row[pos]) for pos in self._key_positions)

    def _include(self, row: Tuple[Any, ...]) -> None:
        group = self._groups.get(self._key_of(row))
        if group is None:
            group = _GroupState([_ItemState(kind, position)
                                 for kind, position in self._item_specs])
            self._groups[self._key_of(row)] = group
        self._seq += 1
        group.rows.append((self._seq, row))
        for state in group.items:
            if state.kind in ("count_star", "column"):
                continue
            value = row[state.position]
            if value is None:
                continue
            state.nonnull += 1
            if state.kind in ("sum", "avg"):
                state.total = state.total + value
            elif not state.dirty:
                if state.nonnull == 1:
                    state.extremum = value
                elif state.kind == "min":
                    if value < state.extremum:
                        state.extremum = value
                elif value > state.extremum:
                    state.extremum = value

    def _exclude(self, row: Tuple[Any, ...]) -> None:
        key = self._key_of(row)
        group = self._groups[key]
        # Window evictions are strictly FIFO, so the evicted row is this
        # group's oldest.
        group.rows.popleft()
        if not group.rows:
            del self._groups[key]
            return
        for state in group.items:
            if state.kind in ("count_star", "column"):
                continue
            value = row[state.position]
            if value is None:
                continue
            state.nonnull -= 1
            if state.kind in ("sum", "avg"):
                state.total = state.total - value if state.nonnull else 0
            elif state.nonnull == 0:
                state.extremum = None
                state.dirty = False
            elif not state.dirty and value == state.extremum:
                state.dirty = True

    # -- result ------------------------------------------------------------

    def snapshot(self) -> Relation:
        """The query's current answer, one row per live group.

        Groups are emitted in the order of their oldest surviving row —
        exactly the legacy executor's first-seen insertion order over
        the current window contents.
        """
        ordered = sorted(self._groups.values(),
                         key=lambda group: group.rows[0][0])
        rows = []
        for group in ordered:
            values: List[Any] = []
            for state in group.items:
                values.append(self._value_of(group, state))
            rows.append(tuple(values))
        return Relation(self.spec.columns, rows)

    def _value_of(self, group: _GroupState, state: _ItemState) -> Any:
        if state.kind == "count_star":
            return len(group.rows)
        if state.kind == "column":
            return group.rows[0][1][state.position]
        if state.kind == "count":
            return state.nonnull
        if state.nonnull == 0:
            return None
        if state.kind == "sum":
            return state.total
        if state.kind == "avg":
            return state.total / state.nonnull
        if state.dirty:
            self._rescan(group, state)
        return state.extremum

    def _rescan(self, group: _GroupState, state: _ItemState) -> None:
        best: Any = None
        for __, row in group.rows:
            value = row[state.position]
            if value is None:
                continue
            if best is None:
                best = value
            elif state.kind == "min":
                if value < best:
                    best = value
            elif value > best:
                best = value
        state.extremum = best
        state.dirty = False

    def __repr__(self) -> str:
        return (f"GroupedAggregateState({self.spec.columns}, "
                f"groups={len(self._groups)}, healthy={self.healthy})")


# --------------------------------------------------------------------------
# Delta-propagating equi-joins
# --------------------------------------------------------------------------


class _JoinSide(RowListener):
    """Routes one window's deltas into the join state, tagged by side."""

    __slots__ = ("_state", "_left")

    def __init__(self, state: "IncrementalJoinState", left: bool) -> None:
        self._state = state
        self._left = left

    def row_appended(self, row: Tuple[Any, ...]) -> None:
        self._state.side_appended(self._left, row)

    def row_evicted(self, row: Tuple[Any, ...]) -> None:
        self._state.side_evicted(self._left, row)

    def rows_reset(self, rows: Sequence[Tuple[Any, ...]]) -> None:
        self._state.side_reset(self._left, rows)


class _JoinEntry:
    """One live left-side row: its key and its current matched output."""

    __slots__ = ("row", "key", "matches")

    def __init__(self, row: Tuple[Any, ...],
                 key: Optional[Tuple[Any, ...]]) -> None:
        self.row = row
        self.key = key                    # None encodes a NULL join key
        # rseq -> projected output row, in right-arrival order.
        self.matches: Dict[int, Tuple[Any, ...]] = {}


class IncrementalJoinState:
    """Maintains a two-source inner equi-join under both windows' deltas.

    Hash indexes on the join key map each arriving row to its matches on
    the other side, so a delta costs O(matches) instead of re-joining
    both windows. Residual predicate, WHERE and projection are applied
    once per surviving pair and the output row cached; the snapshot is a
    concatenation in (left-arrival, right-arrival) order — bit-identical
    to the legacy hash join's probe order.

    Not thread-safe across sources: deltas arrive under each source's
    own lock, so the sensor only attaches this state in synchronous
    (zero-copy) containers where all windows mutate on the caller's
    thread. Like the accumulators, any failure poisons the state and the
    stream query returns to per-trigger execution.
    """

    def __init__(self, spec: JoinQuery,
                 left: WindowRelation, right: WindowRelation,
                 label: str = "",
                 on_poison: Optional[Callable[[BaseException], None]] = None
                 ) -> None:
        from repro.sqlengine.physical import _Layout, _compile_row

        self.spec = spec
        self.healthy = True
        self.label = label
        self._on_poison = on_poison
        self.poison_cause: Optional[BaseException] = None
        self.updates = 0
        self._left_relation = left
        self._right_relation = right

        plan = spec.plan
        source = plan.source
        assert isinstance(source, HashJoinPlan)
        left_layout = _Layout()
        left_layout.add(spec.left_binding, left.columns)
        right_layout = _Layout()
        right_layout.add(spec.right_binding, right.columns)
        layout = _Layout.merge(left_layout, right_layout)
        like_cache: Dict[str, Any] = {}

        # physical.Unsupported propagates to the caller: an unresolvable
        # column means no attach and the executor raises at query time.
        self._left_keys = [_compile_row(k, left_layout, like_cache)
                           for k in source.left_keys]
        self._right_keys = [_compile_row(k, right_layout, like_cache)
                            for k in source.right_keys]
        self._residual = (None if source.residual is None else
                          _compile_row(source.residual, layout, like_cache))
        self._where = (None if plan.where is None else
                       _compile_row(plan.where, layout, like_cache))
        self._parts = self._projection_parts(plan, layout, like_cache)
        self.columns = tuple(self._output_columns(plan, layout))

        self._left_entries: Dict[int, _JoinEntry] = {}
        self._right_rows: Dict[int, Tuple[Any, ...]] = {}
        self._left_index: Dict[Tuple[Any, ...], "deque[int]"] = {}
        self._right_index: Dict[Tuple[Any, ...], "deque[int]"] = {}
        self._lseq = 0
        self._rseq = 0
        self.listeners = (_JoinSide(self, True), _JoinSide(self, False))
        left.add_listener(self.listeners[0])
        right.add_listener(self.listeners[1])
        self.side_reset(True, list(left.rows))
        self.side_reset(False, list(right.rows))

    def detach(self) -> None:
        self._left_relation.remove_listener(self.listeners[0])
        self._right_relation.remove_listener(self.listeners[1])

    # -- compile helpers ----------------------------------------------------

    @staticmethod
    def _projection_parts(plan: SelectPlan, layout: Any, like_cache: Dict):
        from repro.sqlengine.physical import Unsupported, _compile_row

        parts: List[Tuple[str, Any, Any]] = []
        for item in plan.items:
            expr = item.expression
            if isinstance(expr, Star):
                bindings = ([expr.table] if expr.table is not None
                            else list(layout.order))
                for binding in bindings:
                    if binding not in layout.segments:
                        raise Unsupported(f"unknown table in {binding}.*")
                    offset, cols = layout.segments[binding]
                    parts.append(("slice", offset, offset + len(cols)))
            else:
                parts.append(
                    ("expr", _compile_row(expr, layout, like_cache), None))
        return parts

    @staticmethod
    def _output_columns(plan: SelectPlan, layout: Any) -> List[str]:
        names: List[str] = []
        for item in plan.items:
            expr = item.expression
            if isinstance(expr, Star):
                bindings = ([expr.table] if expr.table is not None
                            else list(layout.order))
                for binding in bindings:
                    names.extend(layout.segments[binding][1])
            elif item.alias:
                names.append(item.alias)
            else:
                names.append(expression_name(expr))
        return dedupe_columns(names)

    # -- delta application --------------------------------------------------

    _poison = IncrementalAggregateState._poison

    def side_appended(self, left: bool, row: Tuple[Any, ...]) -> None:
        if not self.healthy:
            return
        try:
            if left:
                self._append_left(row)
            else:
                self._append_right(row)
            self.updates += 1
        except Exception as exc:
            self._poison(exc)

    def side_evicted(self, left: bool, row: Tuple[Any, ...]) -> None:
        if not self.healthy:
            return
        try:
            if left:
                self._evict_left()
            else:
                self._evict_right()
            self.updates += 1
        except Exception as exc:
            self._poison(exc)

    def side_reset(self, left: bool, rows: Sequence[Tuple[Any, ...]]) -> None:
        if not self.healthy:
            return
        try:
            if left:
                self._left_entries.clear()
                self._left_index.clear()
                for row in rows:
                    self._append_left(row)
            else:
                self._right_rows.clear()
                self._right_index.clear()
                for entry in self._left_entries.values():
                    entry.matches.clear()
                for row in rows:
                    self._append_right(row)
            self.updates += 1
        except Exception as exc:
            self._poison(exc)

    def _key(self, fns, row: Tuple[Any, ...]) -> Optional[Tuple[Any, ...]]:
        key = tuple(_hashable(fn(row)) for fn in fns)
        return None if any(part is None for part in key) else key

    def _append_left(self, row: Tuple[Any, ...]) -> None:
        self._lseq += 1
        lseq = self._lseq
        entry = _JoinEntry(row, self._key(self._left_keys, row))
        self._left_entries[lseq] = entry
        if entry.key is None:
            return
        self._left_index.setdefault(entry.key, deque()).append(lseq)
        for rseq in self._right_index.get(entry.key, ()):
            self._pair(entry, rseq, self._right_rows[rseq])

    def _append_right(self, row: Tuple[Any, ...]) -> None:
        self._rseq += 1
        rseq = self._rseq
        self._right_rows[rseq] = row
        key = self._key(self._right_keys, row)
        if key is None:
            return
        self._right_index.setdefault(key, deque()).append(rseq)
        for lseq in self._left_index.get(key, ()):
            self._pair(self._left_entries[lseq], rseq, row)

    def _pair(self, entry: _JoinEntry, rseq: int,
              rrow: Tuple[Any, ...]) -> None:
        merged = entry.row + rrow
        if self._residual is not None \
                and not _truthy(self._residual(merged)):
            return
        if self._where is not None and not _truthy(self._where(merged)):
            return
        values: List[Any] = []
        for kind, a, b in self._parts:
            if kind == "slice":
                values.extend(merged[a:b])
            else:
                values.append(a(merged))
        entry.matches[rseq] = tuple(values)

    def _evict_left(self) -> None:
        # Strict-FIFO windows evict their oldest row.
        lseq = next(iter(self._left_entries))
        entry = self._left_entries.pop(lseq)
        if entry.key is not None:
            index = self._left_index[entry.key]
            index.popleft()
            if not index:
                del self._left_index[entry.key]

    def _evict_right(self) -> None:
        rseq = next(iter(self._right_rows))
        row = self._right_rows.pop(rseq)
        key = self._key(self._right_keys, row)
        if key is None:
            return
        index = self._right_index[key]
        index.popleft()
        if not index:
            del self._right_index[key]
        for lseq in self._left_index.get(key, ()):
            self._left_entries[lseq].matches.pop(rseq, None)

    # -- result ------------------------------------------------------------

    def snapshot(self) -> Relation:
        """The join's current answer, in legacy probe order."""
        rows: List[Tuple[Any, ...]] = []
        for entry in self._left_entries.values():
            rows.extend(entry.matches.values())
        relation = Relation(self.columns)
        relation.rows = rows
        return relation

    def __repr__(self) -> str:
        return (f"IncrementalJoinState({self.columns}, "
                f"left={len(self._left_entries)}, "
                f"right={len(self._right_rows)}, healthy={self.healthy})")
