"""Token-level SQL rewriting.

Stream-source queries reference their raw input by the reserved table name
``WRAPPER`` (paper, Section 2: "SQL queries which refer to the input
streams by the reserved keyword WRAPPER"). Before execution the container
rewrites that name — and, for the output query, the stream-source aliases —
to the internal storage table names. Rewriting happens on the token stream
so comments, strings, and column references named ``wrapper`` survive
untouched.
"""

from __future__ import annotations

from typing import Dict, List, Set

from repro.sqlengine.ast_nodes import SelectStatement, TableRef
from repro.sqlengine.lexer import Token, TokenType, tokenize
from repro.sqlengine.parser import parse_select

#: The reserved input-stream table name from the paper.
WRAPPER_TABLE = "wrapper"


def referenced_tables(sql: str) -> Set[str]:
    """The set of table names a query reads (recursively, incl. subqueries)."""
    statement = parse_select(sql)
    return statement_tables(statement)


def statement_tables(statement: SelectStatement) -> Set[str]:
    tables: Set[str] = set()
    for node in statement.walk():
        if isinstance(node, TableRef):
            tables.add(node.name)
    return tables


def rewrite_table_names(sql: str, mapping: Dict[str, str]) -> str:
    """Replace table names per ``mapping`` (case-insensitive keys).

    Only identifiers in *table position* are rewritten: the identifier
    directly following ``FROM``, ``JOIN`` or a comma inside a FROM list.
    Column references such as ``wrapper.temperature`` have their qualifier
    rewritten too, since the qualifier names the same table.
    """
    lowered = {key.lower(): value for key, value in mapping.items()}
    tokens = tokenize(sql)
    out: List[str] = []
    expecting_table = False
    from_depth: List[int] = []  # parenthesis depths where a FROM list is open
    depth = 0

    for index, token in enumerate(tokens):
        if token.type is TokenType.END:
            break
        text = _render(token)

        if token.type is TokenType.OPERATOR:
            if token.value == "(":
                depth += 1
            elif token.value == ")":
                depth -= 1
                while from_depth and from_depth[-1] > depth:
                    from_depth.pop()
            elif token.value == "," and from_depth and from_depth[-1] == depth:
                expecting_table = True
                out.append(text)
                continue

        if token.type is TokenType.KEYWORD:
            if token.value == "from":
                expecting_table = True
                from_depth.append(depth)
                out.append(text)
                continue
            if token.value == "join":
                expecting_table = True
                out.append(text)
                continue
            if token.value in ("where", "group", "having", "order", "limit"):
                if from_depth and from_depth[-1] == depth:
                    from_depth.pop()
                expecting_table = False
            elif token.value == "on":
                expecting_table = False

        if token.type is TokenType.IDENTIFIER:
            replacement = lowered.get(token.value)
            if expecting_table and replacement is not None:
                out.append(replacement)
                expecting_table = False
                continue
            if replacement is not None and _is_qualifier(tokens, index):
                out.append(replacement)
                continue
            if expecting_table:
                expecting_table = False

        out.append(text)

    return _join(out)


def _is_qualifier(tokens: List[Token], index: int) -> bool:
    """True when ``tokens[index]`` is the ``t`` of a ``t.column`` reference."""
    nxt = tokens[index + 1] if index + 1 < len(tokens) else None
    if nxt is None or not nxt.matches(TokenType.OPERATOR, "."):
        return False
    prev = tokens[index - 1] if index > 0 else None
    if prev is not None and prev.matches(TokenType.OPERATOR, "."):
        return False  # this identifier is itself a column name
    return True


def _render(token: Token) -> str:
    if token.type is TokenType.STRING:
        escaped = str(token.value).replace("'", "''")
        return f"'{escaped}'"
    if token.type is TokenType.BLOB:
        return f"X'{bytes(token.value).hex()}'"
    if token.type is TokenType.NUMBER:
        return repr(token.value)
    return str(token.value)


_NO_SPACE_BEFORE = {",", ")", "."}
_NO_SPACE_AFTER = {"(", "."}


def _join(parts: List[str]) -> str:
    pieces: List[str] = []
    previous = ""
    for part in parts:
        if pieces and part not in _NO_SPACE_BEFORE \
                and previous not in _NO_SPACE_AFTER:
            pieces.append(" ")
        pieces.append(part)
        previous = part
    return "".join(pieces)


def rewrite_wrapper(sql: str, table_name: str) -> str:
    """Convenience: rewrite the reserved ``WRAPPER`` table to ``table_name``."""
    return rewrite_table_names(sql, {WRAPPER_TABLE: table_name})
