"""Plan explanation.

Renders a logical plan as an indented tree — the observable face of the
"adaptive query execution plan": it shows which joins became hash joins,
where residual predicates remained, and how set operations stack.

Exposed to applications through
:meth:`repro.query.processor.QueryProcessor.explain` and the web
interface's ``/explain`` endpoint.
"""

from __future__ import annotations

from typing import List

from repro.sqlengine.ast_nodes import (
    BetweenExpr, BinaryOp, CaseExpr, CastExpr, ColumnRef, ExistsExpr,
    FunctionCall, InExpr, IsNullExpr, LikeExpr, Literal, Node,
    ScalarSubquery, Star, UnaryOp,
)
from repro.sqlengine.planner import (
    HashJoinPlan, NestedLoopJoinPlan, Plan, ScanPlan, SelectPlan,
    SubqueryScanPlan,
)


def expression_to_sql(node: Node) -> str:
    """Render an expression tree back to SQL-ish text (for EXPLAIN and
    error messages; not guaranteed to be re-parseable for every node)."""
    if isinstance(node, Literal):
        if node.value is None:
            return "NULL"
        if isinstance(node.value, str):
            escaped = node.value.replace("'", "''")
            return f"'{escaped}'"
        if isinstance(node.value, (bytes, bytearray)):
            return f"X'{bytes(node.value).hex()}'"
        if node.value is True:
            return "TRUE"
        if node.value is False:
            return "FALSE"
        return repr(node.value)
    if isinstance(node, ColumnRef):
        return str(node)
    if isinstance(node, Star):
        return f"{node.table}.*" if node.table else "*"
    if isinstance(node, UnaryOp):
        if node.op == "not":
            return f"NOT ({expression_to_sql(node.operand)})"
        return f"{node.op}{expression_to_sql(node.operand)}"
    if isinstance(node, BinaryOp):
        return (f"({expression_to_sql(node.left)} {node.op.upper()} "
                f"{expression_to_sql(node.right)})")
    if isinstance(node, FunctionCall):
        if node.star:
            return f"{node.name}(*)"
        inner = ", ".join(expression_to_sql(arg) for arg in node.args)
        distinct = "DISTINCT " if node.distinct else ""
        return f"{node.name}({distinct}{inner})"
    if isinstance(node, InExpr):
        negated = "NOT " if node.negated else ""
        if node.subquery is not None:
            return (f"{expression_to_sql(node.operand)} {negated}"
                    f"IN (<subquery>)")
        options = ", ".join(expression_to_sql(o) for o in node.options or ())
        return f"{expression_to_sql(node.operand)} {negated}IN ({options})"
    if isinstance(node, BetweenExpr):
        negated = "NOT " if node.negated else ""
        return (f"{expression_to_sql(node.operand)} {negated}BETWEEN "
                f"{expression_to_sql(node.low)} AND "
                f"{expression_to_sql(node.high)}")
    if isinstance(node, LikeExpr):
        negated = "NOT " if node.negated else ""
        return (f"{expression_to_sql(node.operand)} {negated}LIKE "
                f"{expression_to_sql(node.pattern)}")
    if isinstance(node, IsNullExpr):
        negated = "NOT " if node.negated else ""
        return f"{expression_to_sql(node.operand)} IS {negated}NULL"
    if isinstance(node, ExistsExpr):
        negated = "NOT " if node.negated else ""
        return f"{negated}EXISTS (<subquery>)"
    if isinstance(node, ScalarSubquery):
        return "(<subquery>)"
    if isinstance(node, CaseExpr):
        return "CASE ... END"
    if isinstance(node, CastExpr):
        return (f"CAST({expression_to_sql(node.operand)} "
                f"AS {node.target.upper()})")
    return f"<{type(node).__name__}>"


def explain_plan(plan: SelectPlan) -> str:
    """Indented-tree rendering of a logical plan."""
    lines: List[str] = []
    _explain_select(plan, lines, 0)
    return "\n".join(lines)


def _emit(lines: List[str], depth: int, text: str) -> None:
    lines.append("  " * depth + text)


def _explain_select(plan: SelectPlan, lines: List[str], depth: int) -> None:
    pieces = []
    if plan.distinct:
        pieces.append("DISTINCT")
    if plan.is_aggregate:
        pieces.append("AGGREGATE" + (
            f" BY [{', '.join(expression_to_sql(g) for g in plan.group_by)}]"
            if plan.group_by else ""
        ))
    if plan.order_by:
        directions = ", ".join(
            expression_to_sql(item.expression)
            + ("" if item.ascending else " DESC")
            for item in plan.order_by
        )
        pieces.append(f"ORDER BY {directions}")
    if plan.limit is not None:
        pieces.append(f"LIMIT {plan.limit}")
    if plan.offset is not None:
        pieces.append(f"OFFSET {plan.offset}")
    header = "SELECT" + (f" [{' | '.join(pieces)}]" if pieces else "")
    _emit(lines, depth, header)

    columns = ", ".join(
        (item.alias or expression_to_sql(item.expression))
        for item in plan.items
    )
    _emit(lines, depth + 1, f"project: {columns}")
    if plan.where is not None:
        _emit(lines, depth + 1, f"filter: {expression_to_sql(plan.where)}")
    if plan.having is not None:
        _emit(lines, depth + 1, f"having: {expression_to_sql(plan.having)}")
    if plan.source is not None:
        _explain_source(plan.source, lines, depth + 1)
    else:
        _emit(lines, depth + 1, "source: <constant row>")
    for op_name, all_flag, right in plan.set_operations:
        suffix = " ALL" if all_flag else ""
        _emit(lines, depth + 1, f"{op_name.upper()}{suffix}:")
        _explain_select(right, lines, depth + 2)


def _explain_source(plan: Plan, lines: List[str], depth: int) -> None:
    if isinstance(plan, ScanPlan):
        alias = "" if plan.binding == plan.table else f" AS {plan.binding}"
        _emit(lines, depth, f"SCAN {plan.table}{alias}")
    elif isinstance(plan, SubqueryScanPlan):
        _emit(lines, depth, f"DERIVED {plan.binding}:")
        _explain_select(plan.plan, lines, depth + 1)
    elif isinstance(plan, HashJoinPlan):
        keys = ", ".join(
            f"{expression_to_sql(l)} = {expression_to_sql(r)}"
            for l, r in zip(plan.left_keys, plan.right_keys)
        )
        _emit(lines, depth, f"HASH JOIN [{plan.kind}] on {keys}")
        if plan.residual is not None:
            _emit(lines, depth + 1,
                  f"residual: {expression_to_sql(plan.residual)}")
        _explain_source(plan.left, lines, depth + 1)
        _explain_source(plan.right, lines, depth + 1)
    elif isinstance(plan, NestedLoopJoinPlan):
        condition = ("" if plan.condition is None
                     else f" on {expression_to_sql(plan.condition)}")
        _emit(lines, depth, f"NESTED LOOP [{plan.kind}]{condition}")
        _explain_source(plan.left, lines, depth + 1)
        _explain_source(plan.right, lines, depth + 1)
    else:
        _emit(lines, depth, f"<{type(plan).__name__}>")
