"""Plan explanation and SQL rendering.

Renders a logical plan as an indented tree — the observable face of the
"adaptive query execution plan": it shows which joins became hash joins,
where residual predicates remained, and how set operations stack. With
an ``annotator`` callback each node line also carries the deploy-time
plan pass's per-node cardinality/cost/eligibility annotations
(:mod:`repro.analysis.planpass` supplies the callback, keeping this
module free of analysis imports).

:func:`expression_to_sql` and :func:`statement_to_sql` render AST nodes
back to SQL text. The rendering is **re-parseable** for every node type:
``parse_select(f"select {expression_to_sql(e)} from t")`` round-trips
(composite expressions are parenthesized, strings re-escaped, subqueries
rendered in full — the property tests in
``tests/property/test_sql_differential.py`` assert the fixpoint).

Exposed to applications through
:meth:`repro.query.processor.QueryProcessor.explain` and the web
interface's ``/explain`` endpoint.
"""

from __future__ import annotations

from typing import Callable, List, Optional

from repro.sqlengine.ast_nodes import (
    BetweenExpr, BinaryOp, CaseExpr, CastExpr, ColumnRef, ExistsExpr,
    FunctionCall, InExpr, IsNullExpr, Join, LikeExpr, Literal, Node,
    ScalarSubquery, SelectItem, SelectStatement, Star, SubqueryRef,
    TableRef, UnaryOp,
)
from repro.sqlengine.planner import (
    HashJoinPlan, NestedLoopJoinPlan, Plan, ScanPlan, SelectPlan,
    SubqueryScanPlan,
)

#: Per-node annotation hook: return extra text for a plan node's line
#: (or ``None`` for no annotation).
Annotator = Callable[[Plan], Optional[str]]


def expression_to_sql(node: Node) -> str:
    """Render an expression tree back to SQL text.

    Guaranteed re-parseable for every expression node type: composite
    expressions are fully parenthesized (so operator precedence cannot
    reassociate them), strings are quote-escaped, and subqueries are
    rendered in full via :func:`statement_to_sql`.
    """
    if isinstance(node, Literal):
        if node.value is None:
            return "NULL"
        if node.value is True:
            return "TRUE"
        if node.value is False:
            return "FALSE"
        if isinstance(node.value, str):
            escaped = node.value.replace("'", "''")
            return f"'{escaped}'"
        if isinstance(node.value, (bytes, bytearray)):
            return f"X'{bytes(node.value).hex()}'"
        return repr(node.value)
    if isinstance(node, ColumnRef):
        return str(node)
    if isinstance(node, Star):
        return f"{node.table}.*" if node.table else "*"
    if isinstance(node, UnaryOp):
        inner = expression_to_sql(node.operand)
        if node.op == "not":
            return f"(NOT {inner})"
        return f"({node.op}{inner})"
    if isinstance(node, BinaryOp):
        return (f"({expression_to_sql(node.left)} {node.op.upper()} "
                f"{expression_to_sql(node.right)})")
    if isinstance(node, FunctionCall):
        if node.star:
            return f"{node.name}(*)"
        inner = ", ".join(expression_to_sql(arg) for arg in node.args)
        distinct = "DISTINCT " if node.distinct else ""
        return f"{node.name}({distinct}{inner})"
    if isinstance(node, InExpr):
        negated = "NOT " if node.negated else ""
        operand = expression_to_sql(node.operand)
        if node.subquery is not None:
            return (f"({operand} {negated}IN "
                    f"({statement_to_sql(node.subquery)}))")
        options = ", ".join(expression_to_sql(o) for o in node.options or ())
        return f"({operand} {negated}IN ({options}))"
    if isinstance(node, BetweenExpr):
        negated = "NOT " if node.negated else ""
        return (f"({expression_to_sql(node.operand)} {negated}BETWEEN "
                f"{expression_to_sql(node.low)} AND "
                f"{expression_to_sql(node.high)})")
    if isinstance(node, LikeExpr):
        negated = "NOT " if node.negated else ""
        return (f"({expression_to_sql(node.operand)} {negated}LIKE "
                f"{expression_to_sql(node.pattern)})")
    if isinstance(node, IsNullExpr):
        negated = "NOT " if node.negated else ""
        return f"({expression_to_sql(node.operand)} IS {negated}NULL)"
    if isinstance(node, ExistsExpr):
        negated = "NOT " if node.negated else ""
        return f"({negated}EXISTS ({statement_to_sql(node.subquery)}))"
    if isinstance(node, ScalarSubquery):
        return f"({statement_to_sql(node.subquery)})"
    if isinstance(node, CaseExpr):
        pieces = ["CASE"]
        if node.operand is not None:
            pieces.append(expression_to_sql(node.operand))
        for condition, result in node.branches:
            pieces.append(f"WHEN {expression_to_sql(condition)} "
                          f"THEN {expression_to_sql(result)}")
        if node.default is not None:
            pieces.append(f"ELSE {expression_to_sql(node.default)}")
        pieces.append("END")
        return " ".join(pieces)
    if isinstance(node, CastExpr):
        return (f"CAST({expression_to_sql(node.operand)} "
                f"AS {node.target.upper()})")
    return f"<{type(node).__name__}>"


def statement_to_sql(statement: SelectStatement) -> str:
    """Render a parsed SELECT back to re-parseable SQL text."""
    parts: List[str] = ["SELECT"]
    if statement.distinct:
        parts.append("DISTINCT")
    parts.append(", ".join(_select_item_to_sql(item)
                           for item in statement.items))
    if statement.from_items:
        parts.append("FROM " + ", ".join(
            _from_item_to_sql(item) for item in statement.from_items))
    if statement.where is not None:
        parts.append("WHERE " + expression_to_sql(statement.where))
    if statement.group_by:
        parts.append("GROUP BY " + ", ".join(
            expression_to_sql(g) for g in statement.group_by))
    if statement.having is not None:
        parts.append("HAVING " + expression_to_sql(statement.having))
    sql = " ".join(parts)
    for op in statement.set_operations:
        suffix = " ALL" if op.all else ""
        sql += f" {op.op.upper()}{suffix} {statement_to_sql(op.right)}"
    if statement.order_by:
        directions = ", ".join(
            expression_to_sql(item.expression)
            + ("" if item.ascending else " DESC")
            for item in statement.order_by
        )
        sql += f" ORDER BY {directions}"
    if statement.limit is not None:
        sql += f" LIMIT {statement.limit}"
    if statement.offset is not None:
        sql += f" OFFSET {statement.offset}"
    return sql


def _select_item_to_sql(item: SelectItem) -> str:
    sql = expression_to_sql(item.expression)
    return f"{sql} AS {item.alias}" if item.alias else sql


def _from_item_to_sql(item: Node) -> str:
    if isinstance(item, TableRef):
        return (f"{item.name} AS {item.alias}" if item.alias
                else item.name)
    if isinstance(item, SubqueryRef):
        return f"({statement_to_sql(item.subquery)}) AS {item.alias}"
    if isinstance(item, Join):
        left = _from_item_to_sql(item.left)
        right = _from_item_to_sql(item.right)
        keyword = {"inner": "JOIN", "left": "LEFT JOIN",
                   "cross": "CROSS JOIN"}.get(item.kind, "JOIN")
        sql = f"{left} {keyword} {right}"
        if item.condition is not None:
            sql += f" ON {expression_to_sql(item.condition)}"
        return sql
    return f"<{type(item).__name__}>"


def explain_plan(plan: SelectPlan,
                 annotator: Optional[Annotator] = None) -> str:
    """Indented-tree rendering of a logical plan.

    ``annotator`` optionally supplies extra per-node text (cardinality,
    cost, fast-path eligibility) appended to each node's line.
    """
    lines: List[str] = []
    _explain_select(plan, lines, 0, annotator)
    return "\n".join(lines)


def _emit(lines: List[str], depth: int, text: str) -> None:
    lines.append("  " * depth + text)


def _annotate(node: Plan, annotator: Optional[Annotator]) -> str:
    if annotator is None:
        return ""
    note = annotator(node)
    return f"  {note}" if note else ""


def _explain_select(plan: SelectPlan, lines: List[str], depth: int,
                    annotator: Optional[Annotator] = None) -> None:
    pieces = []
    if plan.distinct:
        pieces.append("DISTINCT")
    if plan.is_aggregate:
        pieces.append("AGGREGATE" + (
            f" BY [{', '.join(expression_to_sql(g) for g in plan.group_by)}]"
            if plan.group_by else ""
        ))
    if plan.order_by:
        directions = ", ".join(
            expression_to_sql(item.expression)
            + ("" if item.ascending else " DESC")
            for item in plan.order_by
        )
        pieces.append(f"ORDER BY {directions}")
    if plan.limit is not None:
        pieces.append(f"LIMIT {plan.limit}")
    if plan.offset is not None:
        pieces.append(f"OFFSET {plan.offset}")
    header = "SELECT" + (f" [{' | '.join(pieces)}]" if pieces else "")
    _emit(lines, depth, header + _annotate(plan, annotator))

    columns = ", ".join(
        (item.alias or expression_to_sql(item.expression))
        for item in plan.items
    )
    _emit(lines, depth + 1, f"project: {columns}")
    if plan.where is not None:
        _emit(lines, depth + 1, f"filter: {expression_to_sql(plan.where)}")
    if plan.having is not None:
        _emit(lines, depth + 1, f"having: {expression_to_sql(plan.having)}")
    if plan.source is not None:
        _explain_source(plan.source, lines, depth + 1, annotator)
    else:
        _emit(lines, depth + 1, "source: <constant row>")
    for op_name, all_flag, right in plan.set_operations:
        suffix = " ALL" if all_flag else ""
        _emit(lines, depth + 1, f"{op_name.upper()}{suffix}:")
        _explain_select(right, lines, depth + 2, annotator)


def _explain_source(plan: Plan, lines: List[str], depth: int,
                    annotator: Optional[Annotator] = None) -> None:
    if isinstance(plan, ScanPlan):
        _emit(lines, depth, plan.describe() + _annotate(plan, annotator))
    elif isinstance(plan, SubqueryScanPlan):
        _emit(lines, depth,
              f"DERIVED {plan.binding}:" + _annotate(plan, annotator))
        _explain_select(plan.plan, lines, depth + 1, annotator)
    elif isinstance(plan, HashJoinPlan):
        keys = ", ".join(
            f"{expression_to_sql(l)} = {expression_to_sql(r)}"
            for l, r in zip(plan.left_keys, plan.right_keys)
        )
        _emit(lines, depth, f"HASH JOIN [{plan.kind}] on {keys}"
              + _annotate(plan, annotator))
        if plan.residual is not None:
            _emit(lines, depth + 1,
                  f"residual: {expression_to_sql(plan.residual)}")
        _explain_source(plan.left, lines, depth + 1, annotator)
        _explain_source(plan.right, lines, depth + 1, annotator)
    elif isinstance(plan, NestedLoopJoinPlan):
        condition = ("" if plan.condition is None
                     else f" on {expression_to_sql(plan.condition)}")
        _emit(lines, depth, f"NESTED LOOP [{plan.kind}]{condition}"
              + _annotate(plan, annotator))
        _explain_source(plan.left, lines, depth + 1, annotator)
        _explain_source(plan.right, lines, depth + 1, annotator)
    else:
        _emit(lines, depth, f"<{type(plan).__name__}>")
