"""Plan execution.

Rows travel through the executor as *environments*: ordered mappings from
table binding (alias) to a column→value dict, chained outward for
correlated subqueries. The final projection turns environments into a
:class:`~repro.sqlengine.relation.Relation`.

Null semantics follow SQL three-valued logic: comparisons with ``NULL``
yield ``NULL``, ``WHERE`` keeps only rows whose condition is true, and
``AND``/``OR`` use Kleene logic.
"""

from __future__ import annotations

import re
from typing import Any, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from repro.exceptions import SQLExecutionError, SQLPlanError
from repro.sqlengine.ast_nodes import (
    AGGREGATE_FUNCTIONS, BetweenExpr, BinaryOp, CaseExpr, CastExpr,
    ColumnRef, ExistsExpr, FunctionCall, InExpr, IsNullExpr, LikeExpr,
    Literal, Node, OrderItem, ScalarSubquery, SelectItem, SelectStatement,
    Star, UnaryOp,
)
from repro.sqlengine.functions import call_aggregate, call_scalar
from repro.sqlengine.introspect import dedupe_columns, expression_name
from repro.sqlengine.parser import parse_select
from repro.sqlengine.planner import (
    HashJoinPlan, NestedLoopJoinPlan, Plan, ScanPlan, SelectPlan,
    SubqueryScanPlan, plan_select,
)
from repro.sqlengine.relation import Relation

class LazyRow:
    """A dict-like view over one relation tuple.

    Scans produce millions of rows; building a dict per row dominates
    execution time. This view shares one column-index map per relation
    and keeps the tuple as-is. It implements exactly the mapping surface
    the executor touches (``in``, ``[]``, ``get``).
    """

    __slots__ = ("_index", "_values")

    def __init__(self, index: Dict[str, int],
                 values: Tuple[Any, ...]) -> None:
        self._index = index
        self._values = values

    def __contains__(self, name: object) -> bool:
        return name in self._index

    def __getitem__(self, name: str) -> Any:
        return self._values[self._index[name]]

    def get(self, name: str, default: Any = None) -> Any:
        position = self._index.get(name)
        return default if position is None else self._values[position]

    def keys(self):
        return self._index.keys()

    def __repr__(self) -> str:
        pairs = ", ".join(f"{k}={self._values[i]!r}"
                          for k, i in self._index.items())
        return f"LazyRow({pairs})"


#: A frame maps table bindings to row views (LazyRow or plain dicts for
#: null padding).
Frame = Dict[str, Any]
Template = Dict[str, Tuple[str, ...]]


class Env:
    """A chain of frames; ``frames[0]`` is the innermost scope."""

    __slots__ = ("frames",)

    def __init__(self, frames: List[Frame]) -> None:
        self.frames = frames

    @classmethod
    def root(cls, frame: Frame) -> "Env":
        return cls([frame])

    def child(self, frame: Frame) -> "Env":
        return Env([frame] + self.frames)

    def lookup(self, name: str, table: Optional[str]) -> Any:
        if table is not None:
            for frame in self.frames:
                if table in frame:
                    row = frame[table]
                    if name in row:
                        return row[name]
                    raise SQLExecutionError(
                        f"table {table!r} has no column {name!r}"
                    )
            raise SQLExecutionError(f"unknown table or alias {table!r}")
        for frame in self.frames:
            hits = [binding for binding, row in frame.items() if name in row]
            if len(hits) > 1:
                raise SQLExecutionError(f"ambiguous column {name!r} "
                                        f"(in {sorted(hits)})")
            if hits:
                return frame[hits[0]][name]
        raise SQLExecutionError(f"unknown column {name!r}")


class Catalog:
    """A case-insensitive mapping of table names to relations."""

    def __init__(self, tables: Optional[Mapping[str, Relation]] = None) -> None:
        self._tables: Dict[str, Relation] = {}
        if tables:
            for name, relation in tables.items():
                self.register(name, relation)

    def register(self, name: str, relation: Relation) -> None:
        self._tables[name.lower()] = relation

    def unregister(self, name: str) -> None:
        self._tables.pop(name.lower(), None)

    def get(self, name: str) -> Relation:
        try:
            return self._tables[name.lower()]
        except KeyError:
            raise SQLPlanError(f"unknown table {name!r}") from None

    def __contains__(self, name: object) -> bool:
        return isinstance(name, str) and name.lower() in self._tables

    def table_names(self) -> List[str]:
        return sorted(self._tables)


# --------------------------------------------------------------------------
# Value helpers
# --------------------------------------------------------------------------

_TYPE_RANK = {bool: 0, int: 0, float: 0, str: 1, bytes: 2, bytearray: 2}


def _truthy(value: Any) -> bool:
    if value is None:
        return False
    if isinstance(value, (bool, int, float)):
        return bool(value)
    return bool(value)


def _sort_key(value: Any) -> Tuple[int, int, Any]:
    if value is None:
        return (0, 0, 0)
    rank = _TYPE_RANK.get(type(value), 3)
    if isinstance(value, bytearray):
        value = bytes(value)
    if rank == 3:
        value = repr(value)
    return (1, rank, value)


def _compare(op: str, left: Any, right: Any) -> Optional[bool]:
    if left is None or right is None:
        return None
    numeric = (int, float)
    compatible = (
        (isinstance(left, numeric) and isinstance(right, numeric))
        or (isinstance(left, str) and isinstance(right, str))
        or (isinstance(left, (bytes, bytearray))
            and isinstance(right, (bytes, bytearray)))
    )
    if op == "=":
        return left == right if compatible else False
    if op == "<>":
        return left != right if compatible else True
    if not compatible:
        raise SQLExecutionError(
            f"cannot order {type(left).__name__} against {type(right).__name__}"
        )
    if op == "<":
        return left < right
    if op == "<=":
        return left <= right
    if op == ">":
        return left > right
    if op == ">=":
        return left >= right
    raise SQLExecutionError(f"unknown comparison {op!r}")


def _arith(op: str, left: Any, right: Any) -> Any:
    if left is None or right is None:
        return None
    if op == "||":
        return f"{left}{right}"
    if not isinstance(left, (int, float)) or not isinstance(right, (int, float)):
        raise SQLExecutionError(
            f"arithmetic {op!r} needs numbers, got "
            f"{type(left).__name__} and {type(right).__name__}"
        )
    try:
        if op == "+":
            return left + right
        if op == "-":
            return left - right
        if op == "*":
            return left * right
        if op == "/":
            if right == 0:
                return None  # SQL: division by zero yields NULL
            result = left / right
            if isinstance(left, int) and isinstance(right, int) \
                    and result == int(result):
                return int(result)
            return result
        if op == "%":
            if right == 0:
                return None
            # SQL MOD takes the sign of the dividend (C semantics).
            return left - int(left / right) * right
    except (TypeError, OverflowError) as exc:
        raise SQLExecutionError(f"arithmetic failed: {exc}") from exc
    raise SQLExecutionError(f"unknown operator {op!r}")


def _like_to_regex(pattern: str) -> "re.Pattern[str]":
    parts = []
    for ch in pattern:
        if ch == "%":
            parts.append(".*")
        elif ch == "_":
            parts.append(".")
        else:
            parts.append(re.escape(ch))
    # Case-insensitive, matching MySQL's (and SQLite's ASCII) default.
    return re.compile("".join(parts) + r"\Z", re.IGNORECASE | re.DOTALL)


def _hashable(value: Any) -> Any:
    return bytes(value) if isinstance(value, bytearray) else value


def _cast(value: Any, target: str) -> Any:
    """``CAST(value AS target)``.

    Follows SQL-standard strictness: casting a non-numeric string to a
    number is an error (not SQLite's silent 0). Numeric→integer
    truncates toward zero.
    """
    if value is None:
        return None
    try:
        if target in ("integer", "int", "bigint", "smallint", "timestamp"):
            if isinstance(value, bool):
                return int(value)
            if isinstance(value, (int, float)):
                return int(value)
            return int(float(str(value)))
        if target in ("double", "float", "real", "numeric"):
            if isinstance(value, bool):
                return float(value)
            return float(value)
        if target in ("varchar", "string", "text", "char"):
            if isinstance(value, (bytes, bytearray)):
                return bytes(value).decode("utf-8", errors="replace")
            if isinstance(value, bool):
                return "true" if value else "false"
            return str(value)
        if target in ("binary", "blob", "bytes"):
            if isinstance(value, (bytes, bytearray)):
                return bytes(value)
            return str(value).encode("utf-8")
        if target in ("boolean", "bool"):
            return _truthy(value)
    except (TypeError, ValueError) as exc:
        raise SQLExecutionError(
            f"cannot cast {value!r} to {target}: {exc}"
        ) from exc
    raise SQLExecutionError(f"unknown cast target {target!r}")


# --------------------------------------------------------------------------
# Executor
# --------------------------------------------------------------------------


def _compiled(holder: Any, attr: str, node: Node):
    """Compile ``node`` once and cache the closure on ``holder`` (a plan
    object that outlives executions via the plan caches)."""
    from repro.sqlengine.compiler import compile_expression

    fn = getattr(holder, attr, None)
    if fn is None:
        fn = compile_expression(node)
        setattr(holder, attr, fn)
    return fn


class _Executor:
    def __init__(self, catalog: Catalog) -> None:
        self.catalog = catalog
        self._subplan_cache: Dict[int, SelectPlan] = {}
        self._like_cache: Dict[str, "re.Pattern[str]"] = {}

    # -- entry points --------------------------------------------------------

    def run(self, plan: SelectPlan, outer: Optional[Env] = None) -> Relation:
        columns, rows, contexts = self._run_core(plan, outer)

        for op_name, all_flag, right_plan in plan.set_operations:
            right = self.run(right_plan, outer)
            if len(right.columns) != len(columns):
                raise SQLExecutionError(
                    f"{op_name.upper()} operands have different widths"
                )
            rows = _apply_set_op(op_name, all_flag, rows, right.rows)
            contexts = [None] * len(rows)

        if plan.order_by:
            rows, contexts = self._order_rows(
                plan, columns, rows, contexts, outer
            )
        if plan.offset is not None:
            rows = rows[plan.offset:]
        if plan.limit is not None:
            rows = rows[:plan.limit]
        return Relation(columns, rows)

    def _run_core(self, plan: SelectPlan, outer: Optional[Env]):
        if plan.source is None:
            envs = [Env.root({}) if outer is None else outer.child({})]
            template: Template = {}
        else:
            frames, template = self._execute_source(plan.source, outer)
            if outer is None:
                envs = [Env.root(frame) for frame in frames]
            else:
                envs = [outer.child(frame) for frame in frames]

        if plan.where is not None:
            predicate = _compiled(plan, "_c_where", plan.where)
            envs = [env for env in envs
                    if _truthy(predicate(self, env))]

        columns = self._output_columns(plan.items, template)

        if plan.is_aggregate:
            rows, contexts = self._project_groups(plan, envs, template, columns)
        else:
            compiled_items = self._compiled_items(plan)
            rows = [self._project_row(plan.items, compiled_items, env,
                                      template)
                    for env in envs]
            contexts = list(envs)

        if plan.distinct:
            rows, contexts = _distinct(rows, contexts)
        return columns, rows, contexts

    # -- FROM execution --------------------------------------------------------

    def _execute_source(self, plan: Plan,
                        outer: Optional[Env]) -> Tuple[List[Frame], Template]:
        if isinstance(plan, ScanPlan):
            relation = self.catalog.get(plan.table)
            index = relation._index
            binding = plan.binding
            frames = [
                {binding: LazyRow(index, row)} for row in relation.rows
            ]
            return frames, {binding: relation.columns}

        if isinstance(plan, SubqueryScanPlan):
            relation = self.run(plan.plan, outer)
            index = relation._index
            binding = plan.binding
            frames = [
                {binding: LazyRow(index, row)} for row in relation.rows
            ]
            return frames, {binding: relation.columns}

        if isinstance(plan, NestedLoopJoinPlan):
            return self._nested_loop(plan, outer)

        if isinstance(plan, HashJoinPlan):
            return self._hash_join(plan, outer)

        raise SQLExecutionError(f"unknown plan node {type(plan).__name__}")

    def _nested_loop(self, plan: NestedLoopJoinPlan,
                     outer: Optional[Env]) -> Tuple[List[Frame], Template]:
        left_frames, left_template = self._execute_source(plan.left, outer)
        right_frames, right_template = self._execute_source(plan.right, outer)
        template = {**left_template, **right_template}
        null_right = _null_frame(right_template)

        condition = (None if plan.condition is None
                     else _compiled(plan, "_c_condition", plan.condition))
        results: List[Frame] = []
        for left_frame in left_frames:
            matched = False
            for right_frame in right_frames:
                merged = {**left_frame, **right_frame}
                if condition is not None:
                    env = (Env.root(merged) if outer is None
                           else outer.child(merged))
                    if not _truthy(condition(self, env)):
                        continue
                matched = True
                results.append(merged)
            if plan.kind == "left" and not matched:
                results.append({**left_frame, **null_right})
        return results, template

    def _hash_join(self, plan: HashJoinPlan,
                   outer: Optional[Env]) -> Tuple[List[Frame], Template]:
        left_frames, left_template = self._execute_source(plan.left, outer)
        right_frames, right_template = self._execute_source(plan.right, outer)
        template = {**left_template, **right_template}
        null_right = _null_frame(right_template)

        from repro.sqlengine.compiler import compile_expression

        left_keys = getattr(plan, "_c_left_keys", None)
        if left_keys is None:
            left_keys = [compile_expression(k) for k in plan.left_keys]
            plan._c_left_keys = left_keys  # type: ignore[attr-defined]
        right_keys = getattr(plan, "_c_right_keys", None)
        if right_keys is None:
            right_keys = [compile_expression(k) for k in plan.right_keys]
            plan._c_right_keys = right_keys  # type: ignore[attr-defined]
        residual = (None if plan.residual is None
                    else _compiled(plan, "_c_residual", plan.residual))

        table: Dict[Tuple[Any, ...], List[Frame]] = {}
        for right_frame in right_frames:
            env = (Env.root(right_frame) if outer is None
                   else outer.child(right_frame))
            key = tuple(_hashable(k(self, env)) for k in right_keys)
            if any(part is None for part in key):
                continue  # NULL keys never join
            table.setdefault(key, []).append(right_frame)

        results: List[Frame] = []
        for left_frame in left_frames:
            env = (Env.root(left_frame) if outer is None
                   else outer.child(left_frame))
            key = tuple(_hashable(k(self, env)) for k in left_keys)
            matches: Iterable[Frame] = ()
            if not any(part is None for part in key):
                matches = table.get(key, ())
            matched = False
            for right_frame in matches:
                merged = {**left_frame, **right_frame}
                if residual is not None:
                    merged_env = (Env.root(merged) if outer is None
                                  else outer.child(merged))
                    if not _truthy(residual(self, merged_env)):
                        continue
                matched = True
                results.append(merged)
            if plan.kind == "left" and not matched:
                results.append({**left_frame, **null_right})
        return results, template

    # -- projection --------------------------------------------------------

    def _output_columns(self, items: Sequence[SelectItem],
                        template: Template) -> List[str]:
        names: List[str] = []
        for item in items:
            expr = item.expression
            if isinstance(expr, Star):
                if expr.table is not None:
                    if expr.table not in template:
                        raise SQLExecutionError(
                            f"unknown table in {expr.table}.*"
                        )
                    names.extend(template[expr.table])
                else:
                    for binding in template:
                        names.extend(template[binding])
            elif item.alias:
                names.append(item.alias)
            else:
                names.append(_expression_name(expr))
        return _dedupe(names)

    def _compiled_items(self, plan: SelectPlan):
        """Per-plan cache of compiled select items (None for stars)."""
        from repro.sqlengine.compiler import compile_expression

        cached = getattr(plan, "_c_items", None)
        if cached is None:
            cached = [
                None if isinstance(item.expression, Star)
                else compile_expression(item.expression)
                for item in plan.items
            ]
            plan._c_items = cached  # type: ignore[attr-defined]
        return cached

    def _project_row(self, items: Sequence[SelectItem], compiled_items,
                     env: Env, template: Template) -> Tuple[Any, ...]:
        values: List[Any] = []
        frame = env.frames[0]
        for item, compiled_item in zip(items, compiled_items):
            if compiled_item is None:
                expr = item.expression
                bindings = ([expr.table] if expr.table is not None
                            else list(template))
                for binding in bindings:
                    row = frame.get(binding)
                    for column in template[binding]:
                        values.append(None if row is None else row.get(column))
            else:
                values.append(compiled_item(self, env))
        return tuple(values)

    def _project_groups(self, plan: SelectPlan, envs: List[Env],
                        template: Template, columns: List[str]):
        if plan.group_by:
            from repro.sqlengine.compiler import compile_expression

            group_keys = getattr(plan, "_c_group", None)
            if group_keys is None:
                group_keys = [compile_expression(expr)
                              for expr in plan.group_by]
                plan._c_group = group_keys  # type: ignore[attr-defined]
            groups: Dict[Tuple[Any, ...], List[Env]] = {}
            for env in envs:
                key = tuple(
                    _hashable(key_fn(self, env)) for key_fn in group_keys
                )
                groups.setdefault(key, []).append(env)
            group_list = list(groups.values())
        else:
            group_list = [envs]  # single group, even when empty

        rows: List[Tuple[Any, ...]] = []
        contexts: List[Any] = []
        for group in group_list:
            if plan.having is not None:
                if not _truthy(self.eval_group(plan.having, group)):
                    continue
            values: List[Any] = []
            for item in plan.items:
                expr = item.expression
                if isinstance(expr, Star):
                    raise SQLExecutionError(
                        "SELECT * cannot be combined with aggregation"
                    )
                values.append(self.eval_group(expr, group))
            rows.append(tuple(values))
            contexts.append(group)
        return rows, contexts

    # -- ORDER BY ----------------------------------------------------------

    def _order_rows(self, plan: SelectPlan, columns: List[str],
                    rows: List[Tuple[Any, ...]], contexts: List[Any],
                    outer: Optional[Env]):
        aliases = {
            item.alias: item.expression
            for item in plan.items if item.alias
        }
        column_positions = {name: i for i, name in enumerate(columns)}

        def key_for(order_item: OrderItem, row: Tuple[Any, ...],
                    context: Any) -> Any:
            expr = order_item.expression
            if isinstance(expr, Literal) and isinstance(expr.value, int) \
                    and not isinstance(expr.value, bool):
                position = expr.value - 1
                if not 0 <= position < len(row):
                    raise SQLExecutionError(
                        f"ORDER BY position {expr.value} out of range"
                    )
                return row[position]
            if isinstance(expr, ColumnRef) and expr.table is None:
                if expr.name in column_positions:
                    return row[column_positions[expr.name]]
                if expr.name in aliases:
                    expr = aliases[expr.name]
            if context is None:
                raise SQLExecutionError(
                    "ORDER BY over a set operation must reference output "
                    "columns"
                )
            if plan.is_aggregate:
                return self.eval_group(expr, context)
            return self.eval(expr, context)

        decorated = []
        for index, (row, context) in enumerate(zip(rows, contexts)):
            key = []
            for order_item in plan.order_by:
                value = _sort_key(key_for(order_item, row, context))
                key.append(
                    value if order_item.ascending else _Reversed(value)
                )
            decorated.append((tuple(key), index, row, context))
        decorated.sort(key=lambda entry: (entry[0], entry[1]))
        return ([entry[2] for entry in decorated],
                [entry[3] for entry in decorated])

    # -- expression evaluation -----------------------------------------------

    def eval(self, node: Node, env: Env) -> Any:
        if isinstance(node, Literal):
            return node.value
        if isinstance(node, ColumnRef):
            return env.lookup(node.name, node.table)
        if isinstance(node, UnaryOp):
            return self._eval_unary(node, env)
        if isinstance(node, BinaryOp):
            return self._eval_binary(node, env)
        if isinstance(node, FunctionCall):
            if node.name in AGGREGATE_FUNCTIONS:
                raise SQLExecutionError(
                    f"aggregate {node.name}() used outside GROUP BY context"
                )
            args = [self.eval(arg, env) for arg in node.args]
            return call_scalar(node.name, args)
        if isinstance(node, InExpr):
            return self._eval_in(node, env)
        if isinstance(node, BetweenExpr):
            return self._eval_between(node, env)
        if isinstance(node, LikeExpr):
            return self._eval_like(node, env)
        if isinstance(node, IsNullExpr):
            value = self.eval(node.operand, env)
            result = value is None
            return not result if node.negated else result
        if isinstance(node, ExistsExpr):
            relation = self.run_statement(node.subquery, env)
            result = len(relation) > 0
            return not result if node.negated else result
        if isinstance(node, ScalarSubquery):
            return self.run_statement(node.subquery, env).scalar()
        if isinstance(node, CaseExpr):
            return self._eval_case(node, env)
        if isinstance(node, CastExpr):
            return _cast(self.eval(node.operand, env), node.target)
        raise SQLExecutionError(f"cannot evaluate {type(node).__name__}")

    def _eval_unary(self, node: UnaryOp, env: Env) -> Any:
        value = self.eval(node.operand, env)
        if node.op == "not":
            if value is None:
                return None
            return not _truthy(value)
        if value is None:
            return None
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            raise SQLExecutionError(f"unary {node.op} needs a number")
        return -value if node.op == "-" else value

    def _eval_binary(self, node: BinaryOp, env: Env) -> Any:
        op = node.op
        if op == "and":
            left = self.eval(node.left, env)
            if left is not None and not _truthy(left):
                return False
            right = self.eval(node.right, env)
            if right is not None and not _truthy(right):
                return False
            if left is None or right is None:
                return None
            return True
        if op == "or":
            left = self.eval(node.left, env)
            if left is not None and _truthy(left):
                return True
            right = self.eval(node.right, env)
            if right is not None and _truthy(right):
                return True
            if left is None or right is None:
                return None
            return False
        left = self.eval(node.left, env)
        right = self.eval(node.right, env)
        if op in ("=", "<>", "<", "<=", ">", ">="):
            return _compare(op, left, right)
        return _arith(op, left, right)

    def _eval_in(self, node: InExpr, env: Env) -> Any:
        value = self.eval(node.operand, env)
        if value is None:
            return None
        if node.subquery is not None:
            relation = self.run_statement(node.subquery, env)
            if len(relation.columns) != 1:
                raise SQLExecutionError("IN subquery must return one column")
            options = [row[0] for row in relation.rows]
        else:
            options = [self.eval(option, env) for option in node.options or ()]
        saw_null = False
        found = False
        for option in options:
            if option is None:
                saw_null = True
            elif _compare("=", value, option):
                found = True
                break
        if found:
            return not node.negated
        if saw_null:
            return None
        return node.negated

    def _eval_between(self, node: BetweenExpr, env: Env) -> Any:
        value = self.eval(node.operand, env)
        low = self.eval(node.low, env)
        high = self.eval(node.high, env)
        lower_ok = _compare(">=", value, low)
        upper_ok = _compare("<=", value, high)
        # x BETWEEN a AND b  ==  x >= a AND x <= b  under three-valued logic.
        if lower_ok is False or upper_ok is False:
            result = False
        elif lower_ok is None or upper_ok is None:
            return None
        else:
            result = True
        return not result if node.negated else result

    def _eval_like(self, node: LikeExpr, env: Env) -> Any:
        value = self.eval(node.operand, env)
        pattern = self.eval(node.pattern, env)
        if value is None or pattern is None:
            return None
        if pattern not in self._like_cache:
            self._like_cache[pattern] = _like_to_regex(str(pattern))
        result = bool(self._like_cache[pattern].match(str(value)))
        return not result if node.negated else result

    def _eval_case(self, node: CaseExpr, env: Env) -> Any:
        if node.operand is not None:
            subject = self.eval(node.operand, env)
            for match, result in node.branches:
                candidate = self.eval(match, env)
                if _compare("=", subject, candidate):
                    return self.eval(result, env)
        else:
            for condition, result in node.branches:
                if _truthy(self.eval(condition, env)):
                    return self.eval(result, env)
        if node.default is not None:
            return self.eval(node.default, env)
        return None

    # -- aggregate-aware evaluation ------------------------------------------

    def eval_group(self, node: Node, group: List[Env]) -> Any:
        if isinstance(node, FunctionCall) and node.name in AGGREGATE_FUNCTIONS:
            if node.star:
                return call_aggregate(node.name, [], star=True,
                                      row_count=len(group))
            if len(node.args) != 1:
                raise SQLExecutionError(
                    f"aggregate {node.name}() takes exactly one argument"
                )
            values = [self.eval(node.args[0], env) for env in group]
            return call_aggregate(node.name, values, distinct=node.distinct)
        if isinstance(node, Literal):
            return node.value
        if isinstance(node, ColumnRef):
            if not group:
                return None
            return self.eval(node, group[0])
        if isinstance(node, UnaryOp):
            value = self.eval_group(node.operand, group)
            return self._apply_unary_value(node.op, value)
        if isinstance(node, BinaryOp):
            return self._eval_binary_group(node, group)
        if isinstance(node, FunctionCall):
            args = [self.eval_group(arg, group) for arg in node.args]
            return call_scalar(node.name, args)
        if isinstance(node, CastExpr):
            return _cast(self.eval_group(node.operand, group), node.target)
        if isinstance(node, CaseExpr):
            # Evaluate CASE per group using group-aware recursion.
            if node.operand is not None:
                subject = self.eval_group(node.operand, group)
                for match, result in node.branches:
                    if _compare("=", subject, self.eval_group(match, group)):
                        return self.eval_group(result, group)
            else:
                for condition, result in node.branches:
                    if _truthy(self.eval_group(condition, group)):
                        return self.eval_group(result, group)
            if node.default is not None:
                return self.eval_group(node.default, group)
            return None
        if isinstance(node, (InExpr, BetweenExpr, LikeExpr, IsNullExpr,
                             ExistsExpr, ScalarSubquery)):
            if not group:
                raise SQLExecutionError(
                    "cannot evaluate row predicate over an empty group"
                )
            return self.eval(node, group[0])
        raise SQLExecutionError(
            f"cannot evaluate {type(node).__name__} in GROUP BY context"
        )

    def _apply_unary_value(self, op: str, value: Any) -> Any:
        if op == "not":
            return None if value is None else not _truthy(value)
        if value is None:
            return None
        return -value if op == "-" else value

    def _eval_binary_group(self, node: BinaryOp, group: List[Env]) -> Any:
        op = node.op
        left = self.eval_group(node.left, group)
        right = self.eval_group(node.right, group)
        if op == "and":
            if left is not None and not _truthy(left):
                return False
            if right is not None and not _truthy(right):
                return False
            if left is None or right is None:
                return None
            return True
        if op == "or":
            if (left is not None and _truthy(left)) \
                    or (right is not None and _truthy(right)):
                return True
            if left is None or right is None:
                return None
            return False
        if op in ("=", "<>", "<", "<=", ">", ">="):
            return _compare(op, left, right)
        return _arith(op, left, right)

    # -- subqueries ----------------------------------------------------------

    def run_statement(self, statement: SelectStatement,
                      outer: Env) -> Relation:
        key = id(statement)
        plan = self._subplan_cache.get(key)
        if plan is None:
            plan = plan_select(statement)
            self._subplan_cache[key] = plan
        return self.run(plan, outer)


class _Reversed:
    """Inverts comparison order for DESC sort keys."""

    __slots__ = ("value",)

    def __init__(self, value: Any) -> None:
        self.value = value

    def __lt__(self, other: "_Reversed") -> bool:
        return other.value < self.value

    def __eq__(self, other: object) -> bool:
        return isinstance(other, _Reversed) and other.value == self.value


# --------------------------------------------------------------------------
# Helpers shared by the executor
# --------------------------------------------------------------------------


def _null_frame(template: Template) -> Frame:
    return {
        binding: {column: None for column in columns}
        for binding, columns in template.items()
    }


# Column naming lives in repro.sqlengine.introspect so the static
# analyzer infers exactly the names the executor will produce.
_dedupe = dedupe_columns
_expression_name = expression_name


def _distinct(rows: List[Tuple[Any, ...]], contexts: List[Any]):
    seen = set()
    out_rows = []
    out_contexts = []
    for row, context in zip(rows, contexts):
        key = tuple(_hashable(value) for value in row)
        if key in seen:
            continue
        seen.add(key)
        out_rows.append(row)
        out_contexts.append(context)
    return out_rows, out_contexts


def _apply_set_op(op: str, all_flag: bool, left: List[Tuple[Any, ...]],
                  right: List[Tuple[Any, ...]]) -> List[Tuple[Any, ...]]:
    def norm(rows: List[Tuple[Any, ...]]):
        return [tuple(_hashable(value) for value in row) for row in rows]

    left_n = norm(left)
    right_n = norm(right)

    if op == "union":
        combined = left_n + right_n
        if all_flag:
            return combined
        return _unique(combined)
    if op == "intersect":
        if all_flag:
            counts = _counts(right_n)
            result = []
            for row in left_n:
                if counts.get(row, 0) > 0:
                    counts[row] -= 1
                    result.append(row)
            return result
        right_set = set(right_n)
        return _unique([row for row in left_n if row in right_set])
    if op == "except":
        if all_flag:
            counts = _counts(right_n)
            result = []
            for row in left_n:
                if counts.get(row, 0) > 0:
                    counts[row] -= 1
                else:
                    result.append(row)
            return result
        right_set = set(right_n)
        return _unique([row for row in left_n if row not in right_set])
    raise SQLExecutionError(f"unknown set operation {op!r}")


def _unique(rows: List[Tuple[Any, ...]]) -> List[Tuple[Any, ...]]:
    seen = set()
    result = []
    for row in rows:
        if row not in seen:
            seen.add(row)
            result.append(row)
    return result


def _counts(rows: List[Tuple[Any, ...]]) -> Dict[Tuple[Any, ...], int]:
    counts: Dict[Tuple[Any, ...], int] = {}
    for row in rows:
        counts[row] = counts.get(row, 0) + 1
    return counts


# --------------------------------------------------------------------------
# Public API
# --------------------------------------------------------------------------


def execute_plan(plan: SelectPlan, catalog: Catalog) -> Relation:
    """Run a previously planned query against ``catalog``."""
    return _Executor(catalog).run(plan)


def execute(sql: str, catalog: Catalog) -> Relation:
    """Parse, plan and run ``sql`` against ``catalog``."""
    return execute_plan(plan_select(parse_select(sql)), catalog)
