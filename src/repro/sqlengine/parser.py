"""Recursive-descent SQL parser.

Grammar (informal)::

    select_stmt  := select_core (set_op select_core)* order? limit?
    select_core  := SELECT [DISTINCT|ALL] items
                    [FROM from_item (',' from_item)*]
                    [WHERE expr] [GROUP BY expr_list] [HAVING expr]
    from_item    := table_or_subquery (join_clause)*
    join_clause  := [INNER|LEFT [OUTER]|CROSS] JOIN table_or_subquery [ON expr]
    expr         := or_expr with the usual precedence ladder

Expression precedence, lowest to highest::

    OR < AND < NOT < comparison/IN/BETWEEN/LIKE/IS < || < +,- < *,/,% < unary
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.exceptions import SQLSyntaxError
from repro.sqlengine.ast_nodes import (
    BetweenExpr, BinaryOp, CaseExpr, CastExpr, ColumnRef, ExistsExpr,
    FunctionCall, InExpr, IsNullExpr, Join, LikeExpr, Literal, Node,
    OrderItem, ScalarSubquery, SelectItem, SelectStatement, SetOperation,
    Star, SubqueryRef, TableRef, UnaryOp,
)
from repro.sqlengine.lexer import Token, TokenType, tokenize

_COMPARISON_OPS = ("=", "<>", "!=", "<", "<=", ">", ">=")


class _Parser:
    def __init__(self, tokens: List[Token]) -> None:
        self._tokens = tokens
        self._pos = 0

    # -- token helpers -----------------------------------------------------

    def _peek(self, ahead: int = 0) -> Token:
        index = min(self._pos + ahead, len(self._tokens) - 1)
        return self._tokens[index]

    def _advance(self) -> Token:
        token = self._tokens[self._pos]
        if token.type is not TokenType.END:
            self._pos += 1
        return token

    def _check_keyword(self, *words: str) -> bool:
        token = self._peek()
        return token.type is TokenType.KEYWORD and token.value in words

    def _accept_keyword(self, *words: str) -> Optional[str]:
        if self._check_keyword(*words):
            return self._advance().value
        return None

    def _expect_keyword(self, word: str) -> None:
        if not self._accept_keyword(word):
            token = self._peek()
            raise SQLSyntaxError(
                f"expected {word.upper()}, found {token.value!r}",
                token.position,
            )

    def _check_operator(self, *ops: str) -> bool:
        token = self._peek()
        return token.type is TokenType.OPERATOR and token.value in ops

    def _accept_operator(self, *ops: str) -> Optional[str]:
        if self._check_operator(*ops):
            return self._advance().value
        return None

    def _expect_operator(self, op: str) -> None:
        if not self._accept_operator(op):
            token = self._peek()
            raise SQLSyntaxError(
                f"expected {op!r}, found {token.value!r}", token.position
            )

    def _expect_identifier(self, what: str = "identifier") -> str:
        token = self._peek()
        if token.type is TokenType.IDENTIFIER:
            return self._advance().value
        raise SQLSyntaxError(
            f"expected {what}, found {token.value!r}", token.position
        )

    # -- statements ----------------------------------------------------------

    def parse_statement(self) -> SelectStatement:
        statement = self._parse_select(allow_suffix=True)
        token = self._peek()
        if token.type is not TokenType.END:
            raise SQLSyntaxError(
                f"unexpected trailing input: {token.value!r}", token.position
            )
        return statement

    def _parse_select(self, allow_suffix: bool) -> SelectStatement:
        core = self._parse_select_core()
        set_ops: List[SetOperation] = []
        while self._check_keyword("union", "intersect", "except"):
            op = self._advance().value
            all_flag = bool(self._accept_keyword("all"))
            if self._accept_keyword("distinct"):
                all_flag = False
            right = self._parse_select_core()
            set_ops.append(SetOperation(op, all_flag, right))

        order_by: Tuple[OrderItem, ...] = ()
        limit = offset = None
        if allow_suffix:
            order_by = self._parse_order_by()
            limit, offset = self._parse_limit()

        if set_ops or order_by or limit is not None or offset is not None:
            core = SelectStatement(
                items=core.items,
                from_items=core.from_items,
                where=core.where,
                group_by=core.group_by,
                having=core.having,
                order_by=order_by,
                limit=limit,
                offset=offset,
                distinct=core.distinct,
                set_operations=tuple(set_ops),
            )
        return core

    def _parse_select_core(self) -> SelectStatement:
        self._expect_keyword("select")
        distinct = bool(self._accept_keyword("distinct"))
        if not distinct:
            self._accept_keyword("all")

        items = [self._parse_select_item()]
        while self._accept_operator(","):
            items.append(self._parse_select_item())

        from_items: List[Node] = []
        if self._accept_keyword("from"):
            from_items.append(self._parse_from_item())
            while self._accept_operator(","):
                from_items.append(self._parse_from_item())

        where = None
        if self._accept_keyword("where"):
            where = self._parse_expression()

        group_by: List[Node] = []
        if self._accept_keyword("group"):
            self._expect_keyword("by")
            group_by.append(self._parse_expression())
            while self._accept_operator(","):
                group_by.append(self._parse_expression())

        having = None
        if self._accept_keyword("having"):
            having = self._parse_expression()

        return SelectStatement(
            items=tuple(items),
            from_items=tuple(from_items),
            where=where,
            group_by=tuple(group_by),
            having=having,
            distinct=distinct,
        )

    def _parse_order_by(self) -> Tuple[OrderItem, ...]:
        if not self._accept_keyword("order"):
            return ()
        self._expect_keyword("by")
        items = [self._parse_order_item()]
        while self._accept_operator(","):
            items.append(self._parse_order_item())
        return tuple(items)

    def _parse_order_item(self) -> OrderItem:
        expression = self._parse_expression()
        ascending = True
        if self._accept_keyword("desc"):
            ascending = False
        else:
            self._accept_keyword("asc")
        return OrderItem(expression, ascending)

    def _parse_limit(self) -> Tuple[Optional[int], Optional[int]]:
        limit = offset = None
        if self._accept_keyword("limit"):
            limit = self._parse_nonnegative_int("LIMIT")
            if self._accept_keyword("offset"):
                offset = self._parse_nonnegative_int("OFFSET")
            elif self._accept_operator(","):
                # MySQL's LIMIT offset, count form (GSN targeted MySQL).
                offset = limit
                limit = self._parse_nonnegative_int("LIMIT")
        elif self._accept_keyword("offset"):
            offset = self._parse_nonnegative_int("OFFSET")
        return limit, offset

    def _parse_nonnegative_int(self, clause: str) -> int:
        token = self._peek()
        if token.type is TokenType.NUMBER and isinstance(token.value, int) \
                and token.value >= 0:
            self._advance()
            return token.value
        raise SQLSyntaxError(
            f"{clause} expects a non-negative integer", token.position
        )

    def _parse_select_item(self) -> SelectItem:
        token = self._peek()
        if token.matches(TokenType.OPERATOR, "*"):
            self._advance()
            return SelectItem(Star())
        if (token.type is TokenType.IDENTIFIER
                and self._peek(1).matches(TokenType.OPERATOR, ".")
                and self._peek(2).matches(TokenType.OPERATOR, "*")):
            table = self._advance().value
            self._advance()
            self._advance()
            return SelectItem(Star(table))
        expression = self._parse_expression()
        alias = None
        if self._accept_keyword("as"):
            alias = self._expect_identifier("alias")
        elif self._peek().type is TokenType.IDENTIFIER:
            alias = self._advance().value
        return SelectItem(expression, alias)

    # -- FROM ---------------------------------------------------------------

    def _parse_from_item(self) -> Node:
        item: Node = self._parse_table_or_subquery()
        while True:
            kind = self._parse_join_kind()
            if kind is None:
                return item
            right = self._parse_table_or_subquery()
            condition = None
            if kind != "cross" and self._accept_keyword("on"):
                condition = self._parse_expression()
            elif kind != "cross":
                # JOIN without ON behaves as a cross join.
                kind = "cross"
            item = Join(item, right, kind, condition)

    def _parse_join_kind(self) -> Optional[str]:
        if self._accept_keyword("join"):
            return "inner"
        if self._check_keyword("inner", "left", "right", "cross"):
            kind = self._advance().value
            if kind in ("left", "right"):
                self._accept_keyword("outer")
            self._expect_keyword("join")
            if kind == "right":
                raise SQLSyntaxError(
                    "RIGHT JOIN is not supported; rewrite as LEFT JOIN",
                    self._peek().position,
                )
            return kind
        return None

    def _parse_table_or_subquery(self) -> Node:
        if self._check_operator("("):
            self._advance()
            subquery = self._parse_select(allow_suffix=True)
            self._expect_operator(")")
            self._accept_keyword("as")
            alias = self._expect_identifier("subquery alias")
            return SubqueryRef(subquery, alias)
        name = self._expect_identifier("table name")
        alias = None
        if self._accept_keyword("as"):
            alias = self._expect_identifier("alias")
        elif self._peek().type is TokenType.IDENTIFIER:
            alias = self._advance().value
        return TableRef(name, alias)

    # -- expressions ---------------------------------------------------------

    def _parse_expression(self) -> Node:
        return self._parse_or()

    def _parse_or(self) -> Node:
        left = self._parse_and()
        while self._accept_keyword("or"):
            left = BinaryOp("or", left, self._parse_and())
        return left

    def _parse_and(self) -> Node:
        left = self._parse_not()
        while self._accept_keyword("and"):
            left = BinaryOp("and", left, self._parse_not())
        return left

    def _parse_not(self) -> Node:
        if self._accept_keyword("not"):
            return UnaryOp("not", self._parse_not())
        return self._parse_comparison()

    def _parse_comparison(self) -> Node:
        left = self._parse_concat()
        while True:
            op = self._accept_operator(*_COMPARISON_OPS)
            if op is not None:
                right = self._parse_concat()
                left = BinaryOp("<>" if op == "!=" else op, left, right)
                continue
            negated = False
            save = self._pos
            if self._accept_keyword("not"):
                negated = True
            if self._accept_keyword("in"):
                left = self._parse_in_tail(left, negated)
                continue
            if self._accept_keyword("between"):
                low = self._parse_concat()
                self._expect_keyword("and")
                high = self._parse_concat()
                left = BetweenExpr(left, low, high, negated)
                continue
            if self._accept_keyword("like"):
                left = LikeExpr(left, self._parse_concat(), negated)
                continue
            if negated:
                self._pos = save  # the NOT belongs to a boolean context
                return left
            if self._accept_keyword("is"):
                negated = bool(self._accept_keyword("not"))
                self._expect_keyword("null")
                left = IsNullExpr(left, negated)
                continue
            return left

    def _parse_in_tail(self, operand: Node, negated: bool) -> Node:
        self._expect_operator("(")
        if self._check_keyword("select"):
            subquery = self._parse_select(allow_suffix=True)
            self._expect_operator(")")
            return InExpr(operand, None, subquery, negated)
        options = [self._parse_expression()]
        while self._accept_operator(","):
            options.append(self._parse_expression())
        self._expect_operator(")")
        return InExpr(operand, tuple(options), None, negated)

    def _parse_concat(self) -> Node:
        left = self._parse_additive()
        while self._accept_operator("||"):
            left = BinaryOp("||", left, self._parse_additive())
        return left

    def _parse_additive(self) -> Node:
        left = self._parse_multiplicative()
        while True:
            op = self._accept_operator("+", "-")
            if op is None:
                return left
            left = BinaryOp(op, left, self._parse_multiplicative())

    def _parse_multiplicative(self) -> Node:
        left = self._parse_unary()
        while True:
            op = self._accept_operator("*", "/", "%")
            if op is None:
                return left
            left = BinaryOp(op, left, self._parse_unary())

    def _parse_unary(self) -> Node:
        op = self._accept_operator("-", "+")
        if op is not None:
            return UnaryOp(op, self._parse_unary())
        return self._parse_primary()

    def _parse_primary(self) -> Node:
        token = self._peek()

        if token.type is TokenType.NUMBER:
            self._advance()
            return Literal(token.value)
        if token.type is TokenType.STRING:
            self._advance()
            return Literal(token.value)
        if token.type is TokenType.BLOB:
            self._advance()
            return Literal(token.value)
        if token.matches(TokenType.KEYWORD, "null"):
            self._advance()
            return Literal(None)
        if token.matches(TokenType.KEYWORD, "true"):
            self._advance()
            return Literal(True)
        if token.matches(TokenType.KEYWORD, "false"):
            self._advance()
            return Literal(False)
        if token.matches(TokenType.KEYWORD, "exists"):
            self._advance()
            self._expect_operator("(")
            subquery = self._parse_select(allow_suffix=True)
            self._expect_operator(")")
            return ExistsExpr(subquery)
        if token.matches(TokenType.KEYWORD, "case"):
            return self._parse_case()
        if token.matches(TokenType.KEYWORD, "cast"):
            return self._parse_cast()
        if token.matches(TokenType.OPERATOR, "("):
            self._advance()
            if self._check_keyword("select"):
                subquery = self._parse_select(allow_suffix=True)
                self._expect_operator(")")
                return ScalarSubquery(subquery)
            inner = self._parse_expression()
            self._expect_operator(")")
            return inner
        if token.type is TokenType.IDENTIFIER:
            return self._parse_identifier_expression()
        raise SQLSyntaxError(
            f"unexpected token {token.value!r}", token.position
        )

    def _parse_case(self) -> Node:
        self._expect_keyword("case")
        operand = None
        if not self._check_keyword("when"):
            operand = self._parse_expression()
        branches = []
        while self._accept_keyword("when"):
            condition = self._parse_expression()
            self._expect_keyword("then")
            branches.append((condition, self._parse_expression()))
        if not branches:
            raise SQLSyntaxError(
                "CASE needs at least one WHEN branch", self._peek().position
            )
        default = None
        if self._accept_keyword("else"):
            default = self._parse_expression()
        self._expect_keyword("end")
        return CaseExpr(operand, tuple(branches), default)

    def _parse_cast(self) -> Node:
        self._expect_keyword("cast")
        self._expect_operator("(")
        operand = self._parse_expression()
        if not self._accept_keyword("as"):
            token = self._peek()
            raise SQLSyntaxError(
                f"expected AS in CAST, found {token.value!r}", token.position
            )
        target = self._expect_identifier("type name")
        self._expect_operator(")")
        return CastExpr(operand, target)

    def _parse_identifier_expression(self) -> Node:
        name = self._advance().value

        if self._check_operator("("):
            self._advance()
            if self._accept_operator("*"):
                self._expect_operator(")")
                return FunctionCall(name, (), star=True)
            if self._accept_operator(")"):
                return FunctionCall(name, ())
            distinct = bool(self._accept_keyword("distinct"))
            args = [self._parse_expression()]
            while self._accept_operator(","):
                args.append(self._parse_expression())
            self._expect_operator(")")
            return FunctionCall(name, tuple(args), distinct=distinct)

        if self._check_operator(".") \
                and self._peek(1).type is TokenType.IDENTIFIER:
            self._advance()
            column = self._advance().value
            return ColumnRef(column, table=name)

        return ColumnRef(name)


def parse_select(sql: str) -> SelectStatement:
    """Parse a single SELECT statement (the only statement GSN queries use)."""
    text = sql.strip().rstrip(";")
    return _Parser(tokenize(text)).parse_statement()
