"""In-memory relations: the tables the SQL engine executes over.

A :class:`Relation` is a named list of columns plus rows stored as tuples.
Window contents are converted to relations ("unnested into flat relations",
paper Section 3, step 2) before per-source queries run.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, Iterator, List, Mapping, Optional, Sequence, Tuple

from repro.exceptions import SQLExecutionError


class Relation:
    """An ordered, named collection of equally shaped rows.

    Columns are case-insensitive and stored lower-cased. Rows are tuples
    aligned with ``columns``.
    """

    __slots__ = ("columns", "rows", "_index")

    def __init__(self, columns: Sequence[str],
                 rows: Optional[Iterable[Sequence[Any]]] = None) -> None:
        self.columns: Tuple[str, ...] = tuple(c.lower() for c in columns)
        if len(set(self.columns)) != len(self.columns):
            raise SQLExecutionError(
                f"duplicate column names in relation: {self.columns}"
            )
        self.rows: List[Tuple[Any, ...]] = []
        self._index: Dict[str, int] = {
            name: i for i, name in enumerate(self.columns)
        }
        if rows is not None:
            for row in rows:
                self.append(row)

    @classmethod
    def from_dicts(cls, columns: Sequence[str],
                   dicts: Iterable[Mapping[str, Any]]) -> "Relation":
        """Build from mapping rows; missing keys become ``None``."""
        relation = cls(columns)
        lowered = relation.columns
        # Rows off one producer share a key set; normalize it once per
        # distinct shape instead of lower-casing every key of every row.
        key_maps: Dict[Tuple[str, ...], Tuple[Optional[str], ...]] = {}
        for mapping in dicts:
            shape = tuple(mapping.keys())
            lookup = key_maps.get(shape)
            if lookup is None:
                # Duplicate keys differing only in case: the last one
                # wins, matching the dict-comprehension this replaces.
                by_lower = {key.lower(): key for key in shape}
                lookup = tuple(by_lower.get(col) for col in lowered)
                key_maps[shape] = lookup
            relation.rows.append(
                tuple(None if key is None else mapping.get(key)
                      for key in lookup)
            )
        return relation

    @classmethod
    def empty(cls, columns: Sequence[str]) -> "Relation":
        return cls(columns)

    def append(self, row: Sequence[Any]) -> None:
        values = tuple(row)
        if len(values) != len(self.columns):
            raise SQLExecutionError(
                f"row width {len(values)} != relation width {len(self.columns)}"
            )
        self.rows.append(values)

    def column_position(self, name: str) -> int:
        try:
            return self._index[name.lower()]
        except KeyError:
            raise SQLExecutionError(f"no column {name!r}") from None

    def column(self, name: str) -> List[Any]:
        """All values of one column, in row order."""
        position = self.column_position(name)
        return [row[position] for row in self.rows]

    def __len__(self) -> int:
        return len(self.rows)

    def __iter__(self) -> Iterator[Tuple[Any, ...]]:
        return iter(self.rows)

    def __contains__(self, name: object) -> bool:
        return isinstance(name, str) and name.lower() in self._index

    def to_dicts(self) -> List[Dict[str, Any]]:
        return [dict(zip(self.columns, row)) for row in self.rows]

    def first(self) -> Optional[Dict[str, Any]]:
        if not self.rows:
            return None
        return dict(zip(self.columns, self.rows[0]))

    def scalar(self) -> Any:
        """The single value of a 1x1 relation (for scalar subqueries)."""
        if len(self.rows) > 1:
            raise SQLExecutionError("scalar subquery returned multiple rows")
        if not self.rows:
            return None
        if len(self.columns) != 1:
            raise SQLExecutionError("scalar subquery returned multiple columns")
        return self.rows[0][0]

    def __repr__(self) -> str:
        return f"Relation({list(self.columns)}, {len(self.rows)} rows)"

    def pretty(self, limit: int = 20) -> str:
        """ASCII rendering (used by examples and the web facade)."""
        header = list(self.columns)
        shown = [
            ["<bytes>" if isinstance(v, (bytes, bytearray)) else str(v)
             for v in row]
            for row in self.rows[:limit]
        ]
        widths = [
            max(len(header[i]), *(len(r[i]) for r in shown)) if shown
            else len(header[i])
            for i in range(len(header))
        ]
        lines = [
            " | ".join(h.ljust(w) for h, w in zip(header, widths)),
            "-+-".join("-" * w for w in widths),
        ]
        lines.extend(
            " | ".join(v.ljust(w) for v, w in zip(row, widths))
            for row in shown
        )
        if len(self.rows) > limit:
            lines.append(f"... ({len(self.rows) - limit} more rows)")
        return "\n".join(lines)
