"""Scalar and aggregate SQL functions.

All functions follow SQL null semantics: scalar functions return ``NULL``
when any required argument is ``NULL`` (except ``COALESCE``/``IFNULL``);
aggregates skip ``NULL`` inputs, and aggregates over an empty or all-null
input return ``NULL`` (``COUNT`` returns 0).
"""

from __future__ import annotations

import math
import statistics
from typing import Any, Callable, Dict, List, Sequence

from repro.exceptions import SQLExecutionError

# --------------------------------------------------------------------------
# Scalar functions
# --------------------------------------------------------------------------


def _nullable(func: Callable[..., Any]) -> Callable[..., Any]:
    def wrapper(*args: Any) -> Any:
        if any(arg is None for arg in args):
            return None
        return func(*args)
    return wrapper


def _substr(text: str, start: int, length: int = None) -> str:  # type: ignore[assignment]
    # SQL SUBSTR is 1-based; negative start counts from the end.
    if start > 0:
        begin = start - 1
    elif start < 0:
        begin = max(len(text) + start, 0)
    else:
        begin = 0
    if length is None:
        return text[begin:]
    if length < 0:
        return ""
    return text[begin:begin + length]


def _coalesce(*args: Any) -> Any:
    for arg in args:
        if arg is not None:
            return arg
    return None


def _nullif(a: Any, b: Any) -> Any:
    if a is None:
        return None
    return None if a == b else a


def _round(value: float, digits: int = 0) -> float:
    factor = 10 ** digits
    # SQL rounds half away from zero; Python's round() is banker's rounding.
    scaled = value * factor
    rounded = math.floor(scaled + 0.5) if scaled >= 0 else math.ceil(scaled - 0.5)
    result = rounded / factor
    return int(result) if digits <= 0 else result


SCALAR_FUNCTIONS: Dict[str, Callable[..., Any]] = {
    "abs": _nullable(abs),
    "round": _nullable(_round),
    "floor": _nullable(lambda v: int(math.floor(v))),
    "ceil": _nullable(lambda v: int(math.ceil(v))),
    "ceiling": _nullable(lambda v: int(math.ceil(v))),
    "sqrt": _nullable(math.sqrt),
    "power": _nullable(lambda base, exp: base ** exp),
    "mod": _nullable(lambda a, b: a % b),
    "sign": _nullable(lambda v: (v > 0) - (v < 0)),
    "upper": _nullable(lambda s: str(s).upper()),
    "lower": _nullable(lambda s: str(s).lower()),
    "length": _nullable(len),
    "trim": _nullable(lambda s: str(s).strip()),
    "ltrim": _nullable(lambda s: str(s).lstrip()),
    "rtrim": _nullable(lambda s: str(s).rstrip()),
    "substr": _nullable(_substr),
    "substring": _nullable(_substr),
    "replace": _nullable(lambda s, old, new: str(s).replace(str(old), str(new))),
    "instr": _nullable(lambda s, sub: str(s).find(str(sub)) + 1),
    "concat": _nullable(lambda *parts: "".join(str(p) for p in parts)),
    "coalesce": _coalesce,
    "ifnull": _coalesce,
    "nullif": _nullif,
    "octet_length": _nullable(
        lambda v: len(v) if isinstance(v, (bytes, bytearray))
        else len(str(v).encode("utf-8"))
    ),
}


def call_scalar(name: str, args: Sequence[Any]) -> Any:
    try:
        func = SCALAR_FUNCTIONS[name]
    except KeyError:
        raise SQLExecutionError(f"unknown function {name!r}") from None
    try:
        return func(*args)
    except SQLExecutionError:
        raise
    except Exception as exc:
        raise SQLExecutionError(f"{name}({args!r}) failed: {exc}") from exc


# --------------------------------------------------------------------------
# Aggregates
# --------------------------------------------------------------------------


def _agg_values(values: List[Any], distinct: bool) -> List[Any]:
    non_null = [v for v in values if v is not None]
    if not distinct:
        return non_null
    seen = set()
    unique = []
    for value in non_null:
        key = value if not isinstance(value, (bytes, bytearray)) else bytes(value)
        if key not in seen:
            seen.add(key)
            unique.append(value)
    return unique


def _avg(values: List[Any]) -> Any:
    return sum(values) / len(values) if values else None


def _stddev(values: List[Any]) -> Any:
    return statistics.pstdev(values) if len(values) >= 1 else None


def _variance(values: List[Any]) -> Any:
    return statistics.pvariance(values) if len(values) >= 1 else None


AGGREGATES: Dict[str, Callable[[List[Any]], Any]] = {
    "avg": _avg,
    "sum": lambda vs: sum(vs) if vs else None,
    "min": lambda vs: min(vs) if vs else None,
    "max": lambda vs: max(vs) if vs else None,
    "count": len,
    "stddev": _stddev,
    "variance": _variance,
    "median": lambda vs: statistics.median(vs) if vs else None,
    "group_concat": lambda vs: ",".join(str(v) for v in vs) if vs else None,
    "first": lambda vs: vs[0] if vs else None,
    "last": lambda vs: vs[-1] if vs else None,
}


def call_aggregate(name: str, values: List[Any], distinct: bool = False,
                   star: bool = False, row_count: int = 0) -> Any:
    """Evaluate aggregate ``name``.

    ``star`` handles ``COUNT(*)`` which counts rows including nulls.
    """
    if star:
        if name != "count":
            raise SQLExecutionError(f"{name}(*) is not valid SQL")
        return row_count
    try:
        func = AGGREGATES[name]
    except KeyError:
        raise SQLExecutionError(f"unknown aggregate {name!r}") from None
    try:
        return func(_agg_values(values, distinct))
    except SQLExecutionError:
        raise
    except Exception as exc:
        raise SQLExecutionError(f"{name} aggregate failed: {exc}") from exc
