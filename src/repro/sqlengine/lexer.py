"""SQL tokenizer.

Produces a flat list of :class:`Token` objects. Keywords are recognized
case-insensitively; identifiers keep their (lower-cased) spelling. String
literals use single quotes with ``''`` escaping; blob literals use the
``X'ABCD'`` hex form.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Any, List

from repro.exceptions import SQLSyntaxError

KEYWORDS = frozenset("""
    select from where group by having order asc desc limit offset
    union intersect except all distinct as and or not in is null like
    between exists case when then else end join inner left right outer
    cross on true false cast
""".split())

OPERATORS = (
    "<>", "!=", "<=", ">=", "||", "=", "<", ">", "+", "-", "*", "/", "%",
    "(", ")", ",", ".",
)


class TokenType(enum.Enum):
    KEYWORD = "keyword"
    IDENTIFIER = "identifier"
    NUMBER = "number"
    STRING = "string"
    BLOB = "blob"
    OPERATOR = "operator"
    END = "end"


@dataclass(frozen=True)
class Token:
    type: TokenType
    value: Any
    position: int

    def matches(self, ttype: TokenType, value: Any = None) -> bool:
        if self.type is not ttype:
            return False
        return value is None or self.value == value

    def __repr__(self) -> str:
        return f"Token({self.type.value}, {self.value!r}@{self.position})"


def tokenize(sql: str) -> List[Token]:
    """Tokenize ``sql``, raising :class:`SQLSyntaxError` on illegal input."""
    tokens: List[Token] = []
    i = 0
    n = len(sql)
    while i < n:
        ch = sql[i]
        if ch.isspace():
            i += 1
            continue
        if sql.startswith("--", i):
            newline = sql.find("\n", i)
            i = n if newline < 0 else newline + 1
            continue
        if sql.startswith("/*", i):
            close = sql.find("*/", i + 2)
            if close < 0:
                raise SQLSyntaxError("unterminated block comment", i)
            i = close + 2
            continue
        if ch == "'":
            value, i = _read_string(sql, i)
            tokens.append(Token(TokenType.STRING, value, i))
            continue
        if ch in ("x", "X") and i + 1 < n and sql[i + 1] == "'":
            value, i = _read_blob(sql, i)
            tokens.append(Token(TokenType.BLOB, value, i))
            continue
        if ch.isdigit() or (ch == "." and i + 1 < n and sql[i + 1].isdigit()):
            value, i = _read_number(sql, i)
            tokens.append(Token(TokenType.NUMBER, value, i))
            continue
        if ch.isalpha() or ch == "_":
            start = i
            while i < n and (sql[i].isalnum() or sql[i] == "_"):
                i += 1
            word = sql[start:i].lower()
            if word in KEYWORDS:
                tokens.append(Token(TokenType.KEYWORD, word, start))
            else:
                tokens.append(Token(TokenType.IDENTIFIER, word, start))
            continue
        if ch == '"':
            end = sql.find('"', i + 1)
            if end < 0:
                raise SQLSyntaxError("unterminated quoted identifier", i)
            tokens.append(
                Token(TokenType.IDENTIFIER, sql[i + 1:end].lower(), i)
            )
            i = end + 1
            continue
        for op in OPERATORS:
            if sql.startswith(op, i):
                tokens.append(Token(TokenType.OPERATOR, op, i))
                i += len(op)
                break
        else:
            raise SQLSyntaxError(f"unexpected character {ch!r}", i)
    tokens.append(Token(TokenType.END, None, n))
    return tokens


def _read_string(sql: str, start: int) -> tuple:
    parts = []
    i = start + 1
    n = len(sql)
    while i < n:
        if sql[i] == "'":
            if i + 1 < n and sql[i + 1] == "'":
                parts.append("'")
                i += 2
                continue
            return "".join(parts), i + 1
        parts.append(sql[i])
        i += 1
    raise SQLSyntaxError("unterminated string literal", start)


def _read_blob(sql: str, start: int) -> tuple:
    end = sql.find("'", start + 2)
    if end < 0:
        raise SQLSyntaxError("unterminated blob literal", start)
    hex_digits = sql[start + 2:end]
    try:
        value = bytes.fromhex(hex_digits)
    except ValueError:
        raise SQLSyntaxError(f"bad blob literal {hex_digits!r}", start) from None
    return value, end + 1


def _read_number(sql: str, start: int) -> tuple:
    i = start
    n = len(sql)
    seen_dot = False
    seen_exp = False
    while i < n:
        ch = sql[i]
        if ch.isdigit():
            i += 1
        elif ch == "." and not seen_dot and not seen_exp:
            seen_dot = True
            i += 1
        elif ch in ("e", "E") and not seen_exp and i > start:
            # Only treat as an exponent when followed by digits or a sign.
            next_i = i + 1
            if next_i < n and sql[next_i] in "+-":
                next_i += 1
            if next_i < n and sql[next_i].isdigit():
                seen_exp = True
                i = next_i + 1
            else:
                break
        else:
            break
    text = sql[start:i]
    if seen_dot or seen_exp:
        return float(text), i
    return int(text), i
