"""AST node definitions for the SQL engine.

All nodes are immutable dataclasses. Expression nodes implement nothing
themselves — evaluation lives in the executor — but they expose
:meth:`walk` for analysis passes (the planner uses it to find aggregates
and column references, the rewriter to find table names).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterator, Optional, Tuple, Union


def _nodes_in(value: Any) -> Iterator["Node"]:
    if isinstance(value, Node):
        yield value
    elif isinstance(value, (list, tuple)):
        for item in value:
            yield from _nodes_in(item)


class Node:
    """Base class for every AST node. Concrete nodes are dataclasses."""

    def children(self) -> Iterator["Node"]:
        """Direct child nodes, found by inspecting dataclass fields."""
        for name in getattr(self, "__dataclass_fields__", ()):
            yield from _nodes_in(getattr(self, name))

    def walk(self) -> Iterator["Node"]:
        """Pre-order traversal of this subtree."""
        yield self
        for child in self.children():
            yield from child.walk()


# --------------------------------------------------------------------------
# Expressions
# --------------------------------------------------------------------------

@dataclass(frozen=True)
class Literal(Node):
    value: Any


@dataclass(frozen=True)
class ColumnRef(Node):
    name: str
    table: Optional[str] = None

    def __str__(self) -> str:
        return f"{self.table}.{self.name}" if self.table else self.name


@dataclass(frozen=True)
class Star(Node):
    """``*`` or ``alias.*`` in a select list."""
    table: Optional[str] = None


@dataclass(frozen=True)
class UnaryOp(Node):
    op: str                      # "-", "+", "not"
    operand: Node


@dataclass(frozen=True)
class BinaryOp(Node):
    op: str                      # arithmetic, comparison, "and", "or", "||"
    left: Node
    right: Node


@dataclass(frozen=True)
class FunctionCall(Node):
    name: str
    args: Tuple[Node, ...]
    distinct: bool = False
    star: bool = False           # COUNT(*)


@dataclass(frozen=True)
class InExpr(Node):
    operand: Node
    options: Optional[Tuple[Node, ...]]       # literal list form
    subquery: Optional["SelectStatement"]     # subquery form
    negated: bool = False


@dataclass(frozen=True)
class BetweenExpr(Node):
    operand: Node
    low: Node
    high: Node
    negated: bool = False


@dataclass(frozen=True)
class LikeExpr(Node):
    operand: Node
    pattern: Node
    negated: bool = False


@dataclass(frozen=True)
class IsNullExpr(Node):
    operand: Node
    negated: bool = False


@dataclass(frozen=True)
class ExistsExpr(Node):
    subquery: "SelectStatement"
    negated: bool = False


@dataclass(frozen=True)
class ScalarSubquery(Node):
    subquery: "SelectStatement"


@dataclass(frozen=True)
class CastExpr(Node):
    """``CAST(expr AS type)`` — explicit type conversion."""
    operand: Node
    target: str                  # normalized type name, e.g. "integer"


@dataclass(frozen=True)
class CaseExpr(Node):
    """Searched or simple CASE; for the simple form ``operand`` is set."""
    operand: Optional[Node]
    branches: Tuple[Tuple[Node, Node], ...]   # (condition/match, result)
    default: Optional[Node]


# --------------------------------------------------------------------------
# FROM clause
# --------------------------------------------------------------------------

@dataclass(frozen=True)
class TableRef(Node):
    name: str
    alias: Optional[str] = None

    @property
    def binding(self) -> str:
        return self.alias or self.name


@dataclass(frozen=True)
class SubqueryRef(Node):
    subquery: "SelectStatement"
    alias: str

    @property
    def binding(self) -> str:
        return self.alias


@dataclass(frozen=True)
class Join(Node):
    left: Node                   # TableRef | SubqueryRef | Join
    right: Node                  # TableRef | SubqueryRef
    kind: str                    # "inner", "left", "cross"
    condition: Optional[Node]    # ON expression (None for cross)


FromItem = Union[TableRef, SubqueryRef, Join]


# --------------------------------------------------------------------------
# SELECT
# --------------------------------------------------------------------------

@dataclass(frozen=True)
class SelectItem(Node):
    expression: Node             # expression or Star
    alias: Optional[str] = None


@dataclass(frozen=True)
class OrderItem(Node):
    expression: Node
    ascending: bool = True


@dataclass(frozen=True)
class SetOperation(Node):
    op: str                      # "union", "intersect", "except"
    all: bool
    right: "SelectStatement"


@dataclass(frozen=True)
class SelectStatement(Node):
    items: Tuple[SelectItem, ...]
    from_items: Tuple[Node, ...] = ()
    where: Optional[Node] = None
    group_by: Tuple[Node, ...] = ()
    having: Optional[Node] = None
    order_by: Tuple[OrderItem, ...] = ()
    limit: Optional[int] = None
    offset: Optional[int] = None
    distinct: bool = False
    set_operations: Tuple[SetOperation, ...] = ()


AGGREGATE_FUNCTIONS = frozenset({"avg", "sum", "min", "max", "count",
                                 "stddev", "variance", "group_concat",
                                 "median", "first", "last"})


def contains_aggregate(node: Node) -> bool:
    """True if the expression tree calls an aggregate function (without
    descending into subqueries, which aggregate in their own scope)."""
    if isinstance(node, (ScalarSubquery, ExistsExpr)):
        return False
    if isinstance(node, InExpr):
        if node.operand is not None and contains_aggregate(node.operand):
            return True
        if node.options:
            return any(contains_aggregate(opt) for opt in node.options)
        return False
    if isinstance(node, FunctionCall) and node.name in AGGREGATE_FUNCTIONS:
        return True
    return any(contains_aggregate(child) for child in node.children()
               if not isinstance(child, SelectStatement))
