"""Logical planning.

The planner turns a parsed :class:`SelectStatement` into a tree of plan
nodes. Its one genuinely *adaptive* decision — mirroring the paper's
"adaptive query execution plan" — is the join strategy: equi-join
conditions become hash joins, everything else falls back to nested loops.
Plans are cached per SQL text by :mod:`repro.query.plan_cache`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import FrozenSet, Iterator, List, Optional, Tuple

from repro.exceptions import SQLPlanError
from repro.sqlengine.ast_nodes import (
    BinaryOp, ColumnRef, Join, Node, OrderItem, SelectItem, SelectStatement,
    SetOperation, SubqueryRef, TableRef, contains_aggregate,
)


class Plan:
    """Base class for plan nodes."""

    bindings: FrozenSet[str] = frozenset()

    def children(self) -> Tuple["Plan", ...]:
        """The node's direct plan-tree children (analysis traversal)."""
        return ()

    def describe(self) -> str:
        """One-line label for the node (EXPLAIN and plan annotations)."""
        return type(self).__name__

    def walk(self) -> Iterator["Plan"]:
        """The node and every plan node below it, pre-order."""
        yield self
        for child in self.children():
            yield from child.walk()


@dataclass
class ScanPlan(Plan):
    """Read a named relation from the catalog."""
    table: str
    binding: str

    def __post_init__(self) -> None:
        self.bindings = frozenset({self.binding})

    def describe(self) -> str:
        alias = "" if self.binding == self.table else f" AS {self.binding}"
        return f"SCAN {self.table}{alias}"


@dataclass
class SubqueryScanPlan(Plan):
    """Execute a derived table and bind its rows under an alias."""
    plan: "SelectPlan"
    binding: str

    def __post_init__(self) -> None:
        self.bindings = frozenset({self.binding})

    def children(self) -> Tuple[Plan, ...]:
        return (self.plan,)

    def describe(self) -> str:
        return f"DERIVED {self.binding}"


@dataclass
class NestedLoopJoinPlan(Plan):
    left: Plan
    right: Plan
    kind: str                    # "inner", "left", "cross"
    condition: Optional[Node]

    def __post_init__(self) -> None:
        self.bindings = self.left.bindings | self.right.bindings

    def children(self) -> Tuple[Plan, ...]:
        return (self.left, self.right)

    def describe(self) -> str:
        return f"NESTED LOOP [{self.kind}]"


@dataclass
class HashJoinPlan(Plan):
    """Equi-join executed by hashing the right input on its keys."""
    left: Plan
    right: Plan
    kind: str                    # "inner" or "left"
    left_keys: Tuple[Node, ...]
    right_keys: Tuple[Node, ...]
    residual: Optional[Node]     # non-equi conjuncts still to check

    def __post_init__(self) -> None:
        self.bindings = self.left.bindings | self.right.bindings

    def children(self) -> Tuple[Plan, ...]:
        return (self.left, self.right)

    def describe(self) -> str:
        return f"HASH JOIN [{self.kind}]"


@dataclass
class SelectPlan(Plan):
    """One SELECT core plus its suffix clauses."""
    source: Optional[Plan]
    items: Tuple[SelectItem, ...]
    where: Optional[Node]
    group_by: Tuple[Node, ...]
    having: Optional[Node]
    distinct: bool
    order_by: Tuple[OrderItem, ...]
    limit: Optional[int]
    offset: Optional[int]
    set_operations: Tuple[Tuple[str, bool, "SelectPlan"], ...]
    is_aggregate: bool
    statement: SelectStatement = field(repr=False, default=None)  # type: ignore[assignment]

    def __post_init__(self) -> None:
        self.bindings = self.source.bindings if self.source else frozenset()

    def children(self) -> Tuple[Plan, ...]:
        nested: List[Plan] = []
        if self.source is not None:
            nested.append(self.source)
        nested.extend(right for __, __, right in self.set_operations)
        return tuple(nested)

    def describe(self) -> str:
        return "SELECT" + (" [aggregate]" if self.is_aggregate else "")


def plan_select(statement: SelectStatement) -> SelectPlan:
    """Plan a parsed SELECT statement (recursively planning subqueries in
    the FROM clause; WHERE/HAVING subqueries are planned at execution)."""
    source = _plan_from(statement.from_items)

    is_aggregate = bool(statement.group_by) or any(
        contains_aggregate(item.expression) for item in statement.items
    ) or (statement.having is not None
          and contains_aggregate(statement.having))

    if statement.having is not None and not is_aggregate:
        raise SQLPlanError("HAVING requires GROUP BY or aggregates")

    set_ops = tuple(
        (op.op, op.all, plan_select(op.right))
        for op in statement.set_operations
    )
    if set_ops:
        width = len(statement.items)
        for op_name, __, right_plan in set_ops:
            if len(right_plan.items) != width and not _has_star(statement.items) \
                    and not _has_star(right_plan.items):
                raise SQLPlanError(
                    f"{op_name.upper()} operands have different widths"
                )

    return SelectPlan(
        source=source,
        items=statement.items,
        where=statement.where,
        group_by=statement.group_by,
        having=statement.having,
        distinct=statement.distinct,
        order_by=statement.order_by,
        limit=statement.limit,
        offset=statement.offset,
        set_operations=set_ops,
        is_aggregate=is_aggregate,
        statement=statement,
    )


def _has_star(items: Tuple[SelectItem, ...]) -> bool:
    from repro.sqlengine.ast_nodes import Star
    return any(isinstance(item.expression, Star) for item in items)


def _plan_from(from_items: Tuple[Node, ...]) -> Optional[Plan]:
    if not from_items:
        return None
    plans = [_plan_from_item(item) for item in from_items]
    combined = plans[0]
    for right in plans[1:]:
        _check_disjoint(combined, right)
        combined = NestedLoopJoinPlan(combined, right, "cross", None)
    return combined


def _plan_from_item(item: Node) -> Plan:
    if isinstance(item, TableRef):
        return ScanPlan(item.name, item.binding)
    if isinstance(item, SubqueryRef):
        return SubqueryScanPlan(plan_select(item.subquery), item.binding)
    if isinstance(item, Join):
        left = _plan_from_item(item.left)
        right = _plan_from_item(item.right)
        _check_disjoint(left, right)
        return _plan_join(left, right, item.kind, item.condition)
    raise SQLPlanError(f"unsupported FROM item: {type(item).__name__}")


def _check_disjoint(left: Plan, right: Plan) -> None:
    overlap = left.bindings & right.bindings
    if overlap:
        raise SQLPlanError(
            f"duplicate table alias(es) in FROM: {sorted(overlap)}"
        )


def _plan_join(left: Plan, right: Plan, kind: str,
               condition: Optional[Node]) -> Plan:
    if kind == "cross" or condition is None:
        return NestedLoopJoinPlan(left, right, "cross", condition)
    left_keys, right_keys, residual = _split_equi_condition(
        condition, left.bindings, right.bindings
    )
    if left_keys:
        return HashJoinPlan(left, right, kind,
                            tuple(left_keys), tuple(right_keys), residual)
    return NestedLoopJoinPlan(left, right, kind, condition)


def _split_equi_condition(condition: Node, left_bindings: FrozenSet[str],
                          right_bindings: FrozenSet[str]):
    """Split an ON condition into hashable equi-key pairs plus a residual.

    A conjunct ``x = y`` is an equi-key when one side only references the
    left input's bindings and the other only the right's. Conjuncts that
    reference unqualified columns are conservatively left in the residual
    (resolution is ambiguous until execution).
    """
    equi_left: List[Node] = []
    equi_right: List[Node] = []
    residual: List[Node] = []
    for conjunct in _conjuncts(condition):
        placed = False
        if isinstance(conjunct, BinaryOp) and conjunct.op == "=":
            left_side = _side_of(conjunct.left, left_bindings, right_bindings)
            right_side = _side_of(conjunct.right, left_bindings, right_bindings)
            if left_side == "left" and right_side == "right":
                equi_left.append(conjunct.left)
                equi_right.append(conjunct.right)
                placed = True
            elif left_side == "right" and right_side == "left":
                equi_left.append(conjunct.right)
                equi_right.append(conjunct.left)
                placed = True
        if not placed:
            residual.append(conjunct)
    residual_node: Optional[Node] = None
    for conjunct in residual:
        residual_node = (conjunct if residual_node is None
                         else BinaryOp("and", residual_node, conjunct))
    return equi_left, equi_right, residual_node


def _conjuncts(node: Node):
    if isinstance(node, BinaryOp) and node.op == "and":
        yield from _conjuncts(node.left)
        yield from _conjuncts(node.right)
    else:
        yield node


def _side_of(expr: Node, left_bindings: FrozenSet[str],
             right_bindings: FrozenSet[str]) -> Optional[str]:
    """Which input an expression exclusively references, if decidable."""
    sides = set()
    for node in expr.walk():
        if isinstance(node, ColumnRef):
            if node.table is None:
                return None  # ambiguous without schema info
            if node.table in left_bindings:
                sides.add("left")
            elif node.table in right_bindings:
                sides.add("right")
            else:
                return None
        if isinstance(node, SelectStatement):
            return None  # subqueries stay in the residual
    if sides == {"left"}:
        return "left"
    if sides == {"right"}:
        return "right"
    return None
