"""Trace replay wrapper.

Feeds a recorded trace (CSV file or in-memory rows) back into the
middleware, preserving the original timestamps — the standard tool for
reproducing a field deployment on a desk. A ``speedup`` factor compresses
the inter-arrival gaps.

Configuration predicates: ``file`` (CSV path; first row is the header and
must contain a ``timed`` column), ``speedup`` (default 1), ``loop``
("true" to restart at the end).
"""

from __future__ import annotations

import csv
from typing import Any, Dict, List, Optional

from repro.exceptions import WrapperError
from repro.streams.schema import StreamSchema, schema_from_example
from repro.wrappers.base import Wrapper


def _convert(text: str) -> Any:
    if text == "":
        return None
    for converter in (int, float):
        try:
            return converter(text)
        except ValueError:
            continue
    return text


class ReplayWrapper(Wrapper):
    wrapper_name = "replay"

    def __init__(self) -> None:
        super().__init__()
        self.rows: List[Dict[str, Any]] = []
        self._schema: Optional[StreamSchema] = None
        self._position = 0
        self._event = None

    # -- trace loading -------------------------------------------------------

    def load_rows(self, rows: List[Dict[str, Any]]) -> None:
        """Provide the trace programmatically instead of via a CSV file."""
        if not rows:
            raise WrapperError("replay trace is empty")
        for row in rows:
            if "timed" not in {k.lower() for k in row}:
                raise WrapperError("every trace row needs a 'timed' value")
        # Built (and sorted) locally, published with one atomic rebind:
        # a replay already running keeps iterating the old list.
        loaded = [
            {k.lower(): v for k, v in row.items()} for row in rows
        ]
        loaded.sort(key=lambda r: r["timed"])
        sample = {k: v for k, v in loaded[0].items() if k != "timed"}
        for row in loaded[1:]:
            for key, value in row.items():
                if key != "timed" and sample.get(key) is None:
                    sample[key] = value
        self._schema = schema_from_example(sample)
        self.rows = loaded

    def on_configure(self) -> None:
        self.speedup = self.config_float("speedup", 1.0)
        if self.speedup <= 0:
            raise WrapperError("speedup must be positive")
        self.loop = self.config_str("loop", "false").lower() == "true"
        path = self.config_str("file")
        if path:
            self._load_csv(path)

    def _load_csv(self, path: str) -> None:
        try:
            with open(path, newline="") as handle:
                reader = csv.DictReader(handle)
                rows = [
                    {key: _convert(value) for key, value in row.items()}
                    for row in reader
                ]
        except OSError as exc:
            raise WrapperError(f"cannot read trace {path!r}: {exc}") from exc
        if not rows:
            raise WrapperError(f"trace {path!r} is empty")
        self.load_rows(rows)

    def output_schema(self) -> StreamSchema:
        if self._schema is None:
            raise WrapperError("replay wrapper has no trace loaded")
        return self._schema

    # -- replay --------------------------------------------------------------

    def on_start(self) -> None:
        if not self.rows:
            raise WrapperError("replay wrapper has no trace loaded")
        with self._lock:
            self._position = 0
        if self.scheduler is not None:
            self._schedule_next()

    def on_stop(self) -> None:
        with self._lock:
            event, self._event = self._event, None
        if event is not None:
            event.cancel()

    def _schedule_next(self) -> None:
        with self._lock:
            if self._position >= len(self.rows):
                if not self.loop:
                    return
                self._position = 0
            if self._position == 0:
                delay = 0
            else:
                gap = (self.rows[self._position]["timed"]
                       - self.rows[self._position - 1]["timed"])
                delay = max(int(gap / self.speedup), 0)
            self._event = self.scheduler.after(delay, self._fire,
                                               name="replay")

    def _fire(self, fire_time: int) -> None:
        with self._lock:
            row = self.rows[self._position]
            self._position += 1
        values = {k: v for k, v in row.items() if k != "timed"}
        self.emit(values, timed=fire_time)
        self._schedule_next()

    def replay_all(self) -> int:
        """Emit the whole trace immediately with original timestamps
        (manual drive for tests and batch experiments)."""
        count = 0
        for row in self.rows:
            values = {k: v for k, v in row.items() if k != "timed"}
            self.emit(values, timed=int(row["timed"]))
            count += 1
        return count
