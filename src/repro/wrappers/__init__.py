"""Wrappers: platform adapters between sensors and the middleware.

"Adding a new type of sensor or sensor network can be done by supplying a
Java wrapper conforming to the GSN API ... typically around 100-200 lines"
(paper, Section 5). The Python equivalent is a small subclass of
:class:`~repro.wrappers.base.Wrapper` registered with the
:class:`~repro.wrappers.registry.WrapperRegistry`.

Bundled wrappers mirror the hardware used in the paper's demo: the TinyOS
mote family (Mica2, Mica2Dot, TinyNode), RFID readers, and HTTP/USB
cameras — all simulated — plus ``remote`` (GSN-to-GSN streaming), CSV
replay, scripted, and system-clock wrappers.
"""

from repro.wrappers.base import Wrapper, WrapperState
from repro.wrappers.registry import WrapperRegistry, default_registry
from repro.wrappers.generator import GeneratorWrapper
from repro.wrappers.motes import MoteWrapper
from repro.wrappers.rfid import RFIDReaderWrapper
from repro.wrappers.camera import CameraWrapper
from repro.wrappers.replay import ReplayWrapper
from repro.wrappers.scripted import ScriptedWrapper, SystemClockWrapper
from repro.wrappers.remote import RemoteWrapper

__all__ = [
    "Wrapper",
    "WrapperState",
    "WrapperRegistry",
    "default_registry",
    "GeneratorWrapper",
    "MoteWrapper",
    "RFIDReaderWrapper",
    "CameraWrapper",
    "ReplayWrapper",
    "ScriptedWrapper",
    "SystemClockWrapper",
    "RemoteWrapper",
]
