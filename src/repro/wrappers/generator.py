"""Signal-generator wrapper.

Produces synthetic waveforms — the standard tool for exercising
deployments and demos without modelling a specific device (the original
GSN ships a comparable multi-format test wrapper).

Configuration predicates: ``signal`` (``sine``, ``square``, ``ramp``,
``constant``, ``noise``; default sine), ``amplitude`` (default 100),
``period`` (ms per cycle, default 60000), ``offset`` (additive, default
0), ``interval`` (ms between samples), ``seed`` (noise only).
"""

from __future__ import annotations

import math
import random
from typing import Any, Dict, Optional

from repro.datatypes import DataType
from repro.exceptions import WrapperError
from repro.streams.schema import StreamSchema
from repro.wrappers.base import PeriodicWrapper

_SIGNALS = ("sine", "square", "ramp", "constant", "noise")


class GeneratorWrapper(PeriodicWrapper):
    wrapper_name = "generator"

    _SCHEMA = StreamSchema.build(value=DataType.DOUBLE,
                                 phase=DataType.DOUBLE)

    def output_schema(self) -> StreamSchema:
        return self._SCHEMA

    def on_configure(self) -> None:
        super().on_configure()
        self.signal = self.config_str("signal", "sine").lower()
        if self.signal not in _SIGNALS:
            raise WrapperError(
                f"unknown signal {self.signal!r}; pick one of {_SIGNALS}"
            )
        self.amplitude = self.config_float("amplitude", 100.0)
        self.period_ms = self.config_int("period", 60_000)
        if self.period_ms <= 0:
            raise WrapperError("period must be positive")
        self.offset = self.config_float("offset", 0.0)
        self._rng = random.Random(self.config_int("seed", 0))

    def produce(self, now: int) -> Optional[Dict[str, Any]]:
        phase = (now % self.period_ms) / self.period_ms
        if self.signal == "sine":
            value = math.sin(2.0 * math.pi * phase)
        elif self.signal == "square":
            value = 1.0 if phase < 0.5 else -1.0
        elif self.signal == "ramp":
            value = 2.0 * phase - 1.0
        elif self.signal == "constant":
            value = 1.0
        else:  # noise
            value = self._rng.uniform(-1.0, 1.0)
        return {
            "value": self.offset + self.amplitude * value,
            "phase": round(phase, 6),
        }
