"""Remote wrapper: GSN-to-GSN streaming with logical addressing.

``<address wrapper="remote">`` (paper, Figure 1) pulls a data stream from
a virtual sensor hosted *somewhere* in the GSN peer network, selected by
key/value predicates rather than by physical address — e.g.
``type=temperature, location=bc143``. The container injects a subscribe
function that resolves the predicates through the P2P directory and wires
the remote element flow back into this wrapper.
"""

from __future__ import annotations

from typing import Callable, Optional, Tuple

from repro.exceptions import WrapperError
from repro.streams.element import StreamElement
from repro.streams.schema import StreamSchema
from repro.wrappers.base import Wrapper

#: subscribe(predicates, listener) -> (schema, cancel_callable)
SubscribeFunc = Callable[
    [dict, Callable[[StreamElement], None]],
    Tuple[StreamSchema, Callable[[], None]],
]


class RemoteWrapper(Wrapper):
    wrapper_name = "remote"

    def __init__(self) -> None:
        super().__init__()
        self._subscribe: Optional[SubscribeFunc] = None
        self._cancel: Optional[Callable[[], None]] = None
        self._schema: Optional[StreamSchema] = None

    def bind(self, subscribe: SubscribeFunc) -> None:
        """Injected by the container: how to reach the peer network."""
        self._subscribe = subscribe

    def output_schema(self) -> StreamSchema:
        if self._schema is None:
            self._resolve()
        assert self._schema is not None
        return self._schema

    def _resolve(self) -> None:
        if self._subscribe is None:
            raise WrapperError(
                "remote wrapper is not bound to a peer network; "
                "deploy it through a GSNContainer"
            )
        schema, cancel = self._subscribe(
            dict(self.config), self._on_remote_element
        )
        with self._lock:
            self._schema = schema
            self._cancel = cancel

    def on_start(self) -> None:
        if self._cancel is None:
            self._resolve()

    def on_stop(self) -> None:
        with self._lock:
            cancel, self._cancel = self._cancel, None
        if cancel is not None:
            cancel()

    def _on_remote_element(self, element: StreamElement) -> None:
        # Keep the producer's timestamp: network delay must stay visible
        # (the paper treats delays as observable properties, not noise).
        self._dispatch(element)
