"""TinyOS mote wrapper (simulated Mica/Mica2/Mica2Dot/TinyNode).

Simulates a mote carrying the MTS310-style sensor board used in the
paper's demo: light, temperature, and 2-D acceleration. Readings follow a
slow sinusoidal drift plus seeded Gaussian noise, so streams look like real
telemetry while staying fully reproducible.

Configuration predicates: ``interval`` (ms between readings, default
1000), ``node-id``, ``seed``, ``missing-rate`` (probability a reading
drops a field, exercising the quality manager), ``light-base``,
``temperature-base``.
"""

from __future__ import annotations

import math
import random
from typing import Any, Dict, Optional

from repro.datatypes import DataType
from repro.streams.schema import StreamSchema
from repro.wrappers.base import PeriodicWrapper

#: One simulated day of drift, in milliseconds.
_DRIFT_PERIOD_MS = 86_400_000.0


class MoteWrapper(PeriodicWrapper):
    wrapper_name = "mote"

    _SCHEMA = StreamSchema.build(
        node_id=DataType.INTEGER,
        light=DataType.INTEGER,
        temperature=DataType.INTEGER,
        accel_x=DataType.DOUBLE,
        accel_y=DataType.DOUBLE,
    )

    def output_schema(self) -> StreamSchema:
        return self._SCHEMA

    def on_configure(self) -> None:
        super().on_configure()
        self.node_id = self.config_int("node-id", 1)
        self.light_base = self.config_float("light-base", 500.0)
        self.temperature_base = self.config_float("temperature-base", 22.0)
        self.missing_rate = self.config_float("missing-rate", 0.0)
        self._rng = random.Random(self.config_int("seed", self.node_id))
        self._covered = False  # True while someone hides the light sensor

    def cover_light_sensor(self) -> None:
        """Simulate a hand over the light sensor (the demo's event
        trigger: "hiding the light sensor on the motes")."""
        self._covered = True

    def uncover_light_sensor(self) -> None:
        self._covered = False

    def produce(self, now: int) -> Optional[Dict[str, Any]]:
        phase = 2.0 * math.pi * (now % _DRIFT_PERIOD_MS) / _DRIFT_PERIOD_MS
        light = self.light_base * (0.6 + 0.4 * math.sin(phase))
        light += self._rng.gauss(0.0, self.light_base * 0.02)
        if self._covered:
            light *= 0.02
        temperature = self.temperature_base + 3.0 * math.sin(phase)
        temperature += self._rng.gauss(0.0, 0.3)

        values: Dict[str, Any] = {
            "node_id": self.node_id,
            "light": max(int(light), 0),
            "temperature": int(round(temperature)),
            "accel_x": round(self._rng.gauss(0.0, 0.05), 4),
            "accel_y": round(self._rng.gauss(0.0, 0.05), 4),
        }
        if self.missing_rate > 0.0:
            for field in ("light", "temperature"):
                if self._rng.random() < self.missing_rate:
                    values[field] = None
        return values
