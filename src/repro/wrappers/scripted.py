"""Scripted and system-clock wrappers.

:class:`ScriptedWrapper` turns any Python callable into a data source —
the quickest way to integrate a computation or a test fixture.
:class:`SystemClockWrapper` is the classic GSN heartbeat wrapper: it emits
the container's current time, useful for liveness checks and as a join
pacemaker.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Optional

from repro.datatypes import DataType
from repro.exceptions import WrapperError
from repro.streams.schema import StreamSchema
from repro.wrappers.base import PeriodicWrapper

Producer = Callable[[int], Optional[Dict[str, Any]]]


class ScriptedWrapper(PeriodicWrapper):
    """Emits whatever a user-supplied function returns.

    The producer function and schema are injected with :meth:`script`
    (they cannot be expressed as string predicates). Configuration:
    ``interval`` (ms).
    """

    wrapper_name = "scripted"

    def __init__(self) -> None:
        super().__init__()
        self._producer: Optional[Producer] = None
        self._schema: Optional[StreamSchema] = None

    def script(self, producer: Producer, schema: StreamSchema) -> None:
        self._producer = producer
        self._schema = schema

    def output_schema(self) -> StreamSchema:
        if self._schema is None:
            raise WrapperError("scripted wrapper has no script attached")
        return self._schema

    def produce(self, now: int) -> Optional[Dict[str, Any]]:
        if self._producer is None:
            raise WrapperError("scripted wrapper has no script attached")
        return self._producer(now)


class SystemClockWrapper(PeriodicWrapper):
    """Heartbeat: emits the container time every ``interval`` ms."""

    wrapper_name = "system-clock"

    _SCHEMA = StreamSchema.build(clock=DataType.TIMESTAMP)

    def output_schema(self) -> StreamSchema:
        return self._SCHEMA

    def produce(self, now: int) -> Optional[Dict[str, Any]]:
        return {"clock": now}
