"""RFID reader wrapper (simulated Texas Instruments-style reader).

Two production modes, matching how the demo uses RFID:

- *polling*: every ``interval`` ms the reader scans; with probability
  ``detection-rate`` it reports one of its configured ``tags``;
- *manual*: :meth:`detect` injects a detection immediately — this is the
  demo's "passing a RFID tag in front of the RFID reader" interaction.

Configuration predicates: ``interval`` (ms), ``reader-id``, ``tags``
(comma-separated tag IDs), ``detection-rate`` (default 0: manual only),
``seed``.
"""

from __future__ import annotations

import random
from typing import Any, Dict, Optional

from repro.datatypes import DataType
from repro.exceptions import WrapperError
from repro.streams.element import StreamElement
from repro.streams.schema import StreamSchema
from repro.wrappers.base import PeriodicWrapper, WrapperState


class RFIDReaderWrapper(PeriodicWrapper):
    wrapper_name = "rfid"

    _SCHEMA = StreamSchema.build(
        reader_id=DataType.INTEGER,
        tag_id=DataType.VARCHAR,
        signal_strength=DataType.DOUBLE,
    )

    def output_schema(self) -> StreamSchema:
        return self._SCHEMA

    def on_configure(self) -> None:
        super().on_configure()
        self.reader_id = self.config_int("reader-id", 1)
        raw_tags = self.config_str("tags", "")
        self.tags = [tag.strip() for tag in raw_tags.split(",") if tag.strip()]
        self.detection_rate = self.config_float("detection-rate", 0.0)
        if not 0.0 <= self.detection_rate <= 1.0:
            raise WrapperError("detection-rate must be in [0, 1]")
        self._rng = random.Random(self.config_int("seed", self.reader_id))

    def produce(self, now: int) -> Optional[Dict[str, Any]]:
        if not self.tags or self._rng.random() >= self.detection_rate:
            return None  # nothing in range this scan
        return self._detection(self._rng.choice(self.tags))

    def detect(self, tag_id: str) -> StreamElement:
        """Manually inject a tag detection (demo interaction)."""
        if self.state is not WrapperState.RUNNING:
            raise WrapperError("reader is not running")
        return self.emit(self._detection(tag_id), timed=self.clock.now())

    def _detection(self, tag_id: str) -> Dict[str, Any]:
        return {
            "reader_id": self.reader_id,
            "tag_id": tag_id,
            "signal_strength": round(self._rng.uniform(-60.0, -30.0), 2),
        }
