"""Wrapper registry.

Maps ``<address wrapper="...">`` names to wrapper classes. A process-wide
:func:`default_registry` ships with all bundled wrappers; containers can
carry their own registry to sandbox custom platforms.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, Type

from repro.exceptions import WrapperError
from repro.wrappers.base import Wrapper


class WrapperRegistry:
    """A name → wrapper-class mapping with factory semantics."""

    def __init__(self) -> None:
        self._classes: Dict[str, Type[Wrapper]] = {}

    def register(self, wrapper_class: Type[Wrapper]) -> Type[Wrapper]:
        """Register a class under its ``wrapper_name`` (usable as a
        decorator). Aliases can be added with :meth:`register_alias`."""
        name = wrapper_class.wrapper_name.lower()
        if not name or name == "abstract":
            raise WrapperError(
                f"{wrapper_class.__name__} must define wrapper_name"
            )
        if name in self._classes and self._classes[name] is not wrapper_class:
            raise WrapperError(f"wrapper name {name!r} already registered")
        self._classes[name] = wrapper_class
        return wrapper_class

    def register_alias(self, alias: str, name: str) -> None:
        self._classes[alias.lower()] = self.get_class(name)

    def get_class(self, name: str) -> Type[Wrapper]:
        try:
            return self._classes[name.lower()]
        except KeyError:
            raise WrapperError(
                f"no wrapper registered under {name!r}; "
                f"known: {sorted(self._classes)}"
            ) from None

    def create(self, name: str) -> Wrapper:
        """Instantiate a fresh wrapper for one stream source."""
        return self.get_class(name)()

    def __contains__(self, name: object) -> bool:
        return isinstance(name, str) and name.lower() in self._classes

    def names(self) -> Iterable[str]:
        return sorted(self._classes)

    def knows(self) -> Callable[[str], bool]:
        """A predicate suitable for descriptor validation."""
        return self.__contains__


_default: WrapperRegistry = WrapperRegistry()


def default_registry() -> WrapperRegistry:
    """The process-wide registry, populated with all bundled wrappers on
    first use (import-cycle-safe lazy loading)."""
    if not list(_default.names()):
        from repro.wrappers.camera import CameraWrapper
        from repro.wrappers.generator import GeneratorWrapper
        from repro.wrappers.motes import MoteWrapper
        from repro.wrappers.remote import RemoteWrapper
        from repro.wrappers.replay import ReplayWrapper
        from repro.wrappers.rfid import RFIDReaderWrapper
        from repro.wrappers.scripted import ScriptedWrapper, SystemClockWrapper

        for wrapper_class in (MoteWrapper, RFIDReaderWrapper, CameraWrapper,
                              ReplayWrapper, ScriptedWrapper,
                              SystemClockWrapper, RemoteWrapper,
                              GeneratorWrapper):
            _default.register(wrapper_class)
        # The TinyOS family shares one wrapper implementation, as the
        # original GSN's TinyOS wrapper covered Mica, Mica2, Mica2Dot, ...
        for alias in ("mica", "mica2", "mica2dot", "tinynode", "tinyos"):
            _default.register_alias(alias, "mote")
    return _default
