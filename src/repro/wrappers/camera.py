"""Camera wrapper (simulated AXIS 206W-style HTTP/USB camera).

Produces JPEG-like binary payloads of a configurable size. The payload
size is what matters for the paper's Figure 3 (stream-element sizes of
15 B up to 75 KB), so frames are seeded pseudo-random bytes behind a JPEG
magic header rather than real images.

Configuration predicates: ``interval`` (ms between frames), ``camera-id``,
``image-size`` (payload bytes, default 32768), ``width``/``height``
(reported metadata only), ``seed``.
"""

from __future__ import annotations

import random
from typing import Any, Dict, Optional

from repro.datatypes import DataType
from repro.exceptions import WrapperError
from repro.streams.element import StreamElement
from repro.streams.schema import StreamSchema
from repro.wrappers.base import PeriodicWrapper, WrapperState

_JPEG_MAGIC = b"\xff\xd8\xff\xe0"


class CameraWrapper(PeriodicWrapper):
    wrapper_name = "camera"

    _SCHEMA = StreamSchema.build(
        camera_id=DataType.INTEGER,
        image=DataType.BINARY,
        width=DataType.INTEGER,
        height=DataType.INTEGER,
    )

    def output_schema(self) -> StreamSchema:
        return self._SCHEMA

    def on_configure(self) -> None:
        super().on_configure()
        self.camera_id = self.config_int("camera-id", 1)
        self.image_size = self.config_int("image-size", 32_768)
        if self.image_size < len(_JPEG_MAGIC):
            raise WrapperError(
                f"image-size must be at least {len(_JPEG_MAGIC)} bytes"
            )
        self.width = self.config_int("width", 640)
        self.height = self.config_int("height", 480)
        self._rng = random.Random(self.config_int("seed", self.camera_id))
        # One template frame shared across periodic emissions: keeps the
        # byte *volume* per element realistic (storage still writes every
        # byte) while window buffers hold references, not copies — a fleet
        # of 75 KB cameras must not exhaust memory.
        self._template = _JPEG_MAGIC + bytes(
            self._rng.getrandbits(8)
            for __ in range(self.image_size - len(_JPEG_MAGIC))
        )

    def produce(self, now: int) -> Optional[Dict[str, Any]]:
        return {
            "camera_id": self.camera_id,
            "image": self._template,
            "width": self.width,
            "height": self.height,
        }

    def frame(self, stamp: int) -> bytes:
        """One *distinct* synthetic frame of exactly ``image-size`` bytes
        (used by :meth:`snapshot`, where frame identity matters)."""
        stamp_bytes = stamp.to_bytes(8, "big", signed=False)
        body = (stamp_bytes + self._template[len(_JPEG_MAGIC):])
        return (_JPEG_MAGIC + body)[:self.image_size]

    def snapshot(self) -> StreamElement:
        """Capture one frame immediately (used by the demo's RFID-triggered
        picture notification)."""
        if self.state is not WrapperState.RUNNING:
            raise WrapperError("camera is not running")
        now = self.clock.now()
        values = self.produce(now)
        values["image"] = self.frame(now)
        return self.emit(values, timed=now)
