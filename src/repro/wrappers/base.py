"""The wrapper API.

A wrapper adapts one data source (a sensor network, a device, another GSN
node) to the middleware: it declares an output schema, accepts key/value
configuration from the ``<address>`` element, and *emits* stream elements
to its listeners. The whole contract is this class — which is what keeps
concrete wrappers in the paper's claimed 100-200 lines.
"""

from __future__ import annotations

import enum
import logging
from typing import Any, Callable, Dict, List, Mapping, Optional

from repro.concurrency import new_lock
from repro.exceptions import WrapperError
from repro.gsntime.clock import Clock, SystemClock
from repro.gsntime.scheduler import EventScheduler
from repro.streams.element import StreamElement
from repro.streams.schema import StreamSchema

Listener = Callable[[StreamElement], None]

logger = logging.getLogger("repro.wrappers")


class WrapperState(enum.Enum):
    CREATED = "created"
    CONFIGURED = "configured"
    RUNNING = "running"
    STOPPED = "stopped"


class Wrapper:
    """Base class for all wrappers.

    Subclasses must set :attr:`wrapper_name`, implement
    :meth:`output_schema`, and usually override :meth:`on_configure`,
    :meth:`on_start` and :meth:`on_stop`. Data is produced by calling
    :meth:`emit` with a plain dict of field values.
    """

    #: Name used in ``<address wrapper="...">``; subclasses override.
    wrapper_name = "abstract"

    def __init__(self) -> None:
        # Serializes lifecycle transitions and listener/counter state
        # against scheduler-driven production.  Hooks (``on_start``,
        # ``on_stop``, ``on_configure``) run *outside* the lock — they
        # may reach into the peer network, which delivers elements back
        # into wrappers under its own lock (see LOCK_ORDER).
        self._lock = new_lock("Wrapper._lock")
        self.state = WrapperState.CREATED
        self.clock: Clock = SystemClock()
        self.scheduler: Optional[EventScheduler] = None
        self.config: Dict[str, str] = {}
        self.elements_emitted = 0  # guarded-by: Wrapper._lock
        self._listeners: List[Listener] = []  # guarded-by: Wrapper._lock

    # -- wiring (called by the container) ----------------------------------

    def attach(self, clock: Clock,
               scheduler: Optional[EventScheduler] = None) -> None:
        """Give the wrapper its container's clock and, in simulation, the
        event scheduler driving periodic production."""
        self.clock = clock
        self.scheduler = scheduler

    def configure(self, predicates: Mapping[str, str]) -> None:
        """Apply the ``<address>`` predicates. Idempotent before start."""
        with self._lock:
            if self.state is WrapperState.RUNNING:
                raise WrapperError("cannot reconfigure a running wrapper")
            self.config = {k.lower(): str(v) for k, v in predicates.items()}
        self.on_configure()
        with self._lock:
            self.state = WrapperState.CONFIGURED

    def start(self) -> None:
        with self._lock:
            if self.state is WrapperState.RUNNING:
                return
            needs_configure = self.state is WrapperState.CREATED
        if needs_configure:
            self.configure({})
        self.on_start()
        with self._lock:
            self.state = WrapperState.RUNNING

    def stop(self) -> None:
        with self._lock:
            if self.state is not WrapperState.RUNNING:
                return
        self.on_stop()
        with self._lock:
            self.state = WrapperState.STOPPED

    def add_listener(self, listener: Listener) -> None:
        with self._lock:
            self._listeners.append(listener)

    def remove_listener(self, listener: Listener) -> None:
        with self._lock:
            try:
                self._listeners.remove(listener)
            except ValueError:
                pass

    @property
    def listener_count(self) -> int:
        with self._lock:
            return len(self._listeners)

    # -- subclass surface ----------------------------------------------------

    def output_schema(self) -> StreamSchema:
        """The schema of the elements this wrapper emits."""
        raise NotImplementedError

    def on_configure(self) -> None:
        """Parse :attr:`config` into typed attributes (override)."""

    def on_start(self) -> None:
        """Begin producing (register scheduler events, open devices)."""

    def on_stop(self) -> None:
        """Stop producing and release resources."""

    # -- production ----------------------------------------------------------

    def emit(self, values: Mapping[str, Any],
             timed: Optional[int] = None) -> StreamElement:
        """Deliver one reading to all listeners.

        The element keeps the producer's timestamp if given; otherwise it
        stays unstamped and the container applies its local clock on
        arrival (pipeline step 1).
        """
        element = StreamElement(values, timed=timed,
                                producer=self.wrapper_name)
        self._dispatch(element)
        return element

    def _dispatch(self, element: StreamElement) -> None:
        """Count the element and hand it to every listener.

        The listener list is snapshotted under the lock and the
        callbacks run outside it, so a listener may add/remove
        listeners (or block) without deadlocking the wrapper.
        """
        with self._lock:
            self.elements_emitted += 1
            listeners = list(self._listeners)
        for listener in listeners:
            listener(element)

    # -- config helpers -------------------------------------------------------

    def config_int(self, key: str, default: int) -> int:
        raw = self.config.get(key)
        if raw is None:
            return default
        try:
            return int(raw)
        except ValueError:
            raise WrapperError(
                f"{self.wrapper_name}: {key}={raw!r} is not an integer"
            ) from None

    def config_float(self, key: str, default: float) -> float:
        raw = self.config.get(key)
        if raw is None:
            return default
        try:
            return float(raw)
        except ValueError:
            raise WrapperError(
                f"{self.wrapper_name}: {key}={raw!r} is not a number"
            ) from None

    def config_str(self, key: str, default: str = "") -> str:
        return self.config.get(key, default)

    def __repr__(self) -> str:
        with self._lock:
            emitted = self.elements_emitted
        return (f"<{type(self).__name__} state={self.state.value} "
                f"emitted={emitted}>")


class PeriodicWrapper(Wrapper):
    """A wrapper producing one element every ``interval`` milliseconds.

    Subclasses implement :meth:`produce` returning the field values of the
    next reading. With a scheduler attached (simulation), production is
    event-driven; without one, the owner calls :meth:`tick` manually.
    """

    #: Consecutive produce() failures tolerated before the wrapper stops
    #: itself (a crashed device must not take the whole node's event
    #: loop down with it).
    MAX_CONSECUTIVE_FAILURES = 10

    def __init__(self) -> None:
        super().__init__()
        self.interval_ms = 1000
        self.phase_ms = 0
        self.produce_failures = 0
        self._consecutive_failures = 0
        self._event = None

    def on_configure(self) -> None:
        self.interval_ms = self.config_int("interval", 1000)
        if self.interval_ms <= 0:
            raise WrapperError("interval must be positive")
        # ``phase`` staggers the first firing so that fleets of devices
        # with equal intervals do not tick in artificial lockstep.
        self.phase_ms = self.config_int("phase", 0) % self.interval_ms

    def on_start(self) -> None:
        if self.scheduler is not None:
            event = self.scheduler.every(
                self.interval_ms, self._fire,
                start_delay=self.phase_ms or self.interval_ms,
                name=f"{self.wrapper_name}-tick",
            )
            with self._lock:
                self._event = event

    def on_stop(self) -> None:
        with self._lock:
            event, self._event = self._event, None
        if event is not None:
            event.cancel()

    def _fire(self, fire_time: int) -> None:
        try:
            values = self.produce(fire_time)
        except Exception as exc:
            # Isolate device faults: scheduled production must never kill
            # the container's event loop. Persistent faults stop the
            # wrapper instead of looping forever.
            with self._lock:
                self.produce_failures += 1
                self._consecutive_failures += 1
                consecutive = self._consecutive_failures
            logger.warning(
                "%s: produce() failed at t=%d (%d consecutive): %s",
                self.wrapper_name, fire_time, consecutive, exc,
            )
            if consecutive >= self.MAX_CONSECUTIVE_FAILURES:
                logger.error(
                    "%s: stopping after %d consecutive produce() failures",
                    self.wrapper_name, consecutive,
                )
                self.stop()
            return
        with self._lock:
            self._consecutive_failures = 0
        if values is not None:
            self.emit(values, timed=fire_time)

    def tick(self) -> Optional[StreamElement]:
        """Produce one element now (manual drive, e.g. in unit tests)."""
        if self.state is not WrapperState.RUNNING:
            raise WrapperError("wrapper is not running")
        now = self.clock.now()
        values = self.produce(now)
        if values is None:
            return None
        return self.emit(values, timed=now)

    def produce(self, now: int) -> Optional[Dict[str, Any]]:
        """The next reading's field values (``None`` skips this cycle)."""
        raise NotImplementedError
