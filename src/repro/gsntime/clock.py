"""Clocks.

Each GSN container owns a local clock (Section 3 of the paper: "a local
clock at each GSN container"). The middleware never calls ``time.time()``
directly; it asks its clock, so simulations can run at virtual speed and
experiments are reproducible.
"""

from __future__ import annotations

import abc
import time

from repro.concurrency import new_lock


class Clock(abc.ABC):
    """Source of the current time in epoch milliseconds."""

    @abc.abstractmethod
    def now(self) -> int:
        """Return the current time in milliseconds since the epoch."""

    def now_seconds(self) -> float:
        """Convenience: current time in floating-point seconds."""
        return self.now() / 1000.0


class SystemClock(Clock):
    """Wall-clock time from the operating system."""

    def now(self) -> int:
        return time.time_ns() // 1_000_000


class VirtualClock(Clock):
    """A manually advanced clock for simulation and tests.

    The clock is thread-safe: wrapper threads and the scheduler may read it
    while a test advances it.
    """

    def __init__(self, start: int = 0) -> None:
        if start < 0:
            raise ValueError("virtual clock cannot start before the epoch")
        self._now = start
        self._lock = new_lock("VirtualClock._lock")

    def now(self) -> int:
        with self._lock:
            return self._now

    def advance(self, millis: int) -> int:
        """Move time forward by ``millis`` and return the new time."""
        if millis < 0:
            raise ValueError("time cannot move backwards")
        with self._lock:
            self._now += millis
            return self._now

    def set(self, millis: int) -> None:
        """Jump to an absolute time, which must not be in the past."""
        with self._lock:
            if millis < self._now:
                raise ValueError(
                    f"cannot set clock to {millis}, already at {self._now}"
                )
            self._now = millis
