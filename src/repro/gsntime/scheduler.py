"""Discrete-event scheduler driving simulated deployments.

Simulated devices (motes, cameras, RFID readers) register periodic or
one-shot events; :meth:`EventScheduler.run_until` advances the associated
:class:`~repro.gsntime.clock.VirtualClock` from event to event, so an hour of
sensor traffic replays in milliseconds of wall time. The scheduler is also
what gives benchmark runs deterministic arrival patterns.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Callable, List, Optional, Tuple

from repro.exceptions import ConfigurationError
from repro.gsntime.clock import VirtualClock

#: An event callback receives the firing time in epoch milliseconds.
EventCallback = Callable[[int], None]


class ScheduledEvent:
    """Handle for a scheduled callback; allows cancellation."""

    __slots__ = ("time", "interval", "callback", "cancelled", "name")

    def __init__(self, time: int, interval: Optional[int],
                 callback: EventCallback, name: str = "") -> None:
        self.time = time
        self.interval = interval
        self.callback = callback
        self.cancelled = False
        self.name = name

    def cancel(self) -> None:
        """Prevent all future firings of this event."""
        self.cancelled = True

    def __repr__(self) -> str:
        kind = "periodic" if self.interval else "one-shot"
        return f"<ScheduledEvent {self.name or id(self)} {kind} t={self.time}>"


class EventScheduler:
    """A minimal, deterministic discrete-event loop.

    Events firing at the same instant run in scheduling order (FIFO),
    which keeps runs reproducible.
    """

    def __init__(self, clock: VirtualClock) -> None:
        self.clock = clock
        self._queue: List[Tuple[int, int, ScheduledEvent]] = []
        self._counter = itertools.count()
        self._events_fired = 0

    @property
    def events_fired(self) -> int:
        """Total number of callbacks executed so far."""
        return self._events_fired

    @property
    def pending(self) -> int:
        """Number of events still queued (including cancelled ones)."""
        return len(self._queue)

    def at(self, time: int, callback: EventCallback,
           name: str = "") -> ScheduledEvent:
        """Schedule ``callback`` to run at absolute time ``time`` (ms)."""
        if time < self.clock.now():
            raise ConfigurationError(
                f"cannot schedule at {time}, clock already at {self.clock.now()}"
            )
        event = ScheduledEvent(time, None, callback, name)
        heapq.heappush(self._queue, (time, next(self._counter), event))
        return event

    def after(self, delay: int, callback: EventCallback,
              name: str = "") -> ScheduledEvent:
        """Schedule ``callback`` to run ``delay`` ms from now."""
        if delay < 0:
            raise ConfigurationError("delay cannot be negative")
        return self.at(self.clock.now() + delay, callback, name)

    def every(self, interval: int, callback: EventCallback,
              start_delay: Optional[int] = None,
              name: str = "") -> ScheduledEvent:
        """Schedule ``callback`` every ``interval`` ms.

        The first firing happens after ``start_delay`` ms (defaults to one
        full interval). Returns a handle whose :meth:`ScheduledEvent.cancel`
        stops the recurrence.
        """
        if interval <= 0:
            raise ConfigurationError("interval must be positive")
        delay = interval if start_delay is None else start_delay
        if delay < 0:
            raise ConfigurationError("start delay cannot be negative")
        event = ScheduledEvent(self.clock.now() + delay, interval, callback, name)
        heapq.heappush(self._queue, (event.time, next(self._counter), event))
        return event

    def run_until(self, end_time: int) -> int:
        """Fire all events up to and including ``end_time``.

        Advances the virtual clock to each event's time, then to
        ``end_time``. Returns the number of callbacks fired.
        """
        fired = 0
        while self._queue and self._queue[0][0] <= end_time:
            event_time, __, event = heapq.heappop(self._queue)
            if event.cancelled:
                continue
            if event_time > self.clock.now():
                self.clock.set(event_time)
            event.callback(event_time)
            fired += 1
            self._events_fired += 1
            if event.interval is not None and not event.cancelled:
                event.time = event_time + event.interval
                heapq.heappush(
                    self._queue, (event.time, next(self._counter), event)
                )
        if end_time > self.clock.now():
            self.clock.set(end_time)
        return fired

    def run_for(self, duration_ms: int) -> int:
        """Run the simulation for ``duration_ms`` from the current time."""
        return self.run_until(self.clock.now() + duration_ms)

    def step(self) -> bool:
        """Fire exactly the next pending event; return ``False`` if none."""
        while self._queue:
            event_time, __, event = heapq.heappop(self._queue)
            if event.cancelled:
                continue
            if event_time > self.clock.now():
                self.clock.set(event_time)
            event.callback(event_time)
            self._events_fired += 1
            if event.interval is not None and not event.cancelled:
                event.time = event_time + event.interval
                heapq.heappush(
                    self._queue, (event.time, next(self._counter), event)
                )
            return True
        return False
