"""Duration and window-size specifications.

GSN descriptors express temporal extents as strings such as ``"10s"``,
``"1h"``, ``"500ms"`` or ``"2m30s"``; a bare number (``"10"``) denotes a
*count* of tuples rather than a time span (this is how the original GSN
distinguishes time- from count-based windows in ``storage-size``).
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Tuple

from repro.exceptions import ConfigurationError

#: Multipliers from unit suffix to milliseconds.
_UNIT_MS = {
    "ms": 1,
    "s": 1_000,
    "m": 60_000,
    "min": 60_000,
    "h": 3_600_000,
    "d": 86_400_000,
}

_COMPONENT = re.compile(r"(\d+(?:\.\d+)?)\s*(ms|min|s|m|h|d)", re.IGNORECASE)


@dataclass(frozen=True)
class Duration:
    """A span of time, stored in integer milliseconds."""

    millis: int

    def __post_init__(self) -> None:
        if self.millis < 0:
            raise ConfigurationError("durations cannot be negative")

    @property
    def seconds(self) -> float:
        return self.millis / 1000.0

    def __str__(self) -> str:
        return format_duration(self.millis)

    def __int__(self) -> int:
        return self.millis

    def __bool__(self) -> bool:
        return self.millis > 0

    def __add__(self, other: "Duration") -> "Duration":
        if not isinstance(other, Duration):
            return NotImplemented
        return Duration(self.millis + other.millis)

    def __mul__(self, factor: int) -> "Duration":
        return Duration(self.millis * factor)


def parse_duration(text: str) -> Duration:
    """Parse a duration string like ``"10s"``, ``"1h"`` or ``"2m30s"``.

    Raises :class:`ConfigurationError` for empty, negative, bare-numeric, or
    otherwise malformed inputs — bare numbers are counts, not durations, and
    must be handled by :func:`parse_window_spec`.
    """
    stripped = text.strip().lower()
    if not stripped:
        raise ConfigurationError("empty duration")
    total = 0.0
    position = 0
    matched_any = False
    while position < len(stripped):
        match = _COMPONENT.match(stripped, position)
        if match is None:
            raise ConfigurationError(f"malformed duration: {text!r}")
        value, unit = match.groups()
        total += float(value) * _UNIT_MS[unit.lower()]
        position = match.end()
        matched_any = True
    if not matched_any:
        raise ConfigurationError(f"malformed duration: {text!r}")
    return Duration(int(round(total)))


def parse_window_spec(text: str) -> Tuple[str, int]:
    """Parse a ``storage-size`` / window attribute.

    Returns ``("time", millis)`` for suffixed values (``"10s"``) and
    ``("count", n)`` for bare integers (``"10"``), mirroring GSN's
    convention for distinguishing time- and count-based windows.
    """
    stripped = text.strip()
    if not stripped:
        raise ConfigurationError("empty window specification")
    if stripped.isdigit():
        count = int(stripped)
        if count <= 0:
            raise ConfigurationError("count windows must hold at least 1 tuple")
        return ("count", count)
    return ("time", parse_duration(stripped).millis)


def format_duration(millis: int) -> str:
    """Render milliseconds using the largest exact units (``90000`` → ``"1m30s"``)."""
    if millis < 0:
        raise ConfigurationError("durations cannot be negative")
    if millis == 0:
        return "0ms"
    parts = []
    remaining = millis
    for unit, factor in (("d", 86_400_000), ("h", 3_600_000),
                         ("m", 60_000), ("s", 1_000), ("ms", 1)):
        amount, remaining = divmod(remaining, factor)
        if amount:
            parts.append(f"{amount}{unit}")
    return "".join(parts)
