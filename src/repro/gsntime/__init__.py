"""Time substrate: clocks, durations, and a discrete-event scheduler.

GSN timestamps are integer *milliseconds* since the Unix epoch (matching the
Java implementation's ``System.currentTimeMillis()``). Every component that
needs the current time takes a :class:`~repro.gsntime.clock.Clock` so that
tests and simulations can substitute a :class:`~repro.gsntime.clock.VirtualClock`.
"""

from repro.gsntime.clock import Clock, SystemClock, VirtualClock
from repro.gsntime.duration import Duration, parse_duration, parse_window_spec
from repro.gsntime.scheduler import EventScheduler, ScheduledEvent

__all__ = [
    "Clock",
    "SystemClock",
    "VirtualClock",
    "Duration",
    "parse_duration",
    "parse_window_spec",
    "EventScheduler",
    "ScheduledEvent",
]
