"""Notification delivery.

"The notification manager deals with the delivery of events and query
results to the registered clients [and] has an extensible architecture
which allows the user to customize it to any required notification
channel" (paper, Section 4).
"""

from repro.notifications.channels import (
    CallbackChannel,
    EmailChannel,
    LogChannel,
    NotificationChannel,
    QueueChannel,
    WebhookChannel,
)
from repro.notifications.manager import Notification, NotificationManager

__all__ = [
    "Notification",
    "NotificationManager",
    "NotificationChannel",
    "CallbackChannel",
    "QueueChannel",
    "LogChannel",
    "EmailChannel",
    "WebhookChannel",
]
