"""Notification channels.

Each channel is a delivery mechanism for query results and events. The
e-mail and webhook channels are *simulated* transports: they record the
messages they would have sent, preserving the extensibility story without
a network.
"""

from __future__ import annotations

import abc
import logging
from collections import deque
from typing import Any, Callable, Deque, Dict, List, Optional

from repro.exceptions import NotificationError


class NotificationChannel(abc.ABC):
    """One way of reaching a client."""

    def __init__(self, name: str) -> None:
        if not name.strip():
            raise NotificationError("channel needs a name")
        self.name = name.strip().lower()
        self.delivered = 0
        self.failed = 0

    def deliver(self, payload: Dict[str, Any]) -> None:
        """Deliver one notification payload, counting the outcome."""
        try:
            self._send(payload)
        except Exception as exc:
            self.failed += 1
            raise NotificationError(
                f"channel {self.name!r} failed: {exc}"
            ) from exc
        self.delivered += 1

    @abc.abstractmethod
    def _send(self, payload: Dict[str, Any]) -> None:
        """Transport-specific delivery."""


class CallbackChannel(NotificationChannel):
    """Invokes a Python callable — the channel applications embed."""

    def __init__(self, name: str,
                 callback: Callable[[Dict[str, Any]], None]) -> None:
        super().__init__(name)
        self._callback = callback

    def _send(self, payload: Dict[str, Any]) -> None:
        self._callback(payload)


class QueueChannel(NotificationChannel):
    """Buffers notifications for polling clients (the default channel)."""

    def __init__(self, name: str = "queue", maxlen: Optional[int] = None) -> None:
        super().__init__(name)
        self._queue: Deque[Dict[str, Any]] = deque(maxlen=maxlen)

    def _send(self, payload: Dict[str, Any]) -> None:
        self._queue.append(payload)

    def drain(self) -> List[Dict[str, Any]]:
        """Remove and return all pending notifications."""
        items = list(self._queue)
        self._queue.clear()
        return items

    def peek(self) -> Optional[Dict[str, Any]]:
        return self._queue[-1] if self._queue else None

    @property
    def pending(self) -> int:
        return len(self._queue)

    @property
    def capacity(self) -> Optional[int]:
        """Queue bound, or ``None`` when unbounded."""
        return self._queue.maxlen


class LogChannel(NotificationChannel):
    """Writes notifications to the standard :mod:`logging` system."""

    def __init__(self, name: str = "log",
                 logger: Optional[logging.Logger] = None) -> None:
        super().__init__(name)
        self._logger = logger or logging.getLogger("repro.notifications")

    def _send(self, payload: Dict[str, Any]) -> None:
        self._logger.info("notification %s: %s",
                          payload.get("subscription"), payload.get("summary"))


class EmailChannel(NotificationChannel):
    """Simulated SMTP: records outgoing messages in :attr:`outbox`."""

    def __init__(self, name: str = "email", recipient: str = "") -> None:
        super().__init__(name)
        if recipient and "@" not in recipient:
            raise NotificationError(f"bad recipient address {recipient!r}")
        self.recipient = recipient
        self.outbox: List[Dict[str, Any]] = []

    def _send(self, payload: Dict[str, Any]) -> None:
        self.outbox.append({
            "to": self.recipient or payload.get("client", "unknown"),
            "subject": f"GSN notification: {payload.get('subscription')}",
            "body": payload,
        })


class WebhookChannel(NotificationChannel):
    """Simulated HTTP POST: records requests in :attr:`requests`."""

    def __init__(self, name: str = "webhook", url: str = "") -> None:
        super().__init__(name)
        if url and not url.startswith(("http://", "https://")):
            raise NotificationError(f"bad webhook URL {url!r}")
        self.url = url
        self.requests: List[Dict[str, Any]] = []

    def _send(self, payload: Dict[str, Any]) -> None:
        self.requests.append({"url": self.url, "json": payload})
