"""The notification manager: channel registry and payload shaping."""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Dict, List

from repro.concurrency import new_lock
from repro.exceptions import NotificationError
from repro.notifications.channels import NotificationChannel, QueueChannel
from repro.sqlengine.relation import Relation
from repro.status import UptimeTracker, status_doc

if TYPE_CHECKING:  # avoid a circular import with repro.query
    from repro.query.subscription import Subscription


@dataclass(frozen=True)
class Notification:
    """What a channel receives, already flattened to plain data."""

    subscription: str
    client: str
    row_count: int
    rows: tuple
    summary: str

    def as_payload(self) -> Dict[str, Any]:
        return {
            "subscription": self.subscription,
            "client": self.client,
            "row_count": self.row_count,
            "rows": list(self.rows),
            "summary": self.summary,
        }


class NotificationManager:
    """Routes query results and events to named channels."""

    #: Rows above this count are truncated in payloads; clients wanting
    #: full results query the container directly.
    MAX_ROWS = 100

    def __init__(self) -> None:
        # Guards the channel registry and the counters; channel
        # ``deliver`` calls run arbitrary client code, so dispatch is
        # always resolve-under-lock, deliver-outside (GSN503 regression,
        # see CHANGES.md PR 4).
        self._lock = new_lock("NotificationManager._lock")
        self._channels: Dict[str, NotificationChannel] = {}  # guarded-by: NotificationManager._lock
        self.dispatched = 0  # guarded-by: NotificationManager._lock
        self.failures = 0  # guarded-by: NotificationManager._lock
        self.add_channel(QueueChannel("queue"))
        self._uptime = UptimeTracker()

    def add_channel(self, channel: NotificationChannel) -> None:
        with self._lock:
            if channel.name in self._channels:
                raise NotificationError(
                    f"channel {channel.name!r} already registered"
                )
            self._channels[channel.name] = channel

    def remove_channel(self, name: str) -> None:
        if name.lower() == "queue":
            raise NotificationError("the default queue channel cannot be removed")
        with self._lock:
            removed = self._channels.pop(name.lower(), None)
        if removed is None:
            raise NotificationError(f"no channel {name!r}")

    def has_channel(self, name: str) -> bool:
        with self._lock:
            return name.lower() in self._channels

    def channel(self, name: str) -> NotificationChannel:
        with self._lock:
            found = self._channels.get(name.lower())
        if found is None:
            raise NotificationError(f"no channel {name!r}")
        return found

    def channel_names(self) -> List[str]:
        with self._lock:
            return sorted(self._channels)

    def queue_depths(self) -> Dict[str, tuple]:
        """``{channel: (pending, capacity)}`` for every queue-backed
        channel; capacity is ``inf`` for unbounded queues. Feeds the
        ``gsn_notification_queue_*`` gauges and the health model."""
        with self._lock:
            channels = list(self._channels.values())
        depths: Dict[str, tuple] = {}
        for ch in channels:
            if isinstance(ch, QueueChannel):
                capacity = ch.capacity
                depths[ch.name] = (
                    ch.pending,
                    float(capacity) if capacity is not None else float("inf"),
                )
        return depths

    def deliver(self, subscription: "Subscription",
                result: Relation) -> Notification:
        """Shape ``result`` into a notification and push it to the
        subscription's channel. Channel errors count as failures but do
        not propagate — one broken client must not stall the pipeline."""
        rows = tuple(
            dict(zip(result.columns, row))
            for row in result.rows[: self.MAX_ROWS]
        )
        notification = Notification(
            subscription=subscription.name,
            client=subscription.client,
            row_count=len(result),
            rows=rows,
            summary=(f"{len(result)} row(s) from "
                     f"{', '.join(sorted(subscription.tables)) or 'constant'}"),
        )
        self._dispatch(subscription.channel, notification.as_payload())
        return notification

    def emit_event(self, channel: str, payload: Dict[str, Any]) -> None:
        """Deliver a raw event (used for lifecycle/monitoring events)."""
        self._dispatch(channel, payload)

    def _dispatch(self, name: str, payload: Dict[str, Any]) -> None:
        try:
            target = self.channel(name)
            # Deliver outside the lock: a channel is client code (it may
            # block, raise, or call back into this manager) and must not
            # stall or deadlock other dispatchers.
            target.deliver(payload)
        except NotificationError:
            with self._lock:
                self.failures += 1
        else:
            with self._lock:
                self.dispatched += 1

    def status(self) -> dict:
        with self._lock:
            channels = dict(self._channels)
            dispatched = self.dispatched
            failures = self.failures
        return status_doc(
            "notifications", "running",
            counters={"dispatched": dispatched,
                      "failures": failures},
            uptime_ms=self._uptime.uptime_ms(),
            channels={
                name: {"delivered": ch.delivered, "failed": ch.failed}
                for name, ch in channels.items()
            },
            dispatched=dispatched,
            failures=failures,
        )
