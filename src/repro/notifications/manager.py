"""The notification manager: channel registry and payload shaping."""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Dict, List

from repro.exceptions import NotificationError
from repro.notifications.channels import NotificationChannel, QueueChannel
from repro.sqlengine.relation import Relation
from repro.status import UptimeTracker, status_doc

if TYPE_CHECKING:  # avoid a circular import with repro.query
    from repro.query.subscription import Subscription


@dataclass(frozen=True)
class Notification:
    """What a channel receives, already flattened to plain data."""

    subscription: str
    client: str
    row_count: int
    rows: tuple
    summary: str

    def as_payload(self) -> Dict[str, Any]:
        return {
            "subscription": self.subscription,
            "client": self.client,
            "row_count": self.row_count,
            "rows": list(self.rows),
            "summary": self.summary,
        }


class NotificationManager:
    """Routes query results and events to named channels."""

    #: Rows above this count are truncated in payloads; clients wanting
    #: full results query the container directly.
    MAX_ROWS = 100

    def __init__(self) -> None:
        self._channels: Dict[str, NotificationChannel] = {}
        self.add_channel(QueueChannel("queue"))
        self.dispatched = 0
        self.failures = 0
        self._uptime = UptimeTracker()

    def add_channel(self, channel: NotificationChannel) -> None:
        if channel.name in self._channels:
            raise NotificationError(
                f"channel {channel.name!r} already registered"
            )
        self._channels[channel.name] = channel

    def remove_channel(self, name: str) -> None:
        if name.lower() == "queue":
            raise NotificationError("the default queue channel cannot be removed")
        if self._channels.pop(name.lower(), None) is None:
            raise NotificationError(f"no channel {name!r}")

    def has_channel(self, name: str) -> bool:
        return name.lower() in self._channels

    def channel(self, name: str) -> NotificationChannel:
        try:
            return self._channels[name.lower()]
        except KeyError:
            raise NotificationError(f"no channel {name!r}") from None

    def channel_names(self) -> List[str]:
        return sorted(self._channels)

    def deliver(self, subscription: "Subscription",
                result: Relation) -> Notification:
        """Shape ``result`` into a notification and push it to the
        subscription's channel. Channel errors count as failures but do
        not propagate — one broken client must not stall the pipeline."""
        rows = tuple(
            dict(zip(result.columns, row))
            for row in result.rows[: self.MAX_ROWS]
        )
        notification = Notification(
            subscription=subscription.name,
            client=subscription.client,
            row_count=len(result),
            rows=rows,
            summary=(f"{len(result)} row(s) from "
                     f"{', '.join(sorted(subscription.tables)) or 'constant'}"),
        )
        try:
            self.channel(subscription.channel).deliver(
                notification.as_payload()
            )
            self.dispatched += 1
        except NotificationError:
            self.failures += 1
        return notification

    def emit_event(self, channel: str, payload: Dict[str, Any]) -> None:
        """Deliver a raw event (used for lifecycle/monitoring events)."""
        try:
            self.channel(channel).deliver(payload)
            self.dispatched += 1
        except NotificationError:
            self.failures += 1

    def status(self) -> dict:
        return status_doc(
            "notifications", "running",
            counters={"dispatched": self.dispatched,
                      "failures": self.failures},
            uptime_ms=self._uptime.uptime_ms(),
            channels={
                name: {"delivered": ch.delivered, "failed": ch.failed}
                for name, ch in self._channels.items()
            },
            dispatched=self.dispatched,
            failures=self.failures,
        )
