"""The container's flight recorder: a black box for degradations.

A deployed container is only operable if an operator can answer "what
happened just before it degraded" without attaching a debugger. The
:class:`FlightRecorder` is a bounded, lock-cheap ring journal of
structured :class:`FlightEvent`\\ s — deploys, life-cycle transitions,
poisonings, worker crashes and restarts, crash-witness reports,
plan-cache evictions, remote hops — that snapshots itself into a JSON
"black-box dump" whenever a component degrades, a crash witness fires,
or an operator asks via ``GET /dump``.

Recording an event is one lock acquisition plus a deque append, cheap
enough to sit on supervision paths. ``FlightRecorder._lock`` is a leaf
lock: the recorder never calls out while holding it — in particular the
dump builder (which walks health checks, metrics and thread stacks)
always runs *after* the lock is released, on the recording thread.
"""

from __future__ import annotations

import logging
import sys
import threading
import time
import traceback
from collections import deque
from typing import Any, Callable, Deque, Dict, List, Optional

from repro.concurrency import new_lock

logger = logging.getLogger("repro.metrics.flight")

#: Event kinds that automatically trigger a black-box dump: a component
#: entered DEGRADED, or a crash witness fired (supervised or not).
DUMP_KINDS = frozenset({
    "degraded", "worker_crash", "server_crash", "thread_crash",
})

#: How many black-box dumps the recorder retains (each holds the full
#: event ring at trigger time, so a burst of crashes keeps the earliest
#: and the final picture).
DUMP_RETENTION = 8


class FlightEvent:
    """One structured journal entry."""

    __slots__ = ("seq", "at", "wall", "kind", "component", "detail")

    def __init__(self, seq: int, at: int, wall: float, kind: str,
                 component: str, detail: Dict[str, Any]) -> None:
        self.seq = seq
        self.at = at          # container clock, epoch ms (virtual in sim)
        self.wall = wall      # wall clock, for correlating with logs
        self.kind = kind
        self.component = component
        self.detail = detail

    def to_dict(self) -> Dict[str, Any]:
        doc: Dict[str, Any] = {
            "seq": self.seq,
            "at": self.at,
            "wall": self.wall,
            "kind": self.kind,
            "component": self.component,
        }
        if self.detail:
            doc["detail"] = dict(self.detail)
        return doc

    def __repr__(self) -> str:
        return (f"<FlightEvent #{self.seq} {self.kind} "
                f"{self.component!r} at={self.at}>")


#: Builds the container-specific dump sections (health report, metrics,
#: traces, thread stacks, profiler hot stacks). Installed by the
#: container; called with no locks held.
DumpBuilder = Callable[[], Dict[str, Any]]


class FlightRecorder:
    """Bounded ring journal of events + retained black-box dumps."""

    def __init__(self, capacity: int = 512,
                 clock: Optional[Callable[[], int]] = None) -> None:
        self.capacity = capacity
        self._clock = clock
        self._lock = new_lock("FlightRecorder._lock")
        self._events: Deque[FlightEvent] = deque(maxlen=capacity)  # guarded-by: FlightRecorder._lock
        self._seq = 0  # guarded-by: FlightRecorder._lock
        self._dumps: Deque[Dict[str, Any]] = deque(maxlen=DUMP_RETENTION)  # guarded-by: FlightRecorder._lock
        self._dumps_taken = 0  # guarded-by: FlightRecorder._lock
        #: Installed by the owning container once its components exist.
        self.dumper: Optional[DumpBuilder] = None

    # -- recording -----------------------------------------------------------

    def record(self, kind: str, component: str, **detail: Any) -> FlightEvent:
        """Append one event; degradation/crash kinds trigger a dump.

        The dump (if any) is built after the journal lock is released,
        on the calling thread — typically the crashing worker, which at
        that point holds no runtime locks.
        """
        now = self._clock() if self._clock is not None else 0
        with self._lock:
            self._seq += 1
            event = FlightEvent(self._seq, now, time.time(), kind,
                                component, detail)
            self._events.append(event)
        if kind in DUMP_KINDS and self.dumper is not None:
            self.dump(reason=f"{kind}:{component}", trigger=event)
        return event

    # -- dumping -------------------------------------------------------------

    def dump(self, reason: str,
             trigger: Optional[FlightEvent] = None) -> Dict[str, Any]:
        """Snapshot the journal (and the container, via the installed
        dump builder) into a retained black-box document."""
        sections: Dict[str, Any] = {}
        builder = self.dumper
        if builder is not None:
            try:
                sections = builder()
            except Exception as exc:
                # A broken dump builder must not take down the crashing
                # thread that triggered the dump — the journal snapshot
                # below still lands, with the builder failure noted.
                logger.exception("flight recorder: dump builder failed")
                sections = {"dump_error": f"{type(exc).__name__}: {exc}"}
        with self._lock:
            events = [event.to_dict() for event in self._events]
            doc: Dict[str, Any] = {
                "reason": reason,
                "at": self._clock() if self._clock is not None else 0,
                "wall": time.time(),
                "trigger": trigger.to_dict() if trigger is not None else None,
                "events": events,  # oldest -> newest
            }
            doc.update(sections)
            self._dumps.append(doc)
            self._dumps_taken += 1
        return doc

    # -- introspection -------------------------------------------------------

    def events(self, limit: Optional[int] = None) -> List[FlightEvent]:
        """Journal contents, oldest first."""
        with self._lock:
            events = list(self._events)
        return events[-limit:] if limit is not None else events

    def dumps(self) -> List[Dict[str, Any]]:
        """Retained black-box dumps, oldest first."""
        with self._lock:
            return list(self._dumps)

    def last_dump(self) -> Optional[Dict[str, Any]]:
        with self._lock:
            return self._dumps[-1] if self._dumps else None

    def status(self) -> dict:
        with self._lock:
            return {
                "recorded": self._seq,
                "buffered": len(self._events),
                "capacity": self.capacity,
                "dumps_taken": self._dumps_taken,
                "dumps_retained": len(self._dumps),
            }


def thread_stacks() -> List[Dict[str, Any]]:
    """Every live thread's current stack, JSON-ready.

    The dump's "what was everyone doing" section: pairs
    ``sys._current_frames`` with :func:`threading.enumerate` so frames
    carry the thread's name (the attribution key the whole runtime uses,
    e.g. ``gsn-pool-<sensor>-<n>``).
    """
    names = {thread.ident: thread for thread in threading.enumerate()}
    stacks = []
    for ident, frame in sorted(sys._current_frames().items()):
        thread = names.get(ident)
        stacks.append({
            "thread": thread.name if thread is not None else f"ident-{ident}",
            "daemon": thread.daemon if thread is not None else None,
            "stack": [line.rstrip("\n")
                      for line in traceback.format_stack(frame)],
        })
    return stacks
