"""Container-wide metrics registry with Prometheus-style exposition.

One :class:`MetricsRegistry` lives on each :class:`~repro.container.
GSNContainer`; every subsystem either owns *instruments* (counters,
gauges, histograms created through the registry and updated on the hot
path) or registers a *collector* (a pull hook sampled only at scrape
time, so components that already keep their own locked counters add zero
hot-path overhead).

The design follows the Prometheus client-library data model:

- a *metric family* has a name, a kind, help text, and a fixed tuple of
  label names;
- each distinct label-value combination materializes one *child*
  (:class:`Counter`, :class:`Gauge` or :class:`Histogram`) holding the
  actual value(s);
- :meth:`MetricsRegistry.expose_text` renders everything in the
  Prometheus text exposition format (version 0.0.4), which is what the
  ``/metrics`` HTTP endpoint serves.

All mutable state follows the repo's ``# guarded-by:`` lock discipline
(checked by ``gsn-lint --self-check``).
"""

from __future__ import annotations

from bisect import bisect_left
from typing import (
    Any, Callable, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple,
)

from repro.concurrency import new_lock
from repro.exceptions import ConfigurationError

#: Default latency buckets in milliseconds: the pipeline's interesting
#: range spans sub-0.1 ms incremental triggers to multi-second overload.
DEFAULT_LATENCY_BUCKETS_MS: Tuple[float, ...] = (
    0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 25.0, 50.0,
    100.0, 250.0, 500.0, 1000.0, 2500.0,
)

LabelValues = Tuple[str, ...]

#: One rendered sample: (label dict, value). Histograms use
#: :class:`HistogramSnapshot` as the value instead of a float.
Sample = Tuple[Dict[str, str], Any]


class HistogramSnapshot:
    """Immutable copy of a histogram child's state at collect time."""

    __slots__ = ("bounds", "counts", "sum", "count")

    def __init__(self, bounds: Tuple[float, ...], counts: Tuple[int, ...],
                 total: float, count: int) -> None:
        self.bounds = bounds      # upper bounds, exclusive of +Inf
        self.counts = counts      # per-bucket (non-cumulative), +Inf last
        self.sum = total
        self.count = count

    def cumulative(self) -> List[Tuple[float, int]]:
        """``(le, cumulative_count)`` pairs including the ``+Inf`` bucket."""
        pairs: List[Tuple[float, int]] = []
        running = 0
        for bound, bucket in zip(self.bounds, self.counts):
            running += bucket
            pairs.append((bound, running))
        pairs.append((float("inf"), running + self.counts[-1]))
        return pairs

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0


class FamilySnapshot:
    """One metric family as seen at collect time (instrument or collector)."""

    __slots__ = ("name", "kind", "help", "labelnames", "samples")

    def __init__(self, name: str, kind: str, help_text: str,
                 labelnames: Tuple[str, ...],
                 samples: List[Sample]) -> None:
        self.name = name
        self.kind = kind
        self.help = help_text
        self.labelnames = labelnames
        self.samples = samples


#: A pull hook: returns family snapshots computed from live component
#: state. Sampled only when the registry is scraped.
Collector = Callable[[], Iterable[FamilySnapshot]]


def gauge_family(name: str, help_text: str,
                 samples: Iterable[Tuple[Mapping[str, str], float]]
                 ) -> FamilySnapshot:
    """Convenience for collectors exposing point-in-time gauge readings."""
    rendered = [(dict(labels), float(value)) for labels, value in samples]
    labelnames = tuple(rendered[0][0]) if rendered else ()
    return FamilySnapshot(name, "gauge", help_text, labelnames, rendered)


def counter_family(name: str, help_text: str,
                   samples: Iterable[Tuple[Mapping[str, str], float]]
                   ) -> FamilySnapshot:
    """Convenience for collectors exposing monotonic totals."""
    rendered = [(dict(labels), float(value)) for labels, value in samples]
    labelnames = tuple(rendered[0][0]) if rendered else ()
    return FamilySnapshot(name, "counter", help_text, labelnames, rendered)


# ---------------------------------------------------------------------------
# instruments
# ---------------------------------------------------------------------------


class Counter:
    """A monotonically increasing value."""

    def __init__(self) -> None:
        self._value = 0.0  # guarded-by: Counter._lock
        self._lock = new_lock("Counter._lock")

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ConfigurationError("counters can only increase")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        with self._lock:
            return self._value


class Gauge:
    """A value that can go up and down."""

    def __init__(self) -> None:
        self._value = 0.0  # guarded-by: Gauge._lock
        self._lock = new_lock("Gauge._lock")

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value -= amount

    @property
    def value(self) -> float:
        with self._lock:
            return self._value


class Histogram:
    """Cumulative-bucket histogram (Prometheus semantics).

    ``observe`` is the hot-path call: one binary search plus three
    locked writes, cheap enough for per-pipeline-step latencies.
    """

    def __init__(self, bounds: Sequence[float]) -> None:
        ordered = tuple(sorted(float(b) for b in bounds))
        if not ordered:
            raise ConfigurationError("histogram needs at least one bucket")
        if len(set(ordered)) != len(ordered):
            raise ConfigurationError("duplicate histogram bucket bounds")
        self.bounds = ordered
        # One slot per finite bound plus the +Inf overflow slot.
        self._counts = [0] * (len(ordered) + 1)  # guarded-by: Histogram._lock
        self._sum = 0.0  # guarded-by: Histogram._lock
        self._count = 0  # guarded-by: Histogram._lock
        self._lock = new_lock("Histogram._lock")

    def observe(self, value: float) -> None:
        index = bisect_left(self.bounds, value)
        with self._lock:
            self._counts[index] += 1
            self._sum += value
            self._count += 1

    def snapshot(self) -> HistogramSnapshot:
        with self._lock:
            return HistogramSnapshot(self.bounds, tuple(self._counts),
                                     self._sum, self._count)

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    @property
    def sum(self) -> float:
        with self._lock:
            return self._sum


_KINDS = {"counter": Counter, "gauge": Gauge, "histogram": Histogram}


class MetricFamily:
    """A named metric plus its per-label-value children."""

    def __init__(self, name: str, kind: str, help_text: str,
                 labelnames: Sequence[str] = (),
                 buckets: Optional[Sequence[float]] = None) -> None:
        _check_metric_name(name)
        if kind not in _KINDS:
            raise ConfigurationError(f"unknown metric kind {kind!r}")
        for label in labelnames:
            _check_label_name(label)
        self.name = name
        self.kind = kind
        self.help = help_text
        self.labelnames = tuple(labelnames)
        self._buckets = tuple(buckets) if buckets is not None \
            else DEFAULT_LATENCY_BUCKETS_MS
        self._children: Dict[LabelValues, Any] = {}  # guarded-by: MetricFamily._lock
        self._lock = new_lock("MetricFamily._lock")

    def labels(self, **labels: str) -> Any:
        """The child instrument for one label-value combination.

        Children are created on first use and cached; callers on hot
        paths should keep the returned handle instead of re-resolving.
        """
        if set(labels) != set(self.labelnames):
            raise ConfigurationError(
                f"metric {self.name!r} takes labels {self.labelnames}, "
                f"got {tuple(sorted(labels))}"
            )
        key = tuple(str(labels[name]) for name in self.labelnames)
        with self._lock:
            child = self._children.get(key)
            if child is None:
                if self.kind == "histogram":
                    child = Histogram(self._buckets)
                else:
                    child = _KINDS[self.kind]()
                self._children[key] = child
        return child

    def child(self) -> Any:
        """The single child of an unlabeled family."""
        if self.labelnames:
            raise ConfigurationError(
                f"metric {self.name!r} is labeled; use labels()"
            )
        return self.labels()

    def collect(self) -> FamilySnapshot:
        with self._lock:
            children = list(self._children.items())
        samples: List[Sample] = []
        for values, child in sorted(children, key=lambda item: item[0]):
            labels = dict(zip(self.labelnames, values))
            if self.kind == "histogram":
                samples.append((labels, child.snapshot()))
            else:
                samples.append((labels, child.value))
        return FamilySnapshot(self.name, self.kind, self.help,
                              self.labelnames, samples)


# ---------------------------------------------------------------------------
# the registry
# ---------------------------------------------------------------------------


class MetricsRegistry:
    """All metric families and collectors of one container."""

    def __init__(self) -> None:
        self._families: Dict[str, MetricFamily] = {}  # guarded-by: MetricsRegistry._lock
        self._collectors: List[Collector] = []  # guarded-by: MetricsRegistry._lock
        self._lock = new_lock("MetricsRegistry._lock")

    # -- instrument creation ------------------------------------------------

    def counter(self, name: str, help_text: str = "",
                labelnames: Sequence[str] = ()) -> MetricFamily:
        return self._family(name, "counter", help_text, labelnames)

    def gauge(self, name: str, help_text: str = "",
              labelnames: Sequence[str] = ()) -> MetricFamily:
        return self._family(name, "gauge", help_text, labelnames)

    def histogram(self, name: str, help_text: str = "",
                  labelnames: Sequence[str] = (),
                  buckets: Optional[Sequence[float]] = None) -> MetricFamily:
        return self._family(name, "histogram", help_text, labelnames,
                            buckets=buckets)

    def _family(self, name: str, kind: str, help_text: str,
                labelnames: Sequence[str],
                buckets: Optional[Sequence[float]] = None) -> MetricFamily:
        """Get-or-create: repeated registration with a matching signature
        returns the existing family (sensors share per-step histograms)."""
        with self._lock:
            family = self._families.get(name)
            if family is None:
                family = MetricFamily(name, kind, help_text, labelnames,
                                      buckets=buckets)
                self._families[name] = family
                return family
        if family.kind != kind or family.labelnames != tuple(labelnames):
            raise ConfigurationError(
                f"metric {name!r} already registered as {family.kind} "
                f"with labels {family.labelnames}"
            )
        return family

    def register_collector(self, collector: Collector) -> None:
        """Add a pull hook sampled at scrape time (zero hot-path cost)."""
        with self._lock:
            self._collectors.append(collector)

    # -- scraping -----------------------------------------------------------

    def collect(self) -> List[FamilySnapshot]:
        """Snapshot every family (instruments first, then collectors)."""
        with self._lock:
            families = [self._families[name]
                        for name in sorted(self._families)]
            collectors = list(self._collectors)
        snapshots = [family.collect() for family in families]
        seen = {snapshot.name for snapshot in snapshots}
        for collector in collectors:
            for snapshot in collector():
                if snapshot.name in seen:
                    continue  # instruments win over late collectors
                seen.add(snapshot.name)
                snapshots.append(snapshot)
        snapshots.sort(key=lambda snapshot: snapshot.name)
        return snapshots

    def expose_text(self) -> str:
        """The Prometheus text exposition (format version 0.0.4)."""
        lines: List[str] = []
        for family in self.collect():
            if family.help:
                lines.append(f"# HELP {family.name} {_escape_help(family.help)}")
            lines.append(f"# TYPE {family.name} {family.kind}")
            for labels, value in family.samples:
                if family.kind == "histogram":
                    _render_histogram(lines, family.name, labels, value)
                else:
                    lines.append(
                        f"{family.name}{_render_labels(labels)} "
                        f"{_format_value(value)}"
                    )
        return "\n".join(lines) + "\n" if lines else ""

    def status(self) -> dict:
        snapshots = self.collect()
        return {
            "families": len(snapshots),
            "samples": sum(len(s.samples) for s in snapshots),
        }


# ---------------------------------------------------------------------------
# text format helpers
# ---------------------------------------------------------------------------


def _check_metric_name(name: str) -> None:
    if not name or not all(c.isalnum() or c in "_:" for c in name) \
            or name[0].isdigit():
        raise ConfigurationError(f"bad metric name {name!r}")


def _check_label_name(name: str) -> None:
    if not name or not all(c.isalnum() or c == "_" for c in name) \
            or name[0].isdigit() or name.startswith("__"):
        raise ConfigurationError(f"bad label name {name!r}")


def _escape_label_value(value: str) -> str:
    return (value.replace("\\", r"\\").replace("\n", r"\n")
            .replace('"', r'\"'))


def _escape_help(text: str) -> str:
    return text.replace("\\", r"\\").replace("\n", r"\n")


def _render_labels(labels: Mapping[str, str],
                   extra: Optional[Mapping[str, str]] = None) -> str:
    merged = dict(labels)
    if extra:
        merged.update(extra)
    if not merged:
        return ""
    body = ",".join(
        f'{key}="{_escape_label_value(str(value))}"'
        for key, value in merged.items()
    )
    return "{" + body + "}"


def _format_value(value: float) -> str:
    if value == float("inf"):
        return "+Inf"
    if value == float("-inf"):
        return "-Inf"
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return repr(float(value))


def _format_bound(bound: float) -> str:
    return "+Inf" if bound == float("inf") else _format_value(bound)


def _render_histogram(lines: List[str], name: str,
                      labels: Mapping[str, str],
                      snapshot: HistogramSnapshot) -> None:
    for bound, cumulative in snapshot.cumulative():
        lines.append(
            f"{name}_bucket"
            f"{_render_labels(labels, {'le': _format_bound(bound)})} "
            f"{cumulative}"
        )
    lines.append(f"{name}_sum{_render_labels(labels)} "
                 f"{_format_value(snapshot.sum)}")
    lines.append(f"{name}_count{_render_labels(labels)} {snapshot.count}")
