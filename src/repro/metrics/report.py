"""Text rendering of experiment results.

The benchmark harness prints the same rows/series the paper's figures
plot; these helpers render them as aligned ASCII tables so the output in
``bench_output.txt`` reads like the figure data.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple


@dataclass
class Series:
    """One plotted line: a label and (x, y) points."""

    label: str
    points: List[Tuple[float, float]] = field(default_factory=list)

    def add(self, x: float, y: float) -> None:
        self.points.append((x, y))

    def ys(self) -> List[float]:
        return [y for __, y in self.points]

    def xs(self) -> List[float]:
        return [x for x, __ in self.points]


def format_table(headers: Sequence[str],
                 rows: Sequence[Sequence[object]]) -> str:
    """Render rows as an aligned ASCII table."""
    text_rows = [[_fmt(cell) for cell in row] for row in rows]
    widths = [
        max(len(str(headers[i])),
            *(len(row[i]) for row in text_rows)) if text_rows
        else len(str(headers[i]))
        for i in range(len(headers))
    ]
    lines = [
        "  ".join(str(h).ljust(w) for h, w in zip(headers, widths)),
        "  ".join("-" * w for w in widths),
    ]
    lines.extend(
        "  ".join(cell.ljust(w) for cell, w in zip(row, widths))
        for row in text_rows
    )
    return "\n".join(lines)


def format_series_table(x_label: str, series: Sequence[Series]) -> str:
    """Render several series sharing the same x values as one table."""
    xs: List[float] = []
    for s in series:
        for x in s.xs():
            if x not in xs:
                xs.append(x)
    xs.sort()
    lookup: List[Dict[float, float]] = [dict(s.points) for s in series]
    headers = [x_label] + [s.label for s in series]
    rows = []
    for x in xs:
        row: List[object] = [x]
        for table in lookup:
            row.append(table.get(x, ""))
        rows.append(row)
    return format_table(headers, rows)


def _fmt(cell: object) -> str:
    if isinstance(cell, float):
        return f"{cell:.3f}"
    return str(cell)
