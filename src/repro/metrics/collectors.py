"""Latency and throughput collectors.

The experiments measure *internal processing time* of a GSN node (paper,
Figure 3) and *query processing time* (Figure 4); these collectors are the
instrumentation points. They measure wall time via ``perf_counter`` and
are deliberately tiny so their own overhead stays negligible.
"""

from __future__ import annotations

import math
import threading
import time
from typing import Dict, List, Optional

from repro.concurrency import new_lock


class LatencyRecorder:
    """Collects durations in milliseconds and reports summary statistics.

    Thread-safe: the in-flight start timestamp is thread-local (pipeline
    pools time concurrent runs independently) and aggregation is locked.
    """

    def __init__(self, keep_samples: bool = True) -> None:
        self.keep_samples = keep_samples
        self.samples: List[float] = []  # guarded-by: LatencyRecorder._lock
        self.count = 0  # guarded-by: LatencyRecorder._lock
        self.total_ms = 0.0  # guarded-by: LatencyRecorder._lock
        self.max_ms = 0.0  # guarded-by: LatencyRecorder._lock
        self.min_ms = math.inf  # guarded-by: LatencyRecorder._lock
        self._local = threading.local()
        self._lock = new_lock("LatencyRecorder._lock")

    def start(self) -> None:
        self._local.started = time.perf_counter()

    def stop(self) -> float:
        started: Optional[float] = getattr(self._local, "started", None)
        if started is None:
            raise RuntimeError("stop() without start()")
        elapsed_ms = (time.perf_counter() - started) * 1000.0
        self._local.started = None
        self.record(elapsed_ms)
        return elapsed_ms

    def record(self, elapsed_ms: float) -> None:
        with self._lock:
            self.count += 1
            self.total_ms += elapsed_ms
            if elapsed_ms > self.max_ms:
                self.max_ms = elapsed_ms
            if elapsed_ms < self.min_ms:
                self.min_ms = elapsed_ms
            if self.keep_samples:
                self.samples.append(elapsed_ms)

    @property
    def mean_ms(self) -> float:
        return self.total_ms / self.count if self.count else 0.0

    def percentile(self, q: float) -> float:
        """The ``q``-th percentile (0-100) of recorded samples."""
        if not self.samples:
            return 0.0
        if not 0 <= q <= 100:
            raise ValueError("percentile must be within [0, 100]")
        ordered = sorted(self.samples)
        index = min(int(len(ordered) * q / 100.0), len(ordered) - 1)
        return ordered[index]

    def reset(self) -> None:
        with self._lock:
            self.samples.clear()
            self.count = 0
            self.total_ms = 0.0
            self.max_ms = 0.0
            self.min_ms = math.inf

    def summary(self) -> Dict[str, float]:
        return {
            "count": self.count,
            "mean_ms": round(self.mean_ms, 4),
            "min_ms": 0.0 if self.count == 0 else round(self.min_ms, 4),
            "max_ms": round(self.max_ms, 4),
            "p50_ms": round(self.percentile(50), 4),
            "p95_ms": round(self.percentile(95), 4),
        }


class FastPathCounters:
    """Per-sensor counters for the incremental pipeline's fast paths.

    Every counter answers "did the optimization actually engage?" —
    exposed through ``VirtualSensor.status()`` and the dashboard so a
    deployment can verify it is running incrementally, and so the
    equivalence tests can assert which path produced a result.
    """

    def __init__(self) -> None:
        self.view_hits = 0  # guarded-by: FastPathCounters._lock
        self.view_misses = 0  # guarded-by: FastPathCounters._lock
        self.cache_hits = 0  # guarded-by: FastPathCounters._lock
        self.cache_misses = 0  # guarded-by: FastPathCounters._lock
        self.identity_hits = 0  # guarded-by: FastPathCounters._lock
        self.aggregate_hits = 0  # guarded-by: FastPathCounters._lock
        self.aggregate_fallbacks = 0  # guarded-by: FastPathCounters._lock
        self.legacy_queries = 0  # guarded-by: FastPathCounters._lock
        self.join_hits = 0  # guarded-by: FastPathCounters._lock
        self.join_fallbacks = 0  # guarded-by: FastPathCounters._lock
        self.compiled_queries = 0  # guarded-by: FastPathCounters._lock
        self.interpreted_queries = 0  # guarded-by: FastPathCounters._lock
        self.poisoned = 0  # guarded-by: FastPathCounters._lock
        self.static_disagreements = 0  # guarded-by: FastPathCounters._lock
        self._lock = new_lock("FastPathCounters._lock")

    def record_view(self, from_view: bool) -> None:
        """Step 2 served by the materialized view vs a full rebuild."""
        with self._lock:
            if from_view:
                self.view_hits += 1
            else:
                self.view_misses += 1

    def record_cache(self, hit: bool) -> None:
        """Per-source temporary relation reused (source unchanged)."""
        with self._lock:
            if hit:
                self.cache_hits += 1
            else:
                self.cache_misses += 1

    def record_identity(self) -> None:
        """``select * from wrapper`` answered by the view directly."""
        with self._lock:
            self.identity_hits += 1

    def record_aggregate(self) -> None:
        """Aggregate answered from running accumulators."""
        with self._lock:
            self.aggregate_hits += 1

    def record_aggregate_fallback(self) -> None:
        """An accumulator poisoned itself; query rerouted to legacy."""
        with self._lock:
            self.aggregate_fallbacks += 1

    def record_legacy(self) -> None:
        """Per-source query executed by the generic SQL engine."""
        with self._lock:
            self.legacy_queries += 1

    def record_join(self) -> None:
        """Stream query answered by the delta-maintained join state."""
        with self._lock:
            self.join_hits += 1

    def record_join_fallback(self) -> None:
        """A join state poisoned itself; stream query rerouted."""
        with self._lock:
            self.join_fallbacks += 1

    def record_compiled(self, compiled: bool) -> None:
        """A query ran through the compiled physical pipeline (vs the
        tree-walking interpreter, for shapes the compiler rejects)."""
        with self._lock:
            if compiled:
                self.compiled_queries += 1
            else:
                self.interpreted_queries += 1

    def record_poisoned(self) -> None:
        """An accumulator hit a delta error and pinned itself to the
        legacy path (``fastpath_poisoned_total`` in /metrics)."""
        with self._lock:
            self.poisoned += 1

    def record_static_disagreement(self) -> None:
        """A statically-eligible query failed to attach or poisoned at
        runtime — the deploy-time verdict was wrong, which gsn-plan
        treats as a defect in the analyzer, not in the sensor."""
        with self._lock:
            self.static_disagreements += 1

    def snapshot(self) -> Dict[str, int]:
        with self._lock:
            return {
                "view_hits": self.view_hits,
                "view_misses": self.view_misses,
                "cache_hits": self.cache_hits,
                "cache_misses": self.cache_misses,
                "identity_hits": self.identity_hits,
                "aggregate_hits": self.aggregate_hits,
                "aggregate_fallbacks": self.aggregate_fallbacks,
                "legacy_queries": self.legacy_queries,
                "join_hits": self.join_hits,
                "join_fallbacks": self.join_fallbacks,
                "compiled_queries": self.compiled_queries,
                "interpreted_queries": self.interpreted_queries,
                "poisoned": self.poisoned,
                "static_disagreements": self.static_disagreements,
            }


class ThroughputCounter:
    """Counts events against a (virtual or wall) clock timespan."""

    def __init__(self) -> None:
        self.events = 0
        self.first_at: Optional[int] = None
        self.last_at: Optional[int] = None

    def record(self, at_millis: int) -> None:
        self.events += 1
        if self.first_at is None:
            self.first_at = at_millis
        self.last_at = at_millis

    @property
    def per_second(self) -> float:
        """Observed event rate over the recorded timespan.

        Fewer than two events carry no rate information and yield 0.0.
        A single burst (all events on the same millisecond) clamps the
        span to 1 ms instead of reporting 0.0 — the measurement is
        coarse, but "at least N-1 events per millisecond" is the honest
        lower bound, not zero.
        """
        if self.events < 2 or self.first_at is None or self.last_at is None:
            return 0.0
        span_ms = max(self.last_at - self.first_at, 1)
        return (self.events - 1) / (span_ms / 1000.0)
