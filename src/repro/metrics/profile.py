"""Continuous sampling profiler: where is the container's time going?

A background thread sweeps every live thread's Python stack at a fixed
rate (``sys._current_frames``), attributes each sample to its owning
component through the runtime's thread-naming scheme
(``gsn-pool-<sensor>-<n>``, ``gsn-http``, ...), and aggregates the
collapsed stacks — the format flamegraph tools eat directly, served at
``GET /profile``.

The sampler never touches the threads it observes: a sweep is a dict of
frames plus pure-Python stack walking under one leaf lock, no
interpreter settrace/setprofile hooks and no per-call cost anywhere in
the pipeline. The whole overhead is (sweep cost) x (rate); both are
measured (``status()["overhead_percent"]``) and the product is gated in
CI against :data:`OVERHEAD_BUDGET_PERCENT`.

Frame labels are cached per code object, which keeps a sweep over a
dozen threads in the tens of microseconds — at the default ~67 Hz that
is well inside the 2% budget.
"""

from __future__ import annotations

import sys
import threading
from time import perf_counter
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.concurrency import new_lock

#: Default sampling rate. Deliberately off-round: a rate that divides
#: common wrapper intervals would phase-lock with the periodic work and
#: systematically over- or under-sample it.
DEFAULT_PROFILE_HZ = 67.0

#: Measured-overhead ceiling at the default rate, asserted by the
#: profiler micro-benchmark and gated in CI (benchmarks/check_micro.py).
OVERHEAD_BUDGET_PERCENT = 2.0

#: Pipeline-step attribution: the leaf-most frame matching one of these
#: function names decides which of the paper's five steps a sample
#: belongs to (see repro.metrics.tracing.PIPELINE_STEPS).
STEP_MARKERS: Dict[str, str] = {
    "admit": "timestamp",
    "ingest_span": "timestamp",
    "snapshot_state": "window_select",
    "window_relation": "window_select",
    "_source_temporary": "source_query",
    "_aggregate_snapshot": "source_query",
    "_output_result": "output_query",
    "_join_snapshot": "output_query",
    "_emit": "persist_notify",
    "deliver": "persist_notify",
}


def default_owner(thread_name: str) -> str:
    """Map a thread name onto its owning component.

    Pool workers are named ``gsn-pool-<owner>-<index>`` (the owner is
    the virtual-sensor name), the HTTP server thread ``gsn-http``, the
    profiler itself ``gsn-profiler``.
    """
    if thread_name.startswith("gsn-pool-"):
        rest = thread_name[len("gsn-pool-"):]
        owner, __, index = rest.rpartition("-")
        return owner if owner and index.isdigit() else rest
    if thread_name.startswith("gsn-http"):
        return "http-server"
    if thread_name.startswith("gsn-profiler"):
        return "profiler"
    if thread_name == "MainThread":
        return "main"
    return "other"


class SamplingProfiler:
    """Aggregated stack samples over all container threads."""

    def __init__(self, hz: float = DEFAULT_PROFILE_HZ,
                 owner_of: Optional[Callable[[str], str]] = None,
                 max_stack_depth: int = 48,
                 max_stacks: int = 512) -> None:
        if hz <= 0:
            raise ValueError("sampling rate must be positive")
        self.hz = float(hz)
        self.owner_of = owner_of or default_owner
        self.max_stack_depth = max_stack_depth
        self.max_stacks = max_stacks
        self._lock = new_lock("SamplingProfiler._lock")
        self._samples: Dict[Tuple[str, Tuple[str, ...]], int] = {}  # guarded-by: SamplingProfiler._lock
        self._label_cache: Dict[Any, str] = {}  # guarded-by: SamplingProfiler._lock
        self._names: Dict[int, str] = {}  # guarded-by: SamplingProfiler._lock
        self._sweeps = 0  # guarded-by: SamplingProfiler._lock
        self._total_samples = 0  # guarded-by: SamplingProfiler._lock
        self._dropped = 0  # guarded-by: SamplingProfiler._lock
        self._sampling_s = 0.0  # guarded-by: SamplingProfiler._lock
        self._wall_s = 0.0  # guarded-by: SamplingProfiler._lock (completed run segments)
        self._segment_t0: Optional[float] = None  # guarded-by: SamplingProfiler._lock
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None

    # -- sampling ------------------------------------------------------------

    def sample_once(self) -> int:
        """One sweep over every live thread; returns samples taken."""
        t0 = perf_counter()
        me = threading.get_ident()
        frames = sys._current_frames()
        taken = 0
        with self._lock:
            refresh_needed = any(ident not in self._names
                                 for ident in frames
                                 if ident != me)
            if refresh_needed:
                self._names = {t.ident: t.name
                               for t in threading.enumerate()
                               if t.ident is not None}
            for ident, frame in frames.items():
                if ident == me:
                    continue  # the sampler never profiles itself
                name = self._names.get(ident, f"ident-{ident}")
                stack: List[str] = []
                depth = 0
                while frame is not None and depth < self.max_stack_depth:
                    code = frame.f_code
                    label = self._label_cache.get(code)
                    if label is None:
                        module = frame.f_globals.get("__name__", "?")
                        label = f"{module}.{code.co_name}"
                        self._label_cache[code] = label
                    stack.append(label)
                    frame = frame.f_back
                    depth += 1
                stack.reverse()  # root -> leaf, the collapsed convention
                key = (self.owner_of(name), tuple(stack))
                if key in self._samples:
                    self._samples[key] += 1
                elif len(self._samples) < self.max_stacks:
                    self._samples[key] = 1
                else:
                    self._dropped += 1
                taken += 1
            self._total_samples += taken
            self._sweeps += 1
            self._sampling_s += perf_counter() - t0
        return taken

    def sample_burst(self, seconds: float,
                     hz: Optional[float] = None) -> int:
        """Sample synchronously for ``seconds`` (the on-demand
        ``/profile?seconds=`` path when no background thread runs)."""
        from time import sleep

        rate = hz or self.hz
        period = 1.0 / rate
        deadline = perf_counter() + max(0.0, seconds)
        taken = 0
        while perf_counter() < deadline:
            taken += self.sample_once()
            sleep(period)  # bounded
        return taken

    # -- background thread ---------------------------------------------------

    def start(self) -> "SamplingProfiler":
        with self._lock:
            if self._thread is not None:
                return self
            self._stop.clear()
            self._segment_t0 = perf_counter()
            thread = threading.Thread(
                target=self._run, name="gsn-profiler", daemon=True,
            )
            self._thread = thread
        thread.start()  # outside the lock, like every other spawn
        return self

    def _run(self) -> None:
        """Supervised envelope: a dying profiler is witnessed, and it
        never takes the container with it."""
        try:
            self._loop()
        except BaseException as exc:  # noqa: BLE001 - supervision boundary
            from repro.analysis import crashwitness
            witness = crashwitness.active()
            if witness is not None:
                witness.report(threading.current_thread().name, exc,
                               owner="profiler")

    def _loop(self) -> None:
        period = 1.0 / self.hz
        while not self._stop.wait(period):
            self.sample_once()

    def stop(self) -> None:
        with self._lock:
            thread = self._thread
            self._thread = None
            if self._segment_t0 is not None:
                self._wall_s += perf_counter() - self._segment_t0
                self._segment_t0 = None
        self._stop.set()
        if thread is not None:
            thread.join(timeout=5.0)

    @property
    def running(self) -> bool:
        with self._lock:
            return self._thread is not None

    # -- output --------------------------------------------------------------

    def collapsed(self) -> str:
        """Collapsed-stack text: ``owner;frame;frame;... count`` lines,
        hottest first — pipe straight into flamegraph.pl / speedscope."""
        with self._lock:
            items = sorted(self._samples.items(),
                           key=lambda item: (-item[1], item[0]))
        lines = [f"{owner};{';'.join(stack)} {count}"
                 for (owner, stack), count in items]
        return "\n".join(lines) + "\n" if lines else ""

    def hot_stacks(self, limit: int = 5) -> List[Dict[str, Any]]:
        with self._lock:
            items = sorted(self._samples.items(),
                           key=lambda item: (-item[1], item[0]))[:limit]
        return [{"owner": owner, "stack": list(stack), "samples": count}
                for (owner, stack), count in items]

    def by_owner(self) -> Dict[str, int]:
        """Sample counts per owning component (sensor, http-server...)."""
        with self._lock:
            out: Dict[str, int] = {}
            for (owner, __), count in self._samples.items():
                out[owner] = out.get(owner, 0) + count
            return out

    def by_step(self) -> Dict[str, int]:
        """Sample counts per pipeline step (leaf-most marker wins)."""
        with self._lock:
            items = list(self._samples.items())
        out: Dict[str, int] = {}
        for (__, stack), count in items:
            step = "other"
            for label in reversed(stack):  # leaf-most frame first
                marker = STEP_MARKERS.get(label.rsplit(".", 1)[-1])
                if marker is not None:
                    step = marker
                    break
            out[step] = out.get(step, 0) + count
        return out

    def overhead_percent(self) -> float:
        """Measured sampling cost as a share of profiled wall time.

        With no background run yet (synchronous tests, bursts) this
        falls back to the projected cost: mean sweep time x rate.
        """
        with self._lock:
            wall = self._wall_s
            if self._segment_t0 is not None:
                wall += perf_counter() - self._segment_t0
            if wall > 0:
                return 100.0 * self._sampling_s / wall
            if self._sweeps:
                mean_sweep = self._sampling_s / self._sweeps
                return 100.0 * mean_sweep * self.hz
            return 0.0

    def status(self) -> dict:
        overhead = self.overhead_percent()
        with self._lock:
            return {
                "running": self._thread is not None,
                "hz": self.hz,
                "sweeps": self._sweeps,
                "samples": self._total_samples,
                "distinct_stacks": len(self._samples),
                "dropped_stacks": self._dropped,
                "overhead_percent": round(overhead, 3),
                "overhead_budget_percent": OVERHEAD_BUDGET_PERCENT,
                "within_budget": overhead <= OVERHEAD_BUDGET_PERCENT,
            }
