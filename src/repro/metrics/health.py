"""Health model: per-component checks, a container verdict, and SLOs.

Two complementary views of "is this container healthy":

- :class:`HealthModel` aggregates per-component health checks (worker
  pools, HTTP server, peer links, the storage writer, per-sensor
  fast-path poison counts) into one worst-of verdict — the JSON served
  at ``GET /healthz`` and embedded in the container ``status()``. A
  check is a plain callable returning ``{"status": "ok" | "degraded" |
  "failed", ...detail}``; checks run only when a report is asked for,
  so the model costs nothing on the hot path.

- SLO objects (:class:`LatencySLO`, :class:`ThroughputSLO`) judge the
  live measurements against *declared objectives* — p99 trigger latency
  and ingest throughput — and derive burn-rate / error-budget gauges
  from the existing trace histograms, Aurora/Borealis-style QoS
  monitoring reduced to its two load-bearing numbers. The
  :class:`SLOTracker` exports them as ``gsn_slo_*`` metric families.

SLO misses are deliberately *informational*: they appear in the healthz
body and the metrics but do not flip the container verdict — a slow CI
machine must not read as an unhealthy container.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional

from repro.concurrency import new_lock
from repro.metrics.registry import (
    FamilySnapshot, HistogramSnapshot, MetricFamily, MetricsRegistry,
    gauge_family,
)

#: Worst-of ordering for the container verdict.
_SEVERITY = {"ok": 0, "degraded": 1, "failed": 2}

#: One health check: returns a dict carrying at least ``status``.
HealthCheck = Callable[[], Dict[str, Any]]


class HealthModel:
    """Named per-component checks aggregated into one verdict."""

    def __init__(self) -> None:
        self._lock = new_lock("HealthModel._lock")
        self._checks: Dict[str, HealthCheck] = {}  # guarded-by: HealthModel._lock

    def register(self, name: str, check: HealthCheck) -> None:
        """Add (or replace) a component's health check."""
        with self._lock:
            self._checks[name] = check

    def unregister(self, name: str) -> None:
        with self._lock:
            self._checks.pop(name, None)

    def check_names(self) -> List[str]:
        with self._lock:
            return sorted(self._checks)

    def report(self) -> Dict[str, Any]:
        """Run every check and aggregate the worst status.

        Checks run outside the model's lock (they read component state
        behind the components' own locks) and a check that raises is a
        *failed* component, not a crashed endpoint.
        """
        with self._lock:
            checks = sorted(self._checks.items())
        results: Dict[str, Dict[str, Any]] = {}
        worst = "ok"
        for name, check in checks:
            try:
                result = dict(check())
            except Exception as exc:  # gsn-lint: disable=GSN601
                # Not swallowed: the failure IS the health signal — it
                # surfaces as a failed component in the report.
                result = {"status": "failed",
                          "error": f"{type(exc).__name__}: {exc}"}
            status = result.get("status", "ok")
            if status not in _SEVERITY:
                result["status"] = status = "failed"
            if _SEVERITY[status] > _SEVERITY[worst]:
                worst = status
            results[name] = result
        return {"status": worst, "checks": results}


# ---------------------------------------------------------------------------
# SLOs
# ---------------------------------------------------------------------------


class LatencySLO:
    """Declared p99 objective over the trigger-latency histograms.

    Reads the ``gsn_pipeline_trigger_latency_ms`` family the tracer
    already feeds — no new hot-path instrumentation. Attainment is the
    fraction of triggers at or under the objective (resolved at bucket
    granularity); the burn rate is the bad fraction relative to the
    error budget ``1 - target`` (burn 1.0 = exactly spending the
    budget; >1 = on track to blow it).
    """

    kind = "latency"

    def __init__(self, name: str, family: MetricFamily,
                 objective_ms: float, target: float = 0.99) -> None:
        if not 0.0 < target < 1.0:
            raise ValueError("SLO target must be in (0, 1)")
        self.name = name
        self.family = family
        self.objective_ms = float(objective_ms)
        self.target = target

    def _merged(self) -> Optional[HistogramSnapshot]:
        snapshots = [value for __, value in self.family.collect().samples
                     if isinstance(value, HistogramSnapshot)]
        if not snapshots:
            return None
        bounds = snapshots[0].bounds
        counts = [0] * (len(bounds) + 1)
        total = 0.0
        count = 0
        for snap in snapshots:
            if snap.bounds != bounds:
                continue  # mismatched buckets never merge
            for index, bucket in enumerate(snap.counts):
                counts[index] += bucket
            total += snap.sum
            count += snap.count
        return HistogramSnapshot(bounds, tuple(counts), total, count)

    def measure(self) -> Dict[str, Any]:
        snap = self._merged()
        doc: Dict[str, Any] = {
            "slo": self.name,
            "kind": self.kind,
            "objective_ms": self.objective_ms,
            "target": self.target,
        }
        if snap is None or snap.count == 0:
            doc.update({"events": 0, "attainment": 1.0, "burn_rate": 0.0,
                        "error_budget_remaining": 1.0, "met": True})
            return doc
        good = snap.count  # objective beyond the last bound: all good
        p99: Optional[float] = None
        good_found = False
        for bound, cumulative in snap.cumulative():
            if p99 is None and cumulative >= 0.99 * snap.count:
                p99 = bound
            if not good_found and bound >= self.objective_ms:
                good = cumulative
                good_found = True
        attainment = good / snap.count
        budget = 1.0 - self.target
        burn = (1.0 - attainment) / budget
        doc.update({
            "events": snap.count,
            "good": good,
            "p99_ms_le": p99,
            "attainment": round(attainment, 6),
            "burn_rate": round(burn, 4),
            "error_budget_remaining": round(max(0.0, 1.0 - burn), 4),
            "met": attainment >= self.target,
        })
        return doc


class ThroughputSLO:
    """Declared elements-per-second objective over a monotonic counter.

    Rate is measured on the container clock (meaningful under the
    virtual clock too). Attainment is the achieved fraction of the
    objective, clamped to 1; with no elapsed time yet there is nothing
    to judge and the SLO reports as met.
    """

    kind = "throughput"

    def __init__(self, name: str, counter: Callable[[], float],
                 clock: Callable[[], int], objective_per_s: float,
                 target: float = 0.95) -> None:
        if objective_per_s <= 0:
            raise ValueError("throughput objective must be positive")
        if not 0.0 < target < 1.0:
            raise ValueError("SLO target must be in (0, 1)")
        self.name = name
        self.counter = counter
        self.clock = clock
        self.objective_per_s = float(objective_per_s)
        self.target = target
        self._t0 = clock()
        self._c0 = float(counter())

    def measure(self) -> Dict[str, Any]:
        doc: Dict[str, Any] = {
            "slo": self.name,
            "kind": self.kind,
            "objective_per_s": self.objective_per_s,
            "target": self.target,
        }
        span_s = (self.clock() - self._t0) / 1000.0
        if span_s <= 0:
            doc.update({"rate_per_s": None, "attainment": 1.0,
                        "burn_rate": 0.0, "error_budget_remaining": 1.0,
                        "met": True})
            return doc
        rate = (float(self.counter()) - self._c0) / span_s
        attainment = min(1.0, rate / self.objective_per_s)
        budget = 1.0 - self.target
        burn = (1.0 - attainment) / budget
        doc.update({
            "rate_per_s": round(rate, 3),
            "attainment": round(attainment, 6),
            "burn_rate": round(burn, 4),
            "error_budget_remaining": round(max(0.0, 1.0 - burn), 4),
            "met": attainment >= self.target,
        })
        return doc


class SLOTracker:
    """Holds the container's SLOs and exports their gauges.

    Registered as a metrics collector, so ``gsn_slo_objective``,
    ``gsn_slo_attainment_ratio``, ``gsn_slo_burn_rate`` and
    ``gsn_slo_error_budget_remaining_ratio`` materialize at scrape time
    from the same ``measure()`` pass the healthz body embeds.
    """

    def __init__(self, registry: MetricsRegistry,
                 slos: List[Any]) -> None:
        self.slos = list(slos)
        registry.register_collector(self._collect)

    def report(self) -> List[Dict[str, Any]]:
        return [slo.measure() for slo in self.slos]

    def _collect(self) -> List[FamilySnapshot]:
        objective = []
        attainment = []
        burn = []
        budget = []
        for doc in self.report():
            labels = {"slo": doc["slo"]}
            objective.append(
                (labels, doc.get("objective_ms",
                                 doc.get("objective_per_s", 0.0))))
            attainment.append((labels, doc["attainment"]))
            burn.append((labels, doc["burn_rate"]))
            budget.append((labels, doc["error_budget_remaining"]))
        return [
            gauge_family("gsn_slo_objective",
                         "Declared objective per SLO (ms for latency "
                         "SLOs, elements/s for throughput SLOs).",
                         objective),
            gauge_family("gsn_slo_attainment_ratio",
                         "Fraction of events meeting the SLO objective.",
                         attainment),
            gauge_family("gsn_slo_burn_rate",
                         "Bad-event fraction relative to the error "
                         "budget (1.0 = spending the budget exactly).",
                         burn),
            gauge_family("gsn_slo_error_budget_remaining_ratio",
                         "Share of the error budget still unspent.",
                         budget),
        ]
