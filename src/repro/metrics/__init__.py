"""Instrumentation: latency/throughput collectors and report formatting."""

from repro.metrics.ascii_plot import plot_series
from repro.metrics.collectors import LatencyRecorder, ThroughputCounter
from repro.metrics.report import Series, format_table

__all__ = ["LatencyRecorder", "ThroughputCounter", "Series",
           "format_table", "plot_series"]
