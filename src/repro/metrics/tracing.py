"""End-to-end pipeline tracing for the 5-step evaluation pipeline.

A *trace* follows one stream element from wrapper ingest through every
container it touches. The paper's Section 3 pipeline gives the span
vocabulary:

``timestamp``      step 1 — implicit timestamping on arrival (ingest)
``window_select``  step 2 — window selection and unnesting
``source_query``   step 3 — per-source queries producing temporaries
``output_query``   step 4 — the output query over the temporaries
``persist_notify`` step 5 — persist the result and notify consumers
``remote_hop``     Section 4 — container-to-container delivery

The trace id is stamped into :class:`~repro.streams.element.
StreamElement` provenance and travels inside the remote-subscription
payload, so a two-container deployment stitches into one trace visible
at ``/trace`` on both nodes.

Sampling: the decision is made once, at first ingest, with the
per-sensor rate from the descriptor's ``trace-sampling`` attribute.
Downstream containers respect an upstream decision — an element that
arrives carrying a trace id is always traced, one without never is.
"""

from __future__ import annotations

import threading
from collections import deque
from random import Random
from time import perf_counter
from typing import Any, Deque, Dict, List, Optional

from repro.concurrency import new_lock
from repro.metrics.registry import DEFAULT_LATENCY_BUCKETS_MS, MetricsRegistry

#: The five pipeline steps, in evaluation order (plus the remote hop).
PIPELINE_STEPS = ("timestamp", "window_select", "source_query",
                  "output_query", "persist_notify")
REMOTE_HOP_STEP = "remote_hop"

#: Per-thread id generators. A PRNG draw is ~5x cheaper than
#: ``uuid.uuid4()`` and this sits on the sampled ingest hot path; one
#: generator per thread means wrapper threads never serialize on a
#: process-wide lock just to mint an id (each ``Random()`` seeds itself
#: from the OS, so two threads never draw the same stream). 64 random
#: bits are plenty for correlating spans inside one deployment's
#: bounded ring buffers.
_id_local = threading.local()


def new_trace_id() -> str:
    """A fresh 16-hex-digit trace id."""
    rng = getattr(_id_local, "rng", None)
    if rng is None:
        rng = _id_local.rng = Random()
    return f"{rng.getrandbits(64):016x}"


class Span:
    """One timed operation inside a trace; spans nest into a tree."""

    __slots__ = ("trace_id", "name", "started_at", "duration_ms",
                 "attributes", "children", "_t0")

    def __init__(self, trace_id: str, name: str, started_at: int,
                 **attributes: Any) -> None:
        self.trace_id = trace_id
        self.name = name
        self.started_at = started_at  # container clock, epoch ms
        self.duration_ms: Optional[float] = None
        self.attributes: Dict[str, Any] = attributes
        self.children: List["Span"] = []
        self._t0 = perf_counter()

    # A span is single-owner: only the thread carrying the element
    # through the pipeline touches it until it is finished and handed to
    # the (locked) TraceBuffer, so no per-span lock is warranted.
    def child(self, name: str, **attributes: Any) -> "Span":
        """Open a nested span; the caller must :meth:`finish` it."""
        span = Span(self.trace_id, name, self.started_at, **attributes)
        self.children.append(span)  # gsn-lint: disable=GSN804
        return span

    def finish(self) -> "Span":
        """Close the span, fixing its wall-clock duration."""
        if self.duration_ms is None:
            self.duration_ms = (perf_counter() - self._t0) * 1_000.0  # gsn-lint: disable=GSN803
        return self

    def close(self, duration_ms: float) -> "Span":
        """Close with an externally measured duration (remote hops use
        the shared container clock, not this process's perf counter)."""
        self.duration_ms = duration_ms  # gsn-lint: disable=GSN801
        return self

    def to_dict(self) -> Dict[str, Any]:
        doc: Dict[str, Any] = {
            "trace_id": self.trace_id,
            "name": self.name,
            "started_at": self.started_at,
            "duration_ms": self.duration_ms,
        }
        if self.attributes:
            doc["attributes"] = dict(self.attributes)
        if self.children:
            doc["children"] = [child.to_dict() for child in self.children]
        return doc


class TraceBuffer:
    """Bounded ring buffer of finished span trees (the ``/trace`` feed)."""

    def __init__(self, capacity: int = 256) -> None:
        self._spans: Deque[Span] = deque(maxlen=capacity)  # guarded-by: TraceBuffer._lock
        self._added = 0  # guarded-by: TraceBuffer._lock
        self._lock = new_lock("TraceBuffer._lock")
        self.capacity = capacity

    def add(self, span: Span) -> None:
        with self._lock:
            self._spans.append(span)
            self._added += 1

    def recent(self, limit: Optional[int] = None) -> List[Span]:
        """Most recent span trees, newest first."""
        with self._lock:
            spans = list(self._spans)
        spans.reverse()
        return spans[:limit] if limit is not None else spans

    def find(self, trace_id: str) -> List[Span]:
        """All buffered span trees belonging to one trace, oldest first."""
        with self._lock:
            spans = list(self._spans)
        return [span for span in spans if span.trace_id == trace_id]

    def __len__(self) -> int:
        with self._lock:
            return len(self._spans)

    def status(self) -> dict:
        with self._lock:
            return {
                "buffered": len(self._spans),
                "capacity": self.capacity,
                "recorded": self._added,
            }


class PipelineTracer:
    """Per-sensor tracer: sampling decision, span trees, step histograms.

    With ``sampling == 0.0`` and no inbound trace ids, :meth:`begin`
    returns ``None`` after two attribute reads — the pipeline then runs
    exactly as before (the ≈0% overhead path). A sensor constructed
    outside a container (no sink/registry) gets a disabled tracer.
    """

    def __init__(self, sensor: str, node: str = "",
                 sampling: float = 1.0,
                 sink: Optional[TraceBuffer] = None,
                 registry: Optional[MetricsRegistry] = None,
                 seed: Optional[int] = None) -> None:
        self.sensor = sensor
        self.node = node
        self.sampling = max(0.0, min(1.0, float(sampling)))
        self.sink = sink
        self.enabled = sink is not None or registry is not None
        self._random = Random(seed)
        self._step_latency = None
        self._trigger_latency = None
        self._traces_total = None
        if registry is not None:
            family = registry.histogram(
                "gsn_pipeline_step_latency_ms",
                "Latency of each pipeline step, per sensor.",
                labelnames=("sensor", "step"),
                buckets=DEFAULT_LATENCY_BUCKETS_MS,
            )
            self._step_latency = {
                step: family.labels(sensor=sensor, step=step)
                for step in PIPELINE_STEPS
            }
            self._trigger_latency = registry.histogram(
                "gsn_pipeline_trigger_latency_ms",
                "End-to-end latency of one trigger (steps 2-5).",
                labelnames=("sensor",),
                buckets=DEFAULT_LATENCY_BUCKETS_MS,
            ).labels(sensor=sensor)
            self._traces_total = registry.counter(
                "gsn_traces_recorded_total",
                "Span trees recorded into the trace ring buffer.",
                labelnames=("sensor",),
            ).labels(sensor=sensor)

    # -- sampling -----------------------------------------------------------

    def sample(self) -> bool:
        """Fresh-element sampling decision (made once, at first ingest)."""
        if not self.enabled or self.sampling <= 0.0:
            return False
        return self.sampling >= 1.0 or self._random.random() < self.sampling

    # -- trigger spans ------------------------------------------------------

    def begin(self, trace_id: Optional[str], started_at: int,
              **attributes: Any) -> Optional[Span]:
        """Root span for one trigger, or ``None`` when not traced.

        ``trace_id`` is the id carried by the triggering element; a
        trigger whose element was not sampled is not traced.
        """
        if not self.enabled or trace_id is None:
            return None
        return Span(trace_id, "trigger", started_at,
                    sensor=self.sensor, node=self.node, **attributes)

    def finish(self, root: Optional[Span]) -> None:
        """Close the root, feed the histograms, push to the ring buffer."""
        if root is None:
            return
        root.finish()
        if self._step_latency is not None:
            for child in root.children:
                instrument = self._step_latency.get(child.name)
                if instrument is not None and child.duration_ms is not None:
                    instrument.observe(child.duration_ms)
            assert self._trigger_latency is not None
            self._trigger_latency.observe(root.duration_ms or 0.0)
        if self.sink is not None:
            self.sink.add(root)
            if self._traces_total is not None:
                self._traces_total.inc()

    # -- ingest spans -------------------------------------------------------

    def ingest_span(self, trace_id: str, started_at: int,
                    **attributes: Any) -> Span:
        """Open a step-1 (timestamp/ingest) span for a sampled element."""
        return Span(trace_id, "timestamp", started_at,
                    sensor=self.sensor, node=self.node, **attributes)

    def record_ingest(self, span: Span) -> None:
        """Finish an ingest span and feed the step-1 histogram."""
        span.finish()
        if self._step_latency is not None:
            instrument = self._step_latency.get("timestamp")
            if instrument is not None and span.duration_ms is not None:
                instrument.observe(span.duration_ms)


DISABLED_TRACER = PipelineTracer("", sampling=0.0)
