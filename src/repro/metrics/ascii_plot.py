"""ASCII rendering of figure series.

The paper presents its evaluation as plots; the benchmark harness prints
tables *and* these terminal-friendly charts, so ``bench_output.txt``
shows the shapes (the part we claim to reproduce) at a glance.
"""

from __future__ import annotations

import math
from typing import List, Sequence

from repro.metrics.report import Series

#: Glyphs assigned to series, in order.
_GLYPHS = "ox+*#@%&"


def plot_series(series: Sequence[Series], width: int = 64,
                height: int = 16, x_label: str = "x",
                y_label: str = "y", log_y: bool = False) -> str:
    """Render one or more series as an ASCII scatter chart.

    ``log_y`` plots a log10 y-axis — the right view for Figure 3, whose
    values span three orders of magnitude between overload and the
    converged tail.
    """
    points = [(x, y, index)
              for index, s in enumerate(series)
              for x, y in s.points]
    if not points:
        return "(no data)"

    def transform(y: float) -> float:
        if not log_y:
            return y
        return math.log10(max(y, 1e-9))

    xs = [p[0] for p in points]
    ys = [transform(p[1]) for p in points]
    x_low, x_high = min(xs), max(xs)
    y_low, y_high = min(ys), max(ys)
    x_span = (x_high - x_low) or 1.0
    y_span = (y_high - y_low) or 1.0

    grid: List[List[str]] = [[" "] * width for __ in range(height)]
    for (x, y, index) in points:
        column = int((x - x_low) / x_span * (width - 1))
        row = int((transform(y) - y_low) / y_span * (height - 1))
        grid[height - 1 - row][column] = _GLYPHS[index % len(_GLYPHS)]

    left_labels = _axis_labels(y_low, y_high, height, log_y)
    label_width = max(len(label) for label in left_labels)
    lines = [
        f"{left_labels[i].rjust(label_width)} |{''.join(grid[i])}"
        for i in range(height)
    ]
    lines.append(" " * label_width + " +" + "-" * width)
    x_axis = (f"{_fmt(x_low)}".ljust(width // 2)
              + f"{_fmt(x_high)}".rjust(width - width // 2))
    lines.append(" " * label_width + "  " + x_axis)
    lines.append(" " * label_width + f"  ({x_label} →, {y_label} ↑"
                 + (", log y)" if log_y else ")"))
    legend = "  ".join(
        f"{_GLYPHS[i % len(_GLYPHS)]}={s.label}"
        for i, s in enumerate(series)
    )
    lines.append(" " * label_width + "  " + legend)
    return "\n".join(lines)


def _axis_labels(y_low: float, y_high: float, height: int,
                 log_y: bool) -> List[str]:
    labels = [""] * height
    for fraction, position in ((1.0, 0), (0.5, height // 2),
                               (0.0, height - 1)):
        value = y_low + fraction * (y_high - y_low)
        if log_y:
            value = 10 ** value
        labels[position] = _fmt(value)
    return labels


def _fmt(value: float) -> str:
    if value == int(value) and abs(value) < 1e6:
        return str(int(value))
    if abs(value) >= 100:
        return f"{value:.0f}"
    return f"{value:.2f}"
