"""The shared status-document schema.

Every component's ``status()`` historically grew its own dict shape,
so the dashboard and the HTTP API silently diverged. All status docs now
share four top-level keys (asserted by ``tests/unit/test_status_schema.py``):

``name``
    The component's identity: a container, sensor, or subsystem name.
``state``
    One lowercase word for the life-cycle state (``"running"``,
    ``"stopped"``, ``"enabled"``, ...).
``counters``
    A flat ``str -> number`` dict of the component's monotonic counters.
``uptime_ms``
    Wall-clock milliseconds since the component was constructed (or
    started), so operators can turn counters into rates.

Components keep their legacy keys alongside these — existing dashboards
and tests continue to work — but every new consumer should rely only on
the shared schema.
"""

from __future__ import annotations

from time import monotonic
from typing import Any, Dict, Mapping, Optional, Union

#: The keys every status() document must carry.
SHARED_STATUS_KEYS = ("name", "state", "counters", "uptime_ms")

Number = Union[int, float]


class UptimeTracker:
    """Milliseconds since construction (process wall clock).

    Status documents use the process clock, not the container's possibly
    virtual clock: uptime answers "how long has this been running here",
    which is a property of the process.
    """

    __slots__ = ("_started",)

    def __init__(self) -> None:
        self._started = monotonic()

    def uptime_ms(self) -> int:
        return int((monotonic() - self._started) * 1_000)


def status_doc(name: str, state: str,
               counters: Optional[Mapping[str, Number]] = None,
               uptime_ms: int = 0,
               **extra: Any) -> Dict[str, Any]:
    """Build a status document carrying the shared schema plus legacy keys.

    ``extra`` keys must not collide with the shared ones — collisions
    mean a component tried to redefine the schema, which is exactly the
    divergence this module exists to stop.
    """
    for key in SHARED_STATUS_KEYS:
        if key in extra:
            raise ValueError(f"status_doc(): {key!r} is a shared key; "
                             f"pass it positionally")
    doc: Dict[str, Any] = {
        "name": name,
        "state": state,
        "counters": dict(counters or {}),
        "uptime_ms": uptime_ms,
    }
    doc.update(extra)
    return doc
