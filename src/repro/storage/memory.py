"""In-memory storage backend.

The default for transient streams (``permanent-storage="false"``): elements
live in a deque bounded by the retention policy, and relations are
materialized on demand.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Optional

from repro.exceptions import StorageError
from repro.sqlengine.relation import Relation
from repro.storage.base import RetentionPolicy, StorageBackend, StreamTable
from repro.streams.element import StreamElement
from repro.streams.schema import StreamSchema


class MemoryStreamTable(StreamTable):
    def __init__(self, name: str, schema: StreamSchema,
                 retention: RetentionPolicy) -> None:
        super().__init__(name, schema, retention)
        maxlen = retention.amount if retention.kind == "count" else None
        self._elements: Deque[StreamElement] = deque(maxlen=maxlen)

    def append(self, element: StreamElement) -> None:
        if element.timed is None:
            raise StorageError("cannot store an unstamped element")
        self.schema.validate(element.values)
        self._elements.append(element)
        self.appended += 1
        if self.retention.kind == "time":
            self._evict_time(element.timed)

    def _evict_time(self, reference: int) -> None:
        cutoff = reference - self.retention.amount
        while self._elements and self._elements[0].timed is not None \
                and self._elements[0].timed <= cutoff:
            self._elements.popleft()

    def _retained(self, now: Optional[int]):
        if self.retention.kind != "time":
            return list(self._elements)
        if now is None:
            now = self._elements[-1].timed if self._elements else 0
        cutoff = now - self.retention.amount
        return [e for e in self._elements
                if e.timed is not None and cutoff < e.timed <= now]

    def relation(self, now: Optional[int] = None) -> Relation:
        rows = (
            tuple(element.get(field) for field in self.schema.field_names)
            + (element.timed,)
            for element in self._retained(now)
        )
        return Relation(self.columns, rows)

    def count(self, now: Optional[int] = None) -> int:
        return len(self._retained(now))

    def latest(self) -> Optional[StreamElement]:
        return self._elements[-1] if self._elements else None


class MemoryStorage(StorageBackend):
    """A backend holding every stream table in process memory."""

    def _make_table(self, name: str, schema: StreamSchema,
                    retention: RetentionPolicy) -> StreamTable:
        return MemoryStreamTable(name, schema, retention)
