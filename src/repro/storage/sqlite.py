"""SQLite-backed persistent storage.

Plays the role MySQL plays in the original GSN: virtual sensors declaring
``permanent-storage="true"`` have their output streams written to an
SQLite database (on disk or ``:memory:``). Besides the standard
:class:`~repro.storage.base.StreamTable` interface, the backend exposes
:meth:`SQLiteStorage.execute_sql` so benchmarks can compare the scratch SQL
engine against SQLite on the same window contents.
"""

from __future__ import annotations

import sqlite3
import threading
from typing import Optional

from repro.concurrency import new_lock
from repro.datatypes import DataType
from repro.exceptions import StorageError
from repro.sqlengine.relation import Relation
from repro.storage.base import RetentionPolicy, StorageBackend, StreamTable
from repro.streams.element import StreamElement
from repro.streams.schema import StreamSchema

_SQLITE_TYPES = {
    DataType.INTEGER: "INTEGER",
    DataType.DOUBLE: "REAL",
    DataType.VARCHAR: "TEXT",
    DataType.BINARY: "BLOB",
    DataType.BOOLEAN: "INTEGER",
    DataType.TIMESTAMP: "INTEGER",
}


class SQLiteStreamTable(StreamTable):
    def __init__(self, name: str, schema: StreamSchema,
                 retention: RetentionPolicy,
                 connection: sqlite3.Connection,
                 lock: threading.Lock) -> None:
        super().__init__(name, schema, retention)
        self._connection = connection  # guarded-by: SQLiteStreamTable._lock
        # The storage backend's own lock, shared by all of its tables —
        # statically named both SQLiteStreamTable._lock and
        # SQLiteStorage._lock; LOCK_ORDER declares both aliases.
        self._lock = lock
        columns = ", ".join(
            f'"{field.name}" {_SQLITE_TYPES[field.type]}'
            for field in schema
        )
        with self._lock:
            self._connection.execute(
                f'CREATE TABLE IF NOT EXISTS "{name}" '
                f"(_seq INTEGER PRIMARY KEY AUTOINCREMENT, "
                f'{columns}, "timed" INTEGER NOT NULL)'
            )
            self._connection.execute(
                f'CREATE INDEX IF NOT EXISTS "idx_{name}_timed" '
                f'ON "{name}" ("timed")'
            )
            # The lock exists to serialize exactly this: statement plus
            # commit as one atomic unit on the shared connection.
            self._connection.commit()  # gsn-lint: disable=GSN502
        self._insert_sql = (
            f'INSERT INTO "{name}" ('
            + ", ".join(f'"{c}"' for c in self.columns)
            + ") VALUES ("
            + ", ".join("?" for __ in self.columns)
            + ")"
        )

    def append(self, element: StreamElement) -> None:
        if element.timed is None:
            raise StorageError("cannot store an unstamped element")
        values = self.schema.validate(element.values)
        row = [
            int(v) if isinstance(v, bool) else v
            for v in (values[field] for field in self.schema.field_names)
        ]
        row.append(element.timed)
        with self._lock:
            self._connection.execute(self._insert_sql, row)
            self.appended += 1
            self._evict(element.timed)
            # Insert + evict + commit must be one atomic unit on the
            # shared connection; committing outside would interleave
            # with other tables' statements. Durability cost is bounded
            # (single row) and the lock is leaf-level in LOCK_ORDER.
            self._connection.commit()  # gsn-lint: disable=GSN502

    def _evict(self, reference: int) -> None:  # requires-lock: _lock
        if self.retention.kind == "time":
            cutoff = reference - self.retention.amount
            self._connection.execute(
                f'DELETE FROM "{self.name}" WHERE "timed" <= ?', (cutoff,)
            )
        elif self.retention.kind == "count":
            self._connection.execute(
                f'DELETE FROM "{self.name}" WHERE _seq <= ('
                f'SELECT _seq FROM "{self.name}" '
                f"ORDER BY _seq DESC LIMIT 1 OFFSET ?)",
                (self.retention.amount,),
            )

    def _where(self, now: Optional[int]) -> str:
        if self.retention.kind == "time" and now is not None:
            cutoff = now - self.retention.amount
            return f'WHERE "timed" > {cutoff} AND "timed" <= {now}'
        return ""

    def relation(self, now: Optional[int] = None) -> Relation:
        column_list = ", ".join(f'"{c}"' for c in self.columns)
        sql = (f'SELECT {column_list} FROM "{self.name}" '
               f"{self._where(now)} ORDER BY _seq")
        with self._lock:
            cursor = self._connection.execute(sql)
            rows = cursor.fetchall()
        decoded = [
            tuple(
                bool(value) if self.schema[column].type is DataType.BOOLEAN
                and value is not None else value
                for column, value in zip(self.columns[:-1], row[:-1])
            ) + (row[-1],)
            for row in rows
        ]
        return Relation(self.columns, decoded)

    def count(self, now: Optional[int] = None) -> int:
        sql = f'SELECT COUNT(*) FROM "{self.name}" {self._where(now)}'
        with self._lock:
            return self._connection.execute(sql).fetchone()[0]

    def latest(self) -> Optional[StreamElement]:
        column_list = ", ".join(f'"{c}"' for c in self.columns)
        sql = (f'SELECT {column_list} FROM "{self.name}" '
               f"ORDER BY _seq DESC LIMIT 1")
        with self._lock:
            row = self._connection.execute(sql).fetchone()
        if row is None:
            return None
        values = {}
        for column, value in zip(self.columns[:-1], row[:-1]):
            if self.schema[column].type is DataType.BOOLEAN and value is not None:
                value = bool(value)
            values[column] = value
        return StreamElement(values, timed=row[-1], producer=self.name)


class SQLiteStorage(StorageBackend):
    """Stream tables persisted in one SQLite database."""

    def __init__(self, path: str = ":memory:") -> None:
        super().__init__()
        self.path = path
        try:
            self._connection = sqlite3.connect(  # guarded-by: SQLiteStorage._lock
                path, check_same_thread=False)
        except sqlite3.Error as exc:
            raise StorageError(f"cannot open database {path!r}: {exc}") from exc
        self._lock = new_lock("SQLiteStorage._lock")

    def _make_table(self, name: str, schema: StreamSchema,
                    retention: RetentionPolicy) -> StreamTable:
        return SQLiteStreamTable(name, schema, retention,
                                 self._connection, self._lock)

    def _dispose(self, table: StreamTable) -> None:
        with self._lock:
            self._connection.execute(f'DROP TABLE IF EXISTS "{table.name}"')
            # DROP + commit as one unit, same justification as append().
            self._connection.commit()  # gsn-lint: disable=GSN502

    def execute_sql(self, sql: str) -> Relation:
        """Run arbitrary (read-only) SQL directly on the database.

        Used by the ablation benchmark comparing the scratch engine with
        SQLite, and available to applications that prefer SQLite semantics.
        """
        with self._lock:
            try:
                cursor = self._connection.execute(sql)
            except sqlite3.Error as exc:
                raise StorageError(f"sqlite error: {exc}") from exc
            columns = [d[0].lower() for d in cursor.description or ()]
            rows = cursor.fetchall()
        return Relation(columns, rows)

    def close(self) -> None:
        self._tables.clear()
        with self._lock:
            self._connection.close()
