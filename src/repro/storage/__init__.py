"""Storage layer.

"The data from/to the VSM passes through the storage layer which is in
charge of providing and managing persistent storage for data streams"
(paper, Section 4). Two backends are provided:

- :class:`~repro.storage.memory.MemoryStorage` — bounded in-memory stream
  tables, the default for transient streams;
- :class:`~repro.storage.sqlite.SQLiteStorage` — SQLite-backed persistence
  playing the role MySQL plays in the original GSN.

A :class:`~repro.storage.manager.StorageManager` owns both and routes each
virtual sensor's output stream according to its ``<storage>`` directive.
"""

from repro.storage.base import StorageBackend, StreamTable
from repro.storage.memory import MemoryStorage
from repro.storage.sqlite import SQLiteStorage
from repro.storage.manager import StorageManager

__all__ = [
    "StorageBackend",
    "StreamTable",
    "MemoryStorage",
    "SQLiteStorage",
    "StorageManager",
]
