"""Per-container storage manager.

Routes each virtual sensor's output stream to the right backend according
to its ``<storage permanent-storage=... size=...>`` directive, allocates
collision-free table names, and exposes everything as a
:class:`~repro.sqlengine.executor.Catalog` view so registered queries can
read any stream hosted by the container.
"""

from __future__ import annotations

import logging
import re
from typing import Dict, Optional

from repro.concurrency import new_lock
from repro.exceptions import StorageError
from repro.sqlengine.executor import Catalog
from repro.sqlengine.relation import Relation
from repro.storage.base import RetentionPolicy, StorageBackend, StreamTable
from repro.storage.memory import MemoryStorage
from repro.storage.sqlite import SQLiteStorage
from repro.streams.schema import StreamSchema

_SAFE_NAME = re.compile(r"[^a-z0-9_]")

logger = logging.getLogger("repro.storage")


def safe_table_name(raw: str) -> str:
    """Sanitize an arbitrary sensor name into an SQL-safe table name."""
    lowered = _SAFE_NAME.sub("_", raw.lower())
    if not lowered or not (lowered[0].isalpha() or lowered[0] == "_"):
        lowered = "t_" + lowered
    return lowered


class StorageManager:
    """Owns the memory and persistent backends of one GSN container.

    Parameters
    ----------
    database_path:
        Location of the SQLite database backing permanent streams
        (defaults to in-memory, which still exercises the SQLite code
        path while keeping tests hermetic).
    """

    def __init__(self, database_path: str = ":memory:") -> None:
        self.memory = MemoryStorage()
        self.persistent = SQLiteStorage(database_path)
        # Serializes the routing table: deploys mutate it on the
        # application thread while health checks and registered queries
        # walk it from scheduler callbacks.  Backend calls (which take
        # their own connection locks and may commit) stay outside it.
        self._lock = new_lock("StorageManager._lock")
        self._homes: Dict[str, StorageBackend] = {}  # guarded-by: StorageManager._lock

    def create_stream(self, name: str, schema: StreamSchema,
                      retention: Optional[str] = None,
                      permanent: bool = False) -> StreamTable:
        """Create a stream table, choosing the backend by ``permanent``."""
        table_name = safe_table_name(name)
        backend = self.persistent if permanent else self.memory
        # Reserve the name first so a concurrent create fails fast, then
        # build the table outside the lock (SQLite commits can block).
        with self._lock:
            if table_name in self._homes:
                raise StorageError(f"stream {name!r} already exists")
            self._homes[table_name] = backend
        try:
            table = backend.create(table_name, schema,
                                   RetentionPolicy.parse(retention))
        except Exception:
            with self._lock:
                self._homes.pop(table_name, None)
            raise
        logger.info("created %s stream %s (retention=%s)",
                    "persistent" if permanent else "memory",
                    table_name, retention or "unbounded")
        return table

    def drop_stream(self, name: str) -> None:
        table_name = safe_table_name(name)
        with self._lock:
            backend = self._homes.pop(table_name, None)
        if backend is None:
            raise StorageError(f"no stream {name!r}")
        backend.drop(table_name)
        logger.info("dropped stream %s", table_name)

    def release_stream(self, name: str) -> None:
        """Detach a stream, preserving persistent data on disk.

        Transient (memory) streams are simply dropped — there is nothing
        durable to preserve.
        """
        table_name = safe_table_name(name)
        with self._lock:
            backend = self._homes.pop(table_name, None)
        if backend is None:
            raise StorageError(f"no stream {name!r}")
        if backend is self.persistent:
            backend.release(table_name)
        else:
            backend.drop(table_name)

    def get(self, name: str) -> StreamTable:
        table_name = safe_table_name(name)
        with self._lock:
            backend = self._homes.get(table_name)
        if backend is None:
            raise StorageError(f"no stream {name!r}")
        return backend.get(table_name)

    def __contains__(self, name: object) -> bool:
        if not isinstance(name, str):
            return False
        with self._lock:
            return safe_table_name(name) in self._homes

    def stream_names(self):
        with self._lock:
            return sorted(self._homes)

    def catalog(self, now: Optional[int] = None) -> Catalog:
        """A catalog of every stream's current contents.

        Materialized on demand: cheap for the handful of streams a
        registered query touches, and always consistent with retention.
        """
        with self._lock:
            homes = dict(self._homes)
        catalog = Catalog()
        for table_name, backend in homes.items():
            catalog.register(table_name,
                             backend.get(table_name).relation(now))
        return catalog

    def relation(self, name: str, now: Optional[int] = None) -> Relation:
        return self.get(name).relation(now)

    def close(self) -> None:
        with self._lock:
            self._homes.clear()
        self.memory.close()
        self.persistent.close()
