"""Storage backend interface.

A backend manages *stream tables*: append-only sequences of stream elements
with a retention bound (time- or count-based, mirroring GSN's
``<storage size="...">`` directive). Tables materialize to
:class:`~repro.sqlengine.relation.Relation` so the SQL engine can query
them uniformly regardless of backend.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.exceptions import StorageError
from repro.gsntime.duration import parse_window_spec
from repro.sqlengine.relation import Relation
from repro.streams.element import StreamElement
from repro.streams.schema import StreamSchema


@dataclass(frozen=True)
class RetentionPolicy:
    """How long a stream table keeps elements.

    ``kind`` is ``"count"`` (keep the last N), ``"time"`` (keep the last
    span milliseconds, judged against element timestamps) or ``"all"``.
    """

    kind: str
    amount: int = 0

    @classmethod
    def parse(cls, spec: Optional[str]) -> "RetentionPolicy":
        if spec is None or spec.strip().lower() in ("", "all", "unbounded"):
            return cls("all")
        kind, amount = parse_window_spec(spec)
        return cls(kind, amount)

    def __post_init__(self) -> None:
        if self.kind not in ("count", "time", "all"):
            raise StorageError(f"unknown retention kind {self.kind!r}")
        if self.kind != "all" and self.amount <= 0:
            raise StorageError("retention amount must be positive")


class StreamTable(abc.ABC):
    """One named stream table within a backend."""

    def __init__(self, name: str, schema: StreamSchema,
                 retention: RetentionPolicy) -> None:
        self.name = name
        self.schema = schema
        self.retention = retention
        self.appended = 0

    @abc.abstractmethod
    def append(self, element: StreamElement) -> None:
        """Store one element (must be timestamped)."""

    @abc.abstractmethod
    def relation(self, now: Optional[int] = None) -> Relation:
        """Current (retained) contents as a relation, oldest row first.

        Columns are the schema fields plus the implicit ``timed`` column.
        For time-based retention ``now`` supplies the reference time; when
        omitted the latest stored timestamp is used.
        """

    @abc.abstractmethod
    def count(self, now: Optional[int] = None) -> int:
        """Number of retained elements."""

    @abc.abstractmethod
    def latest(self) -> Optional[StreamElement]:
        """The most recently appended element, if any."""

    @property
    def columns(self) -> Tuple[str, ...]:
        return tuple(self.schema.field_names) + ("timed",)


class StorageBackend(abc.ABC):
    """Manages a namespace of stream tables."""

    def __init__(self) -> None:
        self._tables: Dict[str, StreamTable] = {}

    @abc.abstractmethod
    def _make_table(self, name: str, schema: StreamSchema,
                    retention: RetentionPolicy) -> StreamTable:
        """Create the backend-specific table object."""

    def create(self, name: str, schema: StreamSchema,
               retention: Optional[RetentionPolicy] = None) -> StreamTable:
        key = name.lower()
        if key in self._tables:
            raise StorageError(f"stream table {name!r} already exists")
        table = self._make_table(key, schema,
                                 retention or RetentionPolicy("all"))
        self._tables[key] = table
        return table

    def drop(self, name: str) -> None:
        key = name.lower()
        if key not in self._tables:
            raise StorageError(f"no stream table {name!r}")
        table = self._tables.pop(key)
        self._dispose(table)

    def release(self, name: str) -> None:
        """Forget a table without destroying its backing data.

        For persistent backends this is the shutdown path: the SQLite
        table stays on disk and a later ``create`` with the same name
        reattaches to it.
        """
        key = name.lower()
        if key not in self._tables:
            raise StorageError(f"no stream table {name!r}")
        del self._tables[key]

    def _dispose(self, table: StreamTable) -> None:
        """Backend-specific cleanup when a table is dropped."""

    def get(self, name: str) -> StreamTable:
        try:
            return self._tables[name.lower()]
        except KeyError:
            raise StorageError(f"no stream table {name!r}") from None

    def __contains__(self, name: object) -> bool:
        return isinstance(name, str) and name.lower() in self._tables

    def table_names(self) -> List[str]:
        return sorted(self._tables)

    def close(self) -> None:
        """Release backend resources (default: drop all tables)."""
        for name in list(self._tables):
            self.drop(name)
