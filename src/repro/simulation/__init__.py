"""Simulation support: canned deployments and workload generators.

The paper's testbed — 22 motes and 15 cameras arranged in 4 sensor
networks across 3 GSN nodes (Figures 3-5) — is reconstructed here on the
simulated device wrappers and a shared virtual clock.
"""

from repro.simulation.networks import DemoDeployment, build_demo_deployment
from repro.simulation.workload import (
    QueryWorkloadGenerator,
    TimeTriggeredLoad,
    random_history_spec,
)

__all__ = [
    "DemoDeployment",
    "build_demo_deployment",
    "TimeTriggeredLoad",
    "QueryWorkloadGenerator",
    "random_history_spec",
]
