"""The paper's physical deployment, reconstructed.

Figure 5 of the paper: four sensor networks on three GSN nodes —

- node 1 hosts an RFID reader network *and* a MICA2 mote network,
- node 2 hosts a wireless camera network,
- node 3 hosts a second MICA2 mote network,

all joined in one peer network, with a shared virtual clock so the whole
deployment advances deterministically.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.container import GSNContainer
from repro.datatypes import DataType
from repro.descriptors.model import (
    AddressSpec, InputStreamSpec, StorageConfig, StreamSourceSpec,
    VirtualSensorDescriptor,
)
from repro.gsntime.clock import VirtualClock
from repro.gsntime.scheduler import EventScheduler
from repro.network.peer import PeerNetwork
from repro.streams.schema import Field, StreamSchema


def mote_descriptor(name: str, node_id: int, interval_ms: int = 1000,
                    window: str = "30s", location: str = "bc143",
                    temperature_base: float = 22.0) -> VirtualSensorDescriptor:
    """A virtual sensor exposing one simulated MICA2 mote."""
    return VirtualSensorDescriptor(
        name=name,
        output_structure=StreamSchema([
            Field("node_id", DataType.INTEGER),
            Field("light", DataType.INTEGER),
            Field("temperature", DataType.INTEGER),
            Field("accel_x", DataType.DOUBLE),
            Field("accel_y", DataType.DOUBLE),
        ]),
        input_streams=(InputStreamSpec(
            name="input",
            sources=(StreamSourceSpec(
                alias="src",
                address=AddressSpec("mica2", {
                    "interval": str(interval_ms),
                    "node-id": str(node_id),
                    "seed": str(node_id),
                    "temperature-base": str(temperature_base),
                }),
                query="select * from wrapper",
                # Window of 1: each trigger exposes exactly the newest
                # reading (a 30s window would re-emit old readings on
                # every trigger). Consumers put windows on *their* side.
                storage_size="1",
            ),),
            query="select * from src",
        ),),
        storage=StorageConfig(permanent=False, history_size=window),
        addressing={"type": "mote", "location": location,
                    "sensor": "light,temperature,acceleration"},
        description=f"MICA2 mote #{node_id}",
    )


def camera_descriptor(name: str, camera_id: int, interval_ms: int = 1000,
                      image_size: int = 32_768,
                      location: str = "hall") -> VirtualSensorDescriptor:
    """A virtual sensor exposing one simulated AXIS-style camera."""
    return VirtualSensorDescriptor(
        name=name,
        output_structure=StreamSchema([
            Field("camera_id", DataType.INTEGER),
            Field("image", DataType.BINARY),
            Field("width", DataType.INTEGER),
            Field("height", DataType.INTEGER),
        ]),
        input_streams=(InputStreamSpec(
            name="input",
            sources=(StreamSourceSpec(
                alias="src",
                address=AddressSpec("camera", {
                    "interval": str(interval_ms),
                    "camera-id": str(camera_id),
                    "image-size": str(image_size),
                    "seed": str(camera_id),
                }),
                query="select * from wrapper",
                storage_size="1",
            ),),
            query="select * from src",
        ),),
        addressing={"type": "camera", "location": location},
        description=f"wireless camera #{camera_id}",
    )


def rfid_descriptor(name: str, reader_id: int, tags: List[str],
                    interval_ms: int = 500, detection_rate: float = 0.0,
                    location: str = "entrance") -> VirtualSensorDescriptor:
    """A virtual sensor exposing one simulated RFID reader."""
    return VirtualSensorDescriptor(
        name=name,
        output_structure=StreamSchema([
            Field("reader_id", DataType.INTEGER),
            Field("tag_id", DataType.VARCHAR),
            Field("signal_strength", DataType.DOUBLE),
        ]),
        input_streams=(InputStreamSpec(
            name="input",
            sources=(StreamSourceSpec(
                alias="src",
                address=AddressSpec("rfid", {
                    "interval": str(interval_ms),
                    "reader-id": str(reader_id),
                    "tags": ",".join(tags),
                    "detection-rate": str(detection_rate),
                    "seed": str(reader_id),
                }),
                query="select * from wrapper",
                storage_size="1",
            ),),
            query="select * from src",
        ),),
        storage=StorageConfig(permanent=True, history_size="1h"),
        addressing={"type": "rfid", "location": location},
        description=f"RFID reader #{reader_id}",
    )


@dataclass
class DemoDeployment:
    """The running Figure 5 testbed."""

    clock: VirtualClock
    scheduler: EventScheduler
    network: PeerNetwork
    node1: GSNContainer          # RFID network + mote network 1
    node2: GSNContainer          # camera network
    node3: GSNContainer          # mote network 2
    mote_sensors: List[str] = field(default_factory=list)
    camera_sensors: List[str] = field(default_factory=list)
    rfid_sensors: List[str] = field(default_factory=list)

    @property
    def containers(self) -> List[GSNContainer]:
        return [self.node1, self.node2, self.node3]

    def run_for(self, duration_ms: int) -> int:
        return self.scheduler.run_for(duration_ms)

    def shutdown(self) -> None:
        for container in self.containers:
            container.shutdown()

    def __enter__(self) -> "DemoDeployment":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.shutdown()


def build_demo_deployment(motes: int = 22, cameras: int = 15,
                          rfid_readers: int = 2,
                          mote_interval_ms: int = 1000,
                          camera_interval_ms: int = 1000,
                          image_size: int = 32_768,
                          tags: Dict[str, str] = None) -> DemoDeployment:
    """Stand up the paper's demo testbed (22 motes + 15 cameras + RFID in
    4 sensor networks over 3 GSN nodes by default)."""
    clock = VirtualClock()
    scheduler = EventScheduler(clock)
    network = PeerNetwork(scheduler=scheduler)
    tag_ids = list(tags or {"tag-alice": "Alice", "tag-bob": "Bob"})

    node1 = GSNContainer("gsn-node-1", network=network,
                         clock=clock, scheduler=scheduler)
    node2 = GSNContainer("gsn-node-2", network=network,
                         clock=clock, scheduler=scheduler)
    node3 = GSNContainer("gsn-node-3", network=network,
                         clock=clock, scheduler=scheduler)

    deployment = DemoDeployment(clock, scheduler, network,
                                node1, node2, node3)

    # Sensor network 1: RFID readers on node 1.
    for index in range(rfid_readers):
        name = f"rfid-{index + 1}"
        node1.deploy(rfid_descriptor(name, index + 1, tag_ids))
        deployment.rfid_sensors.append(name)

    # Sensor networks 2 and 4: motes split between nodes 1 and 3.
    first_half = motes // 2
    for index in range(motes):
        name = f"mote-{index + 1}"
        host = node1 if index < first_half else node3
        location = "bc143" if index < first_half else "bc180"
        host.deploy(mote_descriptor(name, index + 1,
                                    interval_ms=mote_interval_ms,
                                    location=location))
        deployment.mote_sensors.append(name)

    # Sensor network 3: cameras on node 2.
    for index in range(cameras):
        name = f"camera-{index + 1}"
        node2.deploy(camera_descriptor(name, index + 1,
                                       interval_ms=camera_interval_ms,
                                       image_size=image_size))
        deployment.camera_sensors.append(name)

    return deployment
