"""Workload generators for the evaluation experiments.

- :class:`TimeTriggeredLoad` builds the Figure 3 scenario: a fleet of
  devices producing fixed-size data items at a fixed interval on one GSN
  node.
- :class:`QueryWorkloadGenerator` builds the Figure 4 scenario: random
  client queries with ~3 filtering predicates, random history sizes from
  1 second to 30 minutes, random decimation ("sampling rates"), and
  burst injection.
"""

from __future__ import annotations

import random
from typing import List, Optional

from repro.container import GSNContainer
from repro.datatypes import DataType
from repro.descriptors.model import (
    AddressSpec, InputStreamSpec, StorageConfig, StreamSourceSpec,
    VirtualSensorDescriptor,
)
from repro.streams.schema import Field, StreamSchema


def payload_descriptor(name: str, device_id: int, interval_ms: int,
                       payload_bytes: int, window: str = "10s",
                       phase_ms: int = 0) -> VirtualSensorDescriptor:
    """A virtual sensor wrapping one device that emits ``payload_bytes``-
    sized items every ``interval_ms`` — the Figure 3 unit of load.

    The structure mirrors the paper's Figure 1 descriptor: a time window
    over the raw stream, a per-source SQL query, and permanent storage of
    the output. Both of the real cost drivers live here: the window scan
    grows with the arrival rate (span/interval elements per trigger) and
    the persistent write grows with the element size.
    """
    return VirtualSensorDescriptor(
        name=name,
        output_structure=StreamSchema([
            Field("camera_id", DataType.INTEGER),
            Field("image", DataType.BINARY),
            Field("width", DataType.INTEGER),
            Field("height", DataType.INTEGER),
        ]),
        input_streams=(InputStreamSpec(
            name="input",
            sources=(StreamSourceSpec(
                alias="src",
                address=AddressSpec("camera", {
                    "interval": str(interval_ms),
                    "phase": str(phase_ms),
                    "camera-id": str(device_id),
                    "image-size": str(max(payload_bytes, 4)),
                    "seed": str(device_id),
                }),
                query=("select * from wrapper "
                       "order by timed desc limit 1"),
                storage_size=window,
            ),),
            query="select * from src",
        ),),
        # Permanent storage matches the paper's node, which persisted
        # streams to MySQL — and is what makes processing cost scale with
        # the element size (blobs are actually written, not referenced).
        storage=StorageConfig(permanent=True, history_size="5"),
        addressing={"type": "payload", "size": str(payload_bytes)},
    )


class NodeQueueModel:
    """Measured-service queueing model of one GSN node.

    The synchronous simulator executes pipelines instantly in virtual
    time, so contention — the effect Figure 3 actually plots — must be
    modeled explicitly. Each pipeline run reports its *measured* wall
    service time; the model replays those services through a
    ``workers``-server queue in virtual time. The reported per-element
    processing time is queue wait + service, exactly what the paper's
    "internal processing time" measures on a loaded node.
    """

    def __init__(self, workers: int = 1) -> None:
        if workers < 1:
            raise ValueError("a node has at least one worker")
        self._busy_until = [0.0] * workers
        self.total_ms = 0.0
        self.count = 0
        self.max_ms = 0.0

    def observe(self, arrival_virtual_ms: int, service_wall_ms: float) -> None:
        arrival = float(arrival_virtual_ms)
        worker = min(range(len(self._busy_until)),
                     key=self._busy_until.__getitem__)
        start = max(arrival, self._busy_until[worker])
        completion = start + service_wall_ms
        self._busy_until[worker] = completion
        latency = completion - arrival
        self.total_ms += latency
        self.count += 1
        if latency > self.max_ms:
            self.max_ms = latency

    @property
    def mean_ms(self) -> float:
        return self.total_ms / self.count if self.count else 0.0


class TimeTriggeredLoad:
    """Deploys ``device_count`` fixed-size producers on one container and
    measures the node's mean per-element processing time (wait + service,
    via :class:`NodeQueueModel`)."""

    def __init__(self, container: GSNContainer, device_count: int,
                 interval_ms: int, payload_bytes: int,
                 workers: int = 1) -> None:
        self.container = container
        self.device_count = device_count
        self.interval_ms = interval_ms
        self.payload_bytes = payload_bytes
        self.queue_model = NodeQueueModel(workers)
        self.sensor_names: List[str] = []

    def deploy(self) -> None:
        for index in range(self.device_count):
            name = f"load-{self.payload_bytes}b-{index}"
            # Stagger device phases evenly across the interval, as a real
            # fleet of independently booted devices would be.
            phase = (index * self.interval_ms) // self.device_count
            sensor = self.container.deploy(payload_descriptor(
                name, index + 1, self.interval_ms, self.payload_bytes,
                phase_ms=phase,
            ))
            sensor.processing_hooks.append(self.queue_model.observe)
            self.sensor_names.append(name)

    def run(self, duration_ms: int) -> None:
        self.container.run_for(duration_ms)

    def mean_processing_ms(self) -> float:
        """Mean internal processing time per data item across the node."""
        return self.queue_model.mean_ms

    def mean_service_ms(self) -> float:
        """Mean pure service time (no queueing), for comparison."""
        total = 0.0
        count = 0
        for name in self.sensor_names:
            recorder = self.container.sensor(name).latency
            total += recorder.total_ms
            count += recorder.count
        return total / count if count else 0.0

    def elements_processed(self) -> int:
        return self.queue_model.count

    def undeploy(self) -> None:
        for name in self.sensor_names:
            self.container.undeploy(name)
        self.sensor_names.clear()


#: Fields the random WHERE predicates draw from; ``timed`` also carries
#: the history-size restriction.
_PREDICATE_FIELDS = ("camera_id", "width", "height")
_OPERATORS = (">", ">=", "<", "<=", "=", "<>")


def random_history_spec(rng: random.Random) -> int:
    """A history size between 1 second and 30 minutes, in milliseconds
    (the paper: "random history sizes from 1 second up to 30 minutes")."""
    return rng.randint(1, 1800) * 1000


class QueryWorkloadGenerator:
    """Random client queries in the style of the Figure 4 experiment.

    Each query reads one stream table with on average ``mean_predicates``
    filtering predicates in the WHERE clause, a history-size bound on
    ``timed``, and (mirroring the random sampling rates) an optional
    modulo decimation predicate.
    """

    def __init__(self, table: str, now_fn, seed: Optional[int] = 0,
                 mean_predicates: float = 3.0) -> None:
        self.table = table
        self.now_fn = now_fn
        self.rng = random.Random(seed)
        self.mean_predicates = mean_predicates

    def next_query(self) -> str:
        predicates = [self._history_predicate()]
        # Poisson-ish count around the mean (the paper says "3 filtering
        # predicates ... on average").
        count = max(1, int(round(self.rng.gauss(self.mean_predicates, 1.0))))
        for __ in range(count):
            predicates.append(self._random_predicate())
        if self.rng.random() < 0.5:
            predicates.append(self._sampling_predicate())
        columns = self.rng.choice((
            "count(*) as n",
            "camera_id, width, height",
            "max(width) as w, min(height) as h",
            "avg(camera_id) as a",
        ))
        return (f"select {columns} from {self.table} "
                f"where {' and '.join(predicates)}")

    def _history_predicate(self) -> str:
        history_ms = random_history_spec(self.rng)
        cutoff = max(self.now_fn() - history_ms, 0)
        return f"timed >= {cutoff}"

    def _random_predicate(self) -> str:
        field = self.rng.choice(_PREDICATE_FIELDS)
        op = self.rng.choice(_OPERATORS)
        value = self.rng.randint(0, 1000)
        return f"{field} {op} {value}"

    def _sampling_predicate(self) -> str:
        # Sampling rates uniform in [0.1, 1.0] seconds -> keep elements
        # whose timestamp aligns to the sampling grid.
        grid_ms = self.rng.randint(100, 1000)
        return f"(timed % {grid_ms}) < 1000"

    def batch(self, n: int) -> List[str]:
        return [self.next_query() for __ in range(n)]
