"""Programmatic client.

A thin, typed convenience layer over a container for applications that
embed GSN: fluent descriptor building, blocking-style "wait for next
element", and result unwrapping. Everything it does can also be done
through the container API directly.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional

from repro.container import GSNContainer
from repro.descriptors.model import (
    AddressSpec, InputStreamSpec, LifeCycleConfig, StorageConfig,
    StreamSourceSpec, VirtualSensorDescriptor,
)
from repro.datatypes import DataType
from repro.exceptions import GSNError
from repro.streams.element import StreamElement
from repro.streams.schema import Field, StreamSchema


class DescriptorBuilder:
    """Fluent construction of deployment descriptors.

    Example::

        descriptor = (client.descriptor("avg-temp")
                      .output(temperature=DataType.INTEGER)
                      .lifecycle(pool_size=4)
                      .storage(permanent=True, history="10s")
                      .predicate("type", "temperature")
                      .stream("input", "select * from src",
                              rate=100)
                      .source("src", "mote", {"interval": "500"},
                              query="select avg(temperature) as temperature"
                                    " from wrapper",
                              window="30s")
                      .build())
    """

    def __init__(self, name: str) -> None:
        self._name = name
        self._fields: List[Field] = []
        self._lifecycle = LifeCycleConfig()
        self._storage = StorageConfig()
        self._addressing: Dict[str, str] = {}
        self._description = ""
        self._streams: List[Dict[str, Any]] = []

    def output(self, **fields: DataType) -> "DescriptorBuilder":
        for name, dtype in fields.items():
            self._fields.append(Field(name, dtype))
        return self

    def lifecycle(self, pool_size: int = 1) -> "DescriptorBuilder":
        self._lifecycle = LifeCycleConfig(pool_size=pool_size)
        return self

    def storage(self, permanent: bool = False,
                history: Optional[str] = None) -> "DescriptorBuilder":
        self._storage = StorageConfig(permanent=permanent,
                                      history_size=history)
        return self

    def predicate(self, key: str, value: str) -> "DescriptorBuilder":
        self._addressing[key] = value
        return self

    def describe(self, text: str) -> "DescriptorBuilder":
        self._description = text
        return self

    def stream(self, name: str, query: str,
               rate: float = 0.0) -> "DescriptorBuilder":
        self._streams.append(
            {"name": name, "query": query, "rate": rate, "sources": []}
        )
        return self

    def source(self, alias: str, wrapper: str,
               predicates: Optional[Dict[str, str]] = None,
               query: str = "select * from wrapper",
               window: Optional[str] = None,
               sampling: float = 1.0,
               disconnect_buffer: int = 0) -> "DescriptorBuilder":
        if not self._streams:
            raise GSNError("declare a stream before adding sources")
        self._streams[-1]["sources"].append(StreamSourceSpec(
            alias=alias,
            address=AddressSpec(wrapper, predicates or {}),
            query=query,
            storage_size=window,
            sampling_rate=sampling,
            disconnect_buffer=disconnect_buffer,
        ))
        return self

    def build(self) -> VirtualSensorDescriptor:
        streams = tuple(
            InputStreamSpec(name=s["name"], sources=tuple(s["sources"]),
                            query=s["query"], rate=s["rate"])
            for s in self._streams
        )
        return VirtualSensorDescriptor(
            name=self._name,
            output_structure=StreamSchema(self._fields),
            input_streams=streams,
            lifecycle=self._lifecycle,
            storage=self._storage,
            addressing=self._addressing,
            description=self._description,
        )


class GSNClient:
    """Application-side convenience wrapper around one container."""

    def __init__(self, container: GSNContainer,
                 client_name: str = "client", api_key: str = "") -> None:
        self.container = container
        self.client_name = client_name
        self.api_key = api_key

    def descriptor(self, name: str) -> DescriptorBuilder:
        return DescriptorBuilder(name)

    def deploy(self, descriptor: Any) -> str:
        if isinstance(descriptor, DescriptorBuilder):
            descriptor = descriptor.build()
        sensor = self.container.deploy(descriptor, client=self.client_name,
                                       api_key=self.api_key)
        return sensor.name

    def undeploy(self, name: str) -> None:
        self.container.undeploy(name, client=self.client_name,
                                api_key=self.api_key)

    def query(self, sql: str) -> List[Dict[str, Any]]:
        relation = self.container.query(sql, client=self.client_name,
                                        api_key=self.api_key)
        return relation.to_dicts()

    def query_sensor(self, sensor_name: str,
                     where: str = "") -> List[Dict[str, Any]]:
        """Read a sensor's retained output stream."""
        table = self.container.output_table(sensor_name)
        sql = f"select * from {table}"
        if where:
            sql += f" where {where}"
        return self.query(sql)

    def on_output(self, sensor_name: str,
                  callback: Callable[[StreamElement], None]) -> None:
        """Invoke ``callback`` for every new element of a sensor."""
        self.container.sensor(sensor_name).add_listener(callback)

    def next_output(self, sensor_name: str,
                    timeout_ms: int = 60_000) -> Optional[StreamElement]:
        """Run the simulation until the sensor produces its next element
        (or the timeout elapses). Simulated containers only."""
        captured: List[StreamElement] = []
        sensor = self.container.sensor(sensor_name)
        listener = captured.append
        sensor.add_listener(listener)
        try:
            deadline = self.container.now() + timeout_ms
            while not captured and self.container.now() < deadline:
                if self.container.scheduler is None:
                    raise GSNError("next_output() needs a simulated container")
                if not self.container.scheduler.step():
                    break
            return captured[0] if captured else None
        finally:
            sensor.remove_listener(listener)

    def watch(self, sql: str, channel: str = "queue", name: str = "") -> int:
        """Register a standing query; returns the subscription id."""
        subscription = self.container.register_query(
            sql, channel=channel, client=self.client_name, name=name,
            api_key=self.api_key,
        )
        return subscription.id

    def notifications(self) -> List[Dict[str, Any]]:
        """Drain the default queue channel."""
        channel = self.container.notifications.channel("queue")
        return channel.drain()  # type: ignore[attr-defined]
