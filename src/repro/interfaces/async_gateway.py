"""Asyncio batched-ingestion gateway.

The thread-per-request :class:`~repro.interfaces.http_server.GSNHttpServer`
serves the *query* side; this module is the *ingest* side built for
fan-in: a single event loop accepts tuples over HTTP from many
producers, batches them per source with a max-latency bound, and hands
each batch across a bounded queue to a drain thread that delivers it to
the threaded :class:`~repro.vsensor.virtual_sensor.VirtualSensor`
runtime via :meth:`ingest_batch` — one window-update + query evaluation
amortized over the whole batch.

Routes
------
==============================================  =======================
``POST /ingest/<sensor>/<stream>/<source>``     body = JSON object or
                                                list of objects; each
                                                becomes one tuple (a
                                                ``timed`` key, when
                                                present, is the element
                                                timestamp). Replies 202
                                                with ``{"accepted": n}``
                                                once enqueued.
``GET  /status``                                loop-side counters
==============================================  =======================

Threading & ownership discipline (this file is the proving ground for
``gsn-lint --async``, GSN901–GSN905):

- the **loop thread** (``gsn-ingest-loop``) runs the asyncio server.
  Batch state and hot-path counters are ``# owned-by: loop`` — written
  only from loop context, read (benignly, under the GIL) by status and
  metrics. Nothing on the loop blocks: hand-off uses ``put_nowait`` and
  sheds on overflow, lock-free;
- the **drain thread** (``gsn-ingest-drain``) pulls batches with a
  bounded ``get(timeout=...)``, resolves the sensor at delivery time,
  and owns everything slow: sensor delivery, flight-recorder shed/error
  events, crash reporting;
- cross-thread control state (threads, stopping, health) is guarded by
  ``_state_lock`` in the ordinary ``# guarded-by:`` discipline.

Shed policy: when the hand-off queue is full the freshly flushed batch
is dropped *at the loop* (back-pressure never reaches producers as
latency) and counted; the drain thread surfaces accumulated sheds as
``ingest_shed`` flight events off the hot path. All counters are
exported as ``gsn_ingest_*`` metric families.

When the loop-lag witness (:mod:`repro.analysis.loopwitness`) is
enabled, the gateway arms a heartbeat task on its loop so any
accidental blocking shows up as a recorded stall.
"""

from __future__ import annotations

import asyncio
import json
import logging
import queue
import threading
from typing import Any, Dict, Iterable, List, Optional, Tuple

from repro.analysis import loopwitness
from repro.concurrency import new_lock
from repro.container import GSNContainer
from repro.exceptions import GSNError
from repro.metrics.registry import (
    FamilySnapshot, counter_family, gauge_family,
)

logger = logging.getLogger("repro.interfaces.async_gateway")

#: (sensor name, stream name, source alias) — one batcher per key.
BatchKey = Tuple[str, str, str]

_REASONS = {200: "OK", 202: "Accepted", 400: "Bad Request",
            404: "Not Found", 503: "Service Unavailable"}


class AsyncIngestGateway:
    """Batched HTTP ingestion front end for one container.

    ``max_batch`` caps tuples per batch (a full batch flushes
    immediately); ``max_latency_ms`` bounds how long a partial batch may
    wait; ``handoff_capacity`` bounds the loop→drain queue in *batches*
    (beyond it, new batches are shed).
    """

    def __init__(self, container: GSNContainer, host: str = "127.0.0.1",
                 port: int = 0, max_batch: int = 128,
                 max_latency_ms: float = 5.0,
                 handoff_capacity: int = 256) -> None:
        self.container = container
        self.max_batch = max(1, int(max_batch))
        self.max_latency_ms = float(max_latency_ms)
        self._host = host
        self._port = port
        self._handoff: "queue.Queue[Tuple[BatchKey, List[Dict[str, Any]]]]" \
            = queue.Queue(maxsize=max(1, int(handoff_capacity)))
        self._ready = threading.Event()

        # Hot-path state, written only from the event loop.
        self._loop: Optional[asyncio.AbstractEventLoop] = None  # owned-by: loop
        self._shutdown: Optional[asyncio.Event] = None  # owned-by: loop
        self._bound: Optional[Tuple[str, int]] = None  # owned-by: loop
        self._batchers: Dict[BatchKey, List[Dict[str, Any]]] = {}  # owned-by: loop
        self.tuples_accepted = 0  # owned-by: loop
        self.batches_flushed = 0  # owned-by: loop
        self.shed_tuples = 0  # owned-by: loop
        self.shed_batches = 0  # owned-by: loop
        self.request_errors = 0  # owned-by: loop

        # Cross-thread control + drain-side state.
        self._state_lock = new_lock("AsyncIngestGateway._state_lock")
        self._loop_thread: Optional[threading.Thread] = None  # guarded-by: AsyncIngestGateway._state_lock
        self._drain_thread: Optional[threading.Thread] = None  # guarded-by: AsyncIngestGateway._state_lock
        self._stopping = False  # guarded-by: AsyncIngestGateway._state_lock
        self.healthy = True  # guarded-by: AsyncIngestGateway._state_lock
        self.crashes = 0  # guarded-by: AsyncIngestGateway._state_lock
        self.batches_delivered = 0  # guarded-by: AsyncIngestGateway._state_lock
        self.tuples_delivered = 0  # guarded-by: AsyncIngestGateway._state_lock
        self.tuples_shed_unknown = 0  # guarded-by: AsyncIngestGateway._state_lock
        self.drain_errors = 0  # guarded-by: AsyncIngestGateway._state_lock

    # -- lifecycle ---------------------------------------------------------

    @property
    def address(self) -> Tuple[str, int]:
        bound = self._bound
        if bound is None:
            return (self._host, self._port)
        return bound

    @property
    def url(self) -> str:
        host, port = self.address
        return f"http://{host}:{port}"

    def start(self, timeout: float = 5.0) -> "AsyncIngestGateway":
        with self._state_lock:
            if self._loop_thread is not None:
                return self
            self._stopping = False
            self._loop_thread = threading.Thread(
                target=self._loop_main, name="gsn-ingest-loop", daemon=True,
            )
            self._drain_thread = threading.Thread(
                target=self._drain_main, name="gsn-ingest-drain",
                daemon=True,
            )
            self._loop_thread.start()
            self._drain_thread.start()
        if not self._ready.wait(timeout=timeout):
            raise GSNError("async ingest gateway failed to start "
                           f"within {timeout:.1f}s")
        self.container.health.register("ingest-gateway", self._health_check)
        self.container.metrics.register_collector(self._collect_metrics)
        self.container.flight.record("ingest_start", "ingest-gateway",
                                     url=self.url)
        return self

    def stop(self) -> None:
        with self._state_lock:
            loop_thread = self._loop_thread
            drain_thread = self._drain_thread
            self._loop_thread = None
            self._drain_thread = None
        if loop_thread is None:
            return
        self.container.health.unregister("ingest-gateway")
        loop = self._loop
        if loop is not None and loop.is_running():
            loop.call_soon_threadsafe(self._request_shutdown)
        loop_thread.join(timeout=5.0)
        with self._state_lock:
            self._stopping = True
        if drain_thread is not None:
            drain_thread.join(timeout=5.0)
        self._ready.clear()

    def __enter__(self) -> "AsyncIngestGateway":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.stop()

    # -- event-loop thread -------------------------------------------------

    def _loop_main(self) -> None:
        """Thread body: run the ingest loop, witnessing any crash."""
        loop = asyncio.new_event_loop()
        self._loop = loop
        try:
            loop.run_until_complete(self._main())
        except BaseException as exc:  # noqa: BLE001 - supervision boundary
            self._report_crash(exc)
        finally:
            loop.close()

    async def _main(self) -> None:
        loop = asyncio.get_running_loop()
        self._shutdown = asyncio.Event()
        server = await asyncio.start_server(
            self._handle_client, self._host, self._port,
        )
        sockets = server.sockets or ()
        for sock in sockets:
            self._bound = tuple(sock.getsockname()[:2])
            break
        witness = loopwitness.active()
        heartbeat = None
        if witness is not None:
            heartbeat = loop.create_task(
                witness.heartbeat("gsn-ingest-loop"))
        self._ready.set()
        try:
            await self._shutdown.wait()
            for key in sorted(self._batchers):
                self._flush(key)
        finally:
            if heartbeat is not None:
                heartbeat.cancel()
            server.close()
            await server.wait_closed()

    def _request_shutdown(self) -> None:
        """Runs on the loop (via ``call_soon_threadsafe`` from stop())."""
        shutdown = self._shutdown
        if shutdown is not None:
            shutdown.set()

    async def _handle_client(self, reader: asyncio.StreamReader,
                             writer: asyncio.StreamWriter) -> None:
        try:
            while True:
                request = await self._read_request(reader)
                if request is None:
                    break
                method, path, headers, body = request
                status, payload = self._route(method, path, body)
                keep_alive = headers.get("connection", "").lower() != "close"
                await self._respond(writer, status, payload, keep_alive)
                if not keep_alive:
                    break
        except (ConnectionError, asyncio.IncompleteReadError) as exc:
            logger.debug("ingest client dropped: %s", exc)
        finally:
            writer.close()

    async def _read_request(
        self, reader: asyncio.StreamReader,
    ) -> Optional[Tuple[str, str, Dict[str, str], bytes]]:
        line = await reader.readline()
        if not line:
            return None
        parts = line.decode("latin-1").split()
        if len(parts) < 2:
            return None
        method, path = parts[0].upper(), parts[1]
        headers: Dict[str, str] = {}
        while True:
            raw = await reader.readline()
            if raw in (b"", b"\r\n", b"\n"):
                break
            name, _, value = raw.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        try:
            length = int(headers.get("content-length", "0") or 0)
        except ValueError:
            logger.debug("ingest request with bad content-length header")
            return None
        body = await reader.readexactly(length) if length > 0 else b""
        return method, path, headers, body

    async def _respond(self, writer: asyncio.StreamWriter, status: int,
                       payload: Dict[str, Any], keep_alive: bool) -> None:
        body = json.dumps(payload).encode("utf-8")
        connection = "keep-alive" if keep_alive else "close"
        head = (f"HTTP/1.1 {status} {_REASONS.get(status, 'OK')}\r\n"
                f"Content-Type: application/json\r\n"
                f"Content-Length: {len(body)}\r\n"
                f"Connection: {connection}\r\n\r\n")
        writer.write(head.encode("latin-1") + body)
        await writer.drain()

    # -- loop-side routing and batching (never blocks, never locks) --------

    def _route(self, method: str, path: str,
               body: bytes) -> Tuple[int, Dict[str, Any]]:
        route = path.split("?", 1)[0]
        if method == "GET" and route.rstrip("/") == "/status":
            return 200, self._loop_status()
        if method == "POST" and route.startswith("/ingest/"):
            parts = [part for part in route.split("/") if part]
            if len(parts) != 4:
                return 404, {
                    "error": "NotFound",
                    "message": "expected /ingest/<sensor>/<stream>/<source>",
                }
            _, sensor, stream, alias = parts
            return self._ingest_request((sensor, stream, alias), body)
        return 404, {"error": "NotFound", "message": route}

    def _ingest_request(self, key: BatchKey,
                        body: bytes) -> Tuple[int, Dict[str, Any]]:
        try:
            payload = json.loads(body.decode("utf-8"))
        except (UnicodeDecodeError, ValueError):
            self.request_errors += 1
            return 400, {"error": "BadRequest", "message": "invalid JSON"}
        items = payload if isinstance(payload, list) else [payload]
        if not items or not all(isinstance(item, dict) for item in items):
            self.request_errors += 1
            return 400, {"error": "BadRequest",
                         "message": "body must be a JSON object or a "
                                    "non-empty list of objects"}
        accepted = self._enqueue(key, items)
        return 202, {"accepted": accepted}

    def _enqueue(self, key: BatchKey, items: List[Dict[str, Any]]) -> int:
        batch = self._batchers.setdefault(key, [])
        fresh = not batch
        batch.extend(items)
        self.tuples_accepted += len(items)
        if len(batch) >= self.max_batch:
            self._flush(key)
        elif fresh:
            loop = self._loop
            if loop is not None:
                loop.call_later(self.max_latency_ms / 1000.0,
                                self._flush, key)
        return len(items)

    def _flush(self, key: BatchKey) -> None:
        """Hand one batcher's content to the drain thread in
        ``max_batch``-sized batches, shedding on overflow."""
        items = self._batchers.pop(key, [])
        for start in range(0, len(items), self.max_batch):
            chunk = items[start:start + self.max_batch]
            try:
                self._handoff.put_nowait((key, chunk))
            except queue.Full:
                self.shed_tuples += len(chunk)
                self.shed_batches += 1
                continue
            self.batches_flushed += 1

    def _loop_status(self) -> Dict[str, Any]:
        """Loop-owned counters only — safe to build on the loop itself."""
        return {
            "status": 200,
            "tuples_accepted": self.tuples_accepted,
            "batches_flushed": self.batches_flushed,
            "shed_tuples": self.shed_tuples,
            "shed_batches": self.shed_batches,
            "request_errors": self.request_errors,
            "pending_batches": len(self._batchers),
            "handoff_depth": self._handoff.qsize(),
            "max_batch": self.max_batch,
            "max_latency_ms": self.max_latency_ms,
        }

    # -- drain thread ------------------------------------------------------

    def _drain_main(self) -> None:
        """Thread body: deliver batches, witnessing any crash."""
        try:
            self._drain_loop()
        except BaseException as exc:  # noqa: BLE001 - supervision boundary
            self._report_crash(exc)

    def _drain_loop(self) -> None:
        surfaced_sheds = 0
        while True:
            try:
                key, items = self._handoff.get(timeout=0.2)
            except queue.Empty:
                surfaced_sheds = self._surface_sheds(surfaced_sheds)
                with self._state_lock:
                    if self._stopping:
                        return
                continue
            self._deliver(key, items)
            surfaced_sheds = self._surface_sheds(surfaced_sheds)

    def _deliver(self, key: BatchKey, items: List[Dict[str, Any]]) -> None:
        sensor_name, stream_name, alias = key
        try:
            sensor = self.container.sensor(sensor_name)
        except GSNError:
            with self._state_lock:
                self.tuples_shed_unknown += len(items)
            self.container.flight.record(
                "ingest_unknown_sensor", "ingest-gateway",
                sensor=sensor_name, tuples=len(items))
            return
        try:
            admitted = sensor.ingest_batch(stream_name, alias, items)
        except Exception as exc:  # noqa: BLE001 - delivery fault barrier
            logger.error("ingest delivery to %s failed: %s: %s",
                         sensor_name, type(exc).__name__, exc)
            with self._state_lock:
                self.drain_errors += 1
            self.container.flight.record(
                "ingest_drain_error", "ingest-gateway",
                sensor=sensor_name,
                error=f"{type(exc).__name__}: {exc}")
            return
        with self._state_lock:
            self.batches_delivered += 1
            self.tuples_delivered += admitted

    def _surface_sheds(self, surfaced: int) -> int:
        """Turn loop-side shed counts into flight events, off the loop."""
        current = self.shed_tuples
        if current > surfaced:
            self.container.flight.record(
                "ingest_shed", "ingest-gateway",
                tuples=current - surfaced, total=current)
        return current

    def _report_crash(self, exc: BaseException) -> None:
        logger.error("ingest gateway thread crashed: %s: %s",
                     type(exc).__name__, exc)
        from repro.analysis import crashwitness
        witness = crashwitness.active()
        if witness is not None:
            witness.report(threading.current_thread().name, exc,
                           owner="ingest-gateway")
        self.container.flight.record(
            "server_crash", "ingest-gateway",
            error=f"{type(exc).__name__}: {exc}")
        with self._state_lock:
            self.crashes += 1
            self.healthy = False
        self._ready.set()  # unblock a start() waiting on a dead loop

    # -- observability -----------------------------------------------------

    def _health_check(self) -> Dict[str, Any]:
        with self._state_lock:
            healthy = self.healthy
            serving = self._loop_thread is not None
            crashes = self.crashes
        status = "ok" if healthy and serving else "failed"
        return {"status": status, "serving": serving, "crashes": crashes,
                "handoff_depth": self._handoff.qsize()}

    def _collect_metrics(self) -> Iterable[FamilySnapshot]:
        with self._state_lock:
            delivered_batches = self.batches_delivered
            delivered_tuples = self.tuples_delivered
            shed_unknown = self.tuples_shed_unknown
            drain_errors = self.drain_errors
        return [
            counter_family(
                "gsn_ingest_tuples_total",
                "Tuples seen by the async ingest gateway, by stage.",
                [({"stage": "accepted"}, self.tuples_accepted),
                 ({"stage": "delivered"}, delivered_tuples),
                 ({"stage": "shed_handoff"}, self.shed_tuples),
                 ({"stage": "shed_unknown_sensor"}, shed_unknown)],
            ),
            counter_family(
                "gsn_ingest_batches_total",
                "Batches flushed by the loop and delivered by the drain.",
                [({"stage": "flushed"}, self.batches_flushed),
                 ({"stage": "shed"}, self.shed_batches),
                 ({"stage": "delivered"}, delivered_batches)],
            ),
            counter_family(
                "gsn_ingest_errors_total",
                "Bad requests at the loop and delivery faults at the drain.",
                [({"kind": "request"}, self.request_errors),
                 ({"kind": "drain"}, drain_errors)],
            ),
            gauge_family(
                "gsn_ingest_handoff_depth",
                "Batches queued between the loop and the drain thread.",
                [({}, self._handoff.qsize())],
            ),
        ]

    def status(self) -> Dict[str, Any]:
        with self._state_lock:
            drain = {
                "batches_delivered": self.batches_delivered,
                "tuples_delivered": self.tuples_delivered,
                "tuples_shed_unknown": self.tuples_shed_unknown,
                "drain_errors": self.drain_errors,
                "crashes": self.crashes,
                "healthy": self.healthy,
                "serving": self._loop_thread is not None,
            }
        report = self._loop_status()
        report.pop("status", None)
        report.update(drain)
        report["url"] = self.url
        return report
