"""A real HTTP server over the web facade.

"The interface layer provides access functions ... via the Web (through
a browser or via web services)" — this module serves the
:class:`~repro.interfaces.web.WebInterface` endpoints over actual HTTP
(standard library only), plus the HTML dashboard at ``/``.

Routes
------
==========================  ====================================
``GET  /``                  HTML dashboard
``GET  /overview``          landing data (JSON, as are all below)
``GET  /monitor``           full status document
``GET  /sensors``           deployed sensor names
``GET  /sensors/<name>``    one sensor's status
``GET  /sensors/<name>/latest``  newest output element
``GET  /query?sql=...``     ad-hoc SQL
``GET  /explain?sql=...``   query plan (``&analyze=1`` adds cost estimates)
``GET  /network``           peer-network view
``GET  /metrics``           Prometheus text exposition (0.0.4)
``GET  /trace?id=...&limit=...``  recent pipeline traces (JSON)
``GET  /healthz``           health verdict (503 when not ok)
``GET  /dump``              force + return a black-box dump
``GET  /profile?seconds=...``  collapsed profiler stacks (text)
``POST /deploy``            body = descriptor XML
``POST /reconfigure``       body = descriptor XML
``POST /undeploy/<name>``   remove a sensor
``POST /subscriptions?sql=...&channel=...&name=...&history=...``
``DELETE /subscriptions/<id>``
==========================  ====================================

Credentials travel in the ``X-GSN-Client`` / ``X-GSN-Key`` headers when
the container has access control enabled.

Intended for interactive use against *wall-clock* containers; simulated
containers work too but only advance when something calls ``run_for``.
"""

from __future__ import annotations

import json
import logging
import threading

from repro.concurrency import new_lock
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, Optional, Tuple
from urllib.parse import parse_qs, urlparse

from repro.container import GSNContainer
from repro.interfaces.web import WebInterface, _json_default

logger = logging.getLogger("repro.interfaces.http_server")


class GSNHttpServer:
    """Serves one container over HTTP on a supervised background thread.

    The serving thread runs inside a restart envelope: if
    ``serve_forever`` dies with an unexpected exception the crash is
    reported to the runtime crash witness, the loop is restarted up to
    :data:`MAX_RESTARTS` times, and past that budget the server marks
    itself unhealthy (visible in :meth:`status`) instead of silently
    leaving a bound-but-dead port behind.
    """

    #: Serve-loop restarts granted before the server gives up.
    MAX_RESTARTS = 3

    def __init__(self, container: GSNContainer, host: str = "127.0.0.1",
                 port: int = 0) -> None:
        self.container = container
        self.web = WebInterface(container)
        handler = _build_handler(self)
        self._server = ThreadingHTTPServer((host, port), handler)
        self._state_lock = new_lock("GSNHttpServer._state_lock")
        self._thread: Optional[threading.Thread] = None  # guarded-by: GSNHttpServer._state_lock
        self._stopping = False  # guarded-by: GSNHttpServer._state_lock
        self.crashes = 0  # guarded-by: GSNHttpServer._state_lock
        self.restarts = 0  # guarded-by: GSNHttpServer._state_lock
        self.healthy = True  # guarded-by: GSNHttpServer._state_lock

    @property
    def address(self) -> Tuple[str, int]:
        return self._server.server_address[:2]

    @property
    def url(self) -> str:
        host, port = self.address
        return f"http://{host}:{port}"

    def start(self) -> "GSNHttpServer":
        with self._state_lock:
            if self._thread is not None:
                return self
            self._stopping = False
            self._thread = threading.Thread(
                target=self._serve, name="gsn-http", daemon=True,
            )
            self._thread.start()
        self.container.health.register("http-server", self._health_check)
        return self

    def _health_check(self) -> Dict[str, Any]:
        with self._state_lock:
            healthy = self.healthy
            serving = self._thread is not None
            crashes = self.crashes
        status = "ok" if healthy and serving else "failed"
        return {"status": status, "serving": serving, "crashes": crashes}

    def _serve(self) -> None:
        """Supervised serve loop: restart on crash, then declare unhealthy."""
        while True:
            try:
                self._server.serve_forever()
                return
            except BaseException as exc:  # noqa: BLE001 - supervision boundary
                if not self._report_crash(exc):
                    return

    def _report_crash(self, exc: BaseException) -> bool:
        """Witness a serve-loop crash; return True to restart the loop."""
        logger.error("http server serve loop crashed: %s: %s",
                     type(exc).__name__, exc)
        from repro.analysis import crashwitness
        witness = crashwitness.active()
        if witness is not None:
            witness.report(threading.current_thread().name, exc,
                           owner="http-server")
        self.container.flight.record(
            "server_crash", "http-server",
            error=f"{type(exc).__name__}: {exc}")
        with self._state_lock:
            self.crashes += 1
            if self._stopping:
                return False
            if self.restarts < self.MAX_RESTARTS:
                self.restarts += 1
                logger.warning("http server: restarting serve loop "
                               "(%d/%d restarts)", self.restarts,
                               self.MAX_RESTARTS)
                return True
            self.healthy = False
        logger.error("http server: restart budget exhausted (%d); "
                     "server is down", self.MAX_RESTARTS)
        self.container.flight.record("degraded", "http-server",
                                     reason="restart budget exhausted")
        return False

    def stop(self) -> None:
        with self._state_lock:
            thread = self._thread
            self._thread = None
            self._stopping = True
        if thread is None:
            return
        self.container.health.unregister("http-server")
        self._server.shutdown()
        self._server.server_close()
        thread.join(timeout=5.0)

    def status(self) -> Dict[str, Any]:
        with self._state_lock:
            return {
                "url": self.url,
                "healthy": self.healthy,
                "serving": self._thread is not None,
                "crashes": self.crashes,
                "restarts": self.restarts,
            }

    def __enter__(self) -> "GSNHttpServer":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.stop()


def _build_handler(owner: GSNHttpServer):
    class Handler(BaseHTTPRequestHandler):
        protocol_version = "HTTP/1.1"

        def log_message(self, *args: Any) -> None:  # quiet by default
            pass

        # -- plumbing -----------------------------------------------------

        def _credentials(self) -> Dict[str, str]:
            return {
                "client": self.headers.get("X-GSN-Client", ""),
                "api_key": self.headers.get("X-GSN-Key", ""),
            }

        def _query_params(self) -> Dict[str, str]:
            parsed = parse_qs(urlparse(self.path).query)
            return {key: values[0] for key, values in parsed.items()}

        def _body(self) -> str:
            length = int(self.headers.get("Content-Length", "0") or 0)
            return self.rfile.read(length).decode("utf-8") if length else ""

        def _send_json(self, response: Dict[str, Any]) -> None:
            payload = json.dumps(response, default=_json_default
                                 ).encode("utf-8")
            self.send_response(response.get("status", 200))
            self.send_header("Content-Type", "application/json")
            self.send_header("Content-Length", str(len(payload)))
            self.end_headers()
            self.wfile.write(payload)

        def _send_html(self, html: str) -> None:
            payload = html.encode("utf-8")
            self.send_response(200)
            self.send_header("Content-Type", "text/html; charset=utf-8")
            self.send_header("Content-Length", str(len(payload)))
            self.end_headers()
            self.wfile.write(payload)

        def _send_text(self, text: str, content_type: str) -> None:
            payload = text.encode("utf-8")
            self.send_response(200)
            self.send_header("Content-Type", content_type)
            self.send_header("Content-Length", str(len(payload)))
            self.end_headers()
            self.wfile.write(payload)

        def _not_found(self) -> None:
            self._send_json({"status": 404, "error": "NotFound",
                             "message": self.path})

        # -- methods ------------------------------------------------------

        def do_GET(self) -> None:  # noqa: N802 - http.server convention
            route = urlparse(self.path).path.rstrip("/") or "/"
            params = self._query_params()
            web = owner.web
            if route == "/":
                from repro.tools.dashboard import render_dashboard
                self._send_html(render_dashboard(owner.container))
            elif route == "/overview":
                self._send_json(web.overview())
            elif route == "/monitor":
                self._send_json(web.monitor())
            elif route == "/sensors":
                self._send_json({"status": 200,
                                 "sensors": owner.container.sensor_names()})
            elif route.startswith("/sensors/") and route.endswith("/latest"):
                name = route[len("/sensors/"):-len("/latest")]
                self._send_json(web.latest_reading(name))
            elif route.startswith("/sensors/"):
                self._send_json(web.sensor(route[len("/sensors/"):]))
            elif route == "/query":
                self._send_json(web.query(params.get("sql", ""),
                                          **self._credentials()))
            elif route == "/explain":
                analyze = params.get("analyze", "") in ("1", "true", "yes")
                self._send_json(web.explain(params.get("sql", ""),
                                            analyze=analyze))
            elif route == "/network":
                self._send_json(web.directory())
            elif route == "/metrics":
                self._send_text(web.metrics_text(),
                                "text/plain; version=0.0.4; charset=utf-8")
            elif route == "/trace":
                limit_text = params.get("limit", "")
                try:
                    limit = int(limit_text) if limit_text else None
                except ValueError:
                    self._send_json({"status": 400, "error": "BadRequest",
                                     "message": f"bad limit {limit_text!r}"})
                    return
                self._send_json(web.traces(trace_id=params.get("id"),
                                           limit=limit))
            elif route == "/healthz":
                self._send_json(web.healthz())
            elif route == "/dump":
                self._send_json(web.dump())
            elif route == "/profile":
                seconds_text = params.get("seconds", "")
                try:
                    seconds = float(seconds_text) if seconds_text else None
                except ValueError:
                    self._send_json({"status": 400, "error": "BadRequest",
                                     "message":
                                     f"bad seconds {seconds_text!r}"})
                    return
                self._send_text(web.profile_text(seconds=seconds),
                                "text/plain; charset=utf-8")
            else:
                self._not_found()

        def do_POST(self) -> None:  # noqa: N802
            route = urlparse(self.path).path.rstrip("/")
            params = self._query_params()
            web = owner.web
            if route == "/deploy":
                self._send_json(web.deploy(self._body(),
                                           **self._credentials()))
            elif route == "/reconfigure":
                self._send_json(web.reconfigure(self._body(),
                                                **self._credentials()))
            elif route.startswith("/undeploy/"):
                self._send_json(web.undeploy(route[len("/undeploy/"):],
                                             **self._credentials()))
            elif route == "/subscriptions":
                self._send_json(web.register_query(
                    params.get("sql", ""),
                    channel=params.get("channel", "queue"),
                    client=params.get("client", "anonymous"),
                    name=params.get("name", ""),
                    history=params.get("history") or None,
                ))
            else:
                self._not_found()

        def do_DELETE(self) -> None:  # noqa: N802
            route = urlparse(self.path).path.rstrip("/")
            if route.startswith("/subscriptions/"):
                raw = route[len("/subscriptions/"):]
                try:
                    subscription_id = int(raw)
                except ValueError:
                    self._send_json({"status": 400, "error": "BadRequest",
                                     "message": f"bad id {raw!r}"})
                    return
                self._send_json(owner.web.unregister_query(subscription_id))
            else:
                self._not_found()

    return Handler
