"""Access interfaces.

"The interface layer provides access functions for other GSN containers
and via the Web (through a browser or via web services)" (paper,
Section 4). With no network available, the web interface is a facade
whose methods correspond 1:1 to HTTP endpoints and return JSON-ready
dicts; :class:`~repro.interfaces.client.GSNClient` is the programmatic
client applications embed.
"""

from repro.interfaces.web import WebInterface
from repro.interfaces.client import GSNClient
from repro.interfaces.http_server import GSNHttpServer

__all__ = ["WebInterface", "GSNClient", "GSNHttpServer"]
