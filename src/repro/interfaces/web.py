"""The web interface facade.

Each method models one HTTP endpoint of the original GSN web console
(``GET /gsn``, ``GET /sensors/<name>``, ``POST /deploy`` ...) and returns
a JSON-serializable dict with an HTTP-ish ``status`` code, so a real HTTP
layer could be bolted on top without touching the middleware. The demo's
"monitor the effective status of all parts of the system" runs through
:meth:`overview` and :meth:`monitor`.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Optional

from repro.container import GSNContainer
from repro.exceptions import GSNError


def _ok(body: Dict[str, Any]) -> Dict[str, Any]:
    return {"status": 200, **body}


def _error(exc: Exception, status: int = 400) -> Dict[str, Any]:
    return {"status": status, "error": type(exc).__name__,
            "message": str(exc)}


class WebInterface:
    """HTTP-shaped access to one container."""

    def __init__(self, container: GSNContainer) -> None:
        self.container = container

    # -- GET endpoints ---------------------------------------------------------

    def overview(self) -> Dict[str, Any]:
        """``GET /`` — the landing page data."""
        return _ok({
            "container": self.container.name,
            "time": self.container.now(),
            "virtual_sensors": self.container.sensor_names(),
            "channels": self.container.notifications.channel_names(),
        })

    def monitor(self) -> Dict[str, Any]:
        """``GET /monitor`` — full status document."""
        return _ok({"monitor": self.container.status()})

    def sensor(self, name: str) -> Dict[str, Any]:
        """``GET /sensors/<name>``."""
        try:
            return _ok({"sensor": self.container.sensor(name).status()})
        except GSNError as exc:
            return _error(exc, status=404)

    def latest_reading(self, name: str) -> Dict[str, Any]:
        """``GET /sensors/<name>/latest``."""
        try:
            element = self.container.sensor(name).latest_output()
        except GSNError as exc:
            return _error(exc, status=404)
        if element is None:
            return _ok({"sensor": name, "latest": None})
        values = {
            key: (f"<{len(value)} bytes>"
                  if isinstance(value, (bytes, bytearray)) else value)
            for key, value in element.values.items()
        }
        return _ok({"sensor": name,
                    "latest": {"timed": element.timed, "values": values}})

    def query(self, sql: str, client: str = "",
              api_key: str = "") -> Dict[str, Any]:
        """``GET /query?sql=...``."""
        try:
            relation = self.container.query(sql, client=client,
                                            api_key=api_key)
        except GSNError as exc:
            return _error(exc)
        rows = [
            {key: (f"<{len(v)} bytes>"
                   if isinstance(v, (bytes, bytearray)) else v)
             for key, v in row.items()}
            for row in relation.to_dicts()
        ]
        return _ok({"columns": list(relation.columns), "rows": rows,
                    "row_count": len(relation)})

    def explain(self, sql: str, analyze: bool = False) -> Dict[str, Any]:
        """``GET /explain?sql=...[&analyze=1]`` — the query's logical
        plan, with per-node cost estimates when ``analyze`` is set."""
        try:
            plan_text = self.container.processor.explain(sql, analyze=analyze)
        except GSNError as exc:
            return _error(exc)
        return _ok({"sql": sql, "analyze": analyze,
                    "plan": plan_text.splitlines()})

    def directory(self) -> Dict[str, Any]:
        """``GET /network`` — the peer network view."""
        if self.container.peer is None:
            return _ok({"network": None})
        return _ok({"network": self.container.peer.network.status()})

    def metrics_text(self) -> str:
        """``GET /metrics`` — Prometheus text exposition (not JSON)."""
        return self.container.metrics_text()

    def traces(self, trace_id: Optional[str] = None,
               limit: Optional[int] = None) -> Dict[str, Any]:
        """``GET /trace`` — recent span trees, or one trace by id."""
        documents = self.container.trace_documents(trace_id=trace_id,
                                                   limit=limit)
        return _ok({"container": self.container.name,
                    "trace_count": len(documents), "traces": documents})

    def healthz(self) -> Dict[str, Any]:
        """``GET /healthz`` — the health verdict, 503 when unhealthy.

        SLO misses are informational (they ride in the body) and never
        flip the HTTP status; component checks do.
        """
        report = self.container.health_report()
        status = 200 if report["status"] == "ok" else 503
        return {"status": status, "container": self.container.name,
                "health": report}

    def dump(self) -> Dict[str, Any]:
        """``GET /dump`` — force and return a black-box dump."""
        return _ok({"dump": self.container.blackbox_dump(
            reason="http-request")})

    def profile_text(self, seconds: Optional[float] = None) -> str:
        """``GET /profile[?seconds=...]`` — collapsed stacks (text).

        With the background sampler running, returns what it has
        aggregated so far; ``seconds`` adds an on-demand synchronous
        burst first (capped at 5 s so a typo cannot stall the server).
        """
        profiler = self.container.profiler
        if seconds is not None and seconds > 0:
            profiler.sample_burst(min(float(seconds), 5.0))
        return profiler.collapsed()

    # -- POST endpoints ----------------------------------------------------------

    def deploy(self, descriptor_xml: str, client: str = "",
               api_key: str = "") -> Dict[str, Any]:
        """``POST /deploy`` with the descriptor XML as the request body."""
        try:
            sensor = self.container.deploy(descriptor_xml, client=client,
                                           api_key=api_key)
        except GSNError as exc:
            return _error(exc)
        return _ok({"deployed": sensor.name})

    def undeploy(self, name: str, client: str = "",
                 api_key: str = "") -> Dict[str, Any]:
        """``POST /undeploy/<name>``."""
        try:
            self.container.undeploy(name, client=client, api_key=api_key)
        except GSNError as exc:
            return _error(exc)
        return _ok({"undeployed": name})

    def reconfigure(self, descriptor_xml: str, client: str = "",
                    api_key: str = "") -> Dict[str, Any]:
        """``POST /reconfigure``."""
        try:
            sensor = self.container.reconfigure(descriptor_xml, client=client,
                                                api_key=api_key)
        except GSNError as exc:
            return _error(exc)
        return _ok({"reconfigured": sensor.name})

    def register_query(self, sql: str, channel: str = "queue",
                       client: str = "anonymous", name: str = "",
                       history: Optional[str] = None) -> Dict[str, Any]:
        """``POST /subscriptions``."""
        try:
            subscription = self.container.register_query(
                sql, channel=channel, client=client, name=name,
                history=history,
            )
        except GSNError as exc:
            return _error(exc)
        return _ok({"subscription": subscription.summary()})

    def unregister_query(self, subscription_id: int) -> Dict[str, Any]:
        """``DELETE /subscriptions/<id>``."""
        try:
            self.container.unregister_query(subscription_id)
        except GSNError as exc:
            return _error(exc, status=404)
        return _ok({"unregistered": subscription_id})

    # -- helpers -----------------------------------------------------------------

    def to_json(self, response: Dict[str, Any]) -> str:
        """Serialize a response the way the HTTP layer would."""
        return json.dumps(response, default=_json_default, indent=2)


def _json_default(value: Any) -> Any:
    if isinstance(value, (bytes, bytearray)):
        return f"<{len(value)} bytes>"
    return str(value)
