"""XML parsing and serialization for deployment descriptors.

The accepted format is the paper's Figure 1::

    <virtual-sensor name="avg-temp" priority="10">
      <life-cycle pool-size="10" />
      <output-structure>
        <field name="TEMPERATURE" type="integer"/>
      </output-structure>
      <storage permanent-storage="true" size="10s" />
      <addressing>
        <predicate key="type" val="temperature"/>
      </addressing>
      <input-stream name="dummy" rate="100">
        <stream-source alias="src1" sampling-rate="1"
                       storage-size="1h" disconnect-buffer="10">
          <address wrapper="remote">
            <predicate key="type" val="temperature"/>
            <predicate key="location" val="bc143"/>
          </address>
          <query>select avg(temperature) from WRAPPER</query>
        </stream-source>
        <query>select * from src1</query>
      </input-stream>
    </virtual-sensor>

Predicate values may be given either as a ``val`` attribute (as in the
paper) or as element text.
"""

from __future__ import annotations

import xml.etree.ElementTree as ET
from typing import Dict, List, Optional
from xml.sax.saxutils import escape, quoteattr

from repro.datatypes import DataType
from repro.descriptors.model import (
    AddressSpec, InputStreamSpec, LifeCycleConfig, StorageConfig,
    StreamSourceSpec, VirtualSensorDescriptor,
)
from repro.exceptions import DescriptorError
from repro.streams.schema import Field, StreamSchema


def descriptor_from_xml(xml_text: str) -> VirtualSensorDescriptor:
    """Parse an XML string into a :class:`VirtualSensorDescriptor`."""
    try:
        root = ET.fromstring(xml_text)
    except ET.ParseError as exc:
        raise DescriptorError(f"malformed XML: {exc}") from exc
    return _parse_root(root)


def descriptor_from_file(path: str) -> VirtualSensorDescriptor:
    """Parse a descriptor from a file path."""
    try:
        tree = ET.parse(path)
    except (OSError, ET.ParseError) as exc:
        raise DescriptorError(f"cannot read descriptor {path!r}: {exc}") from exc
    return _parse_root(tree.getroot())


def _parse_root(root: ET.Element) -> VirtualSensorDescriptor:
    if root.tag != "virtual-sensor":
        raise DescriptorError(
            f"expected <virtual-sensor> root, found <{root.tag}>"
        )
    name = _required_attr(root, "name")
    priority = _int_attr(root, "priority", default=10)
    description = root.attrib.get("description", "")
    trace_sampling = _float_attr(root, "trace-sampling", default=1.0)

    lifecycle = _parse_lifecycle(root.find("life-cycle"))
    output_structure = _parse_output_structure(root.find("output-structure"))
    storage = _parse_storage(root.find("storage"))
    addressing = _parse_predicates(root.find("addressing"))

    streams = [
        _parse_input_stream(element)
        for element in root.findall("input-stream")
    ]
    if not streams:
        raise DescriptorError(
            f"virtual sensor {name!r} declares no <input-stream>"
        )

    try:
        return VirtualSensorDescriptor(
            name=name,
            output_structure=output_structure,
            input_streams=tuple(streams),
            lifecycle=lifecycle,
            storage=storage,
            addressing=addressing,
            description=description,
            priority=priority,
            trace_sampling=trace_sampling,
        )
    except Exception as exc:
        raise DescriptorError(str(exc)) from exc


def _parse_lifecycle(element: Optional[ET.Element]) -> LifeCycleConfig:
    if element is None:
        return LifeCycleConfig()
    return LifeCycleConfig(
        pool_size=_int_attr(element, "pool-size", default=1),
        max_errors=_int_attr(element, "max-errors", default=0),
    )


def _parse_output_structure(element: Optional[ET.Element]) -> StreamSchema:
    if element is None:
        raise DescriptorError("missing <output-structure>")
    fields: List[Field] = []
    for child in element.findall("field"):
        field_name = _required_attr(child, "name")
        type_text = _required_attr(child, "type")
        try:
            fields.append(Field(field_name, DataType.parse(type_text),
                                child.attrib.get("description", "")))
        except Exception as exc:
            raise DescriptorError(
                f"bad field {field_name!r}: {exc}"
            ) from exc
    if not fields:
        raise DescriptorError("<output-structure> declares no fields")
    try:
        return StreamSchema(fields)
    except Exception as exc:
        raise DescriptorError(str(exc)) from exc


def _parse_storage(element: Optional[ET.Element]) -> StorageConfig:
    if element is None:
        return StorageConfig()
    permanent = _bool_attr(element, "permanent-storage", default=False)
    size = element.attrib.get("size")
    incremental = _bool_attr(element, "incremental", default=True)
    return StorageConfig(permanent=permanent, history_size=size,
                         incremental=incremental)


def _parse_predicates(element: Optional[ET.Element]) -> Dict[str, str]:
    if element is None:
        return {}
    predicates: Dict[str, str] = {}
    for child in element.findall("predicate"):
        key = _required_attr(child, "key")
        value = child.attrib.get("val")
        if value is None:
            value = (child.text or "").strip()
        if not value:
            raise DescriptorError(f"predicate {key!r} has no value")
        predicates[key] = value
    return predicates


def _parse_input_stream(element: ET.Element) -> InputStreamSpec:
    name = _required_attr(element, "name")
    rate = _float_attr(element, "rate", default=0.0)
    sources = [
        _parse_stream_source(child)
        for child in element.findall("stream-source")
    ]
    query = _child_query(element, context=f"input-stream {name!r}")
    try:
        return InputStreamSpec(name=name, sources=tuple(sources),
                               query=query, rate=rate,
                               lifetime=element.attrib.get("lifetime"))
    except Exception as exc:
        raise DescriptorError(str(exc)) from exc


def _parse_stream_source(element: ET.Element) -> StreamSourceSpec:
    alias = _required_attr(element, "alias")
    address_element = element.find("address")
    if address_element is None:
        raise DescriptorError(f"stream-source {alias!r} has no <address>")
    wrapper = _required_attr(address_element, "wrapper")
    predicates = {}
    for child in address_element.findall("predicate"):
        key = _required_attr(child, "key")
        value = child.attrib.get("val")
        if value is None:
            value = (child.text or "").strip()
        predicates[key] = value
    query = _child_query(element, context=f"stream-source {alias!r}",
                         default="select * from wrapper")
    try:
        return StreamSourceSpec(
            alias=alias,
            address=AddressSpec(wrapper, predicates),
            query=query,
            sampling_rate=_float_attr(element, "sampling-rate", default=1.0),
            storage_size=element.attrib.get("storage-size"),
            disconnect_buffer=_int_attr(element, "disconnect-buffer", default=0),
            slide=element.attrib.get("slide"),
        )
    except DescriptorError:
        raise
    except Exception as exc:
        raise DescriptorError(str(exc)) from exc


def _child_query(element: ET.Element, context: str,
                 default: Optional[str] = None) -> str:
    query_element = element.find("query")
    if query_element is None or not (query_element.text or "").strip():
        if default is not None:
            return default
        raise DescriptorError(f"{context} has no <query>")
    return query_element.text.strip()


# -- line index (for analysis findings) --------------------------------------


def descriptor_line_index(xml_text: str) -> Dict[tuple, int]:
    """Map descriptor structure to 1-based line numbers in ``xml_text``.

    Keys (names lowercased exactly like the model normalizes them):

    - ``("virtual-sensor",)`` — the root element
    - ``("input-stream", stream)`` — one input stream
    - ``("stream-source", stream, alias)`` — one stream source
    - ``("source-query", stream, alias)`` — a source's ``<query>``
    - ``("stream-query", stream)`` — the stream's output ``<query>``

    Used by ``gsn-lint`` to anchor descriptor findings to file lines so
    GSN1xx–GSN7xx JSON output carries the same ``path``/``line`` fields
    as the Python-source passes. Malformed XML yields an empty index
    (the parse error is reported elsewhere).
    """
    import xml.parsers.expat

    index: Dict[tuple, int] = {}
    stream: List[Optional[str]] = [None]
    alias: List[Optional[str]] = [None]
    parser = xml.parsers.expat.ParserCreate()

    def start(tag: str, attrs: Dict[str, str]) -> None:
        line = parser.CurrentLineNumber
        if tag == "virtual-sensor":
            index.setdefault(("virtual-sensor",), line)
        elif tag == "input-stream":
            stream[0] = (attrs.get("name") or "").strip().lower()
            alias[0] = None
            index.setdefault(("input-stream", stream[0]), line)
        elif tag == "stream-source" and stream[0] is not None:
            alias[0] = (attrs.get("alias") or "").strip().lower()
            index.setdefault(("stream-source", stream[0], alias[0]), line)
        elif tag == "query" and stream[0] is not None:
            if alias[0] is not None:
                index.setdefault(("source-query", stream[0], alias[0]),
                                 line)
            else:
                index.setdefault(("stream-query", stream[0]), line)

    def end(tag: str) -> None:
        if tag == "stream-source":
            alias[0] = None
        elif tag == "input-stream":
            stream[0] = None
            alias[0] = None

    parser.StartElementHandler = start
    parser.EndElementHandler = end
    try:
        parser.Parse(xml_text, True)
    except xml.parsers.expat.ExpatError:
        return {}
    return index


# -- attribute helpers -------------------------------------------------------


def _required_attr(element: ET.Element, name: str) -> str:
    value = element.attrib.get(name, "").strip()
    if not value:
        raise DescriptorError(f"<{element.tag}> requires a {name!r} attribute")
    return value


def _int_attr(element: ET.Element, name: str, default: int) -> int:
    raw = element.attrib.get(name)
    if raw is None:
        return default
    try:
        return int(raw)
    except ValueError:
        raise DescriptorError(
            f"<{element.tag} {name}={raw!r}> is not an integer"
        ) from None


def _float_attr(element: ET.Element, name: str, default: float) -> float:
    raw = element.attrib.get(name)
    if raw is None:
        return default
    try:
        return float(raw)
    except ValueError:
        raise DescriptorError(
            f"<{element.tag} {name}={raw!r}> is not a number"
        ) from None


def _bool_attr(element: ET.Element, name: str, default: bool) -> bool:
    raw = element.attrib.get(name)
    if raw is None:
        return default
    lowered = raw.strip().lower()
    if lowered in ("true", "1", "yes"):
        return True
    if lowered in ("false", "0", "no"):
        return False
    raise DescriptorError(f"<{element.tag} {name}={raw!r}> is not a boolean")


# -- serialization -----------------------------------------------------------


def descriptor_to_xml(descriptor: VirtualSensorDescriptor) -> str:
    """Serialize a descriptor back to the Figure 1 XML format.

    ``descriptor_from_xml(descriptor_to_xml(d)) == d`` for every valid
    descriptor (the property tests assert this round-trip).
    """
    lines: List[str] = []
    attrs = f" name={quoteattr(descriptor.name)} priority=\"{descriptor.priority}\""
    if descriptor.description:
        attrs += f" description={quoteattr(descriptor.description)}"
    if descriptor.trace_sampling != 1.0:
        # Serialized only when non-default so round-tripping descriptors
        # written before the attribute existed stays byte-stable.
        attrs += f' trace-sampling="{_format_number(descriptor.trace_sampling)}"'
    lines.append(f"<virtual-sensor{attrs}>")
    lifecycle_attrs = f'pool-size="{descriptor.lifecycle.pool_size}"'
    if descriptor.lifecycle.max_errors:
        lifecycle_attrs += f' max-errors="{descriptor.lifecycle.max_errors}"'
    lines.append(f"  <life-cycle {lifecycle_attrs} />")
    lines.append("  <output-structure>")
    for field in descriptor.output_structure:
        lines.append(
            f"    <field name={quoteattr(field.name)} "
            f"type=\"{field.type.value}\"/>"
        )
    lines.append("  </output-structure>")
    storage_attrs = (
        f' permanent-storage="{"true" if descriptor.storage.permanent else "false"}"'
    )
    if descriptor.storage.history_size:
        storage_attrs += f" size={quoteattr(descriptor.storage.history_size)}"
    if not descriptor.storage.incremental:
        # Serialized only when non-default so round-tripping descriptors
        # written before the flag existed stays byte-stable.
        storage_attrs += ' incremental="false"'
    lines.append(f"  <storage{storage_attrs} />")
    if descriptor.addressing:
        lines.append("  <addressing>")
        for key, value in descriptor.addressing.items():
            lines.append(
                f"    <predicate key={quoteattr(key)} val={quoteattr(value)} />"
            )
        lines.append("  </addressing>")
    for stream in descriptor.input_streams:
        rate_attr = f' rate="{_format_number(stream.rate)}"' if stream.rate else ""
        if stream.lifetime:
            rate_attr += f" lifetime={quoteattr(stream.lifetime)}"
        lines.append(
            f"  <input-stream name={quoteattr(stream.name)}{rate_attr}>"
        )
        for source in stream.sources:
            source_attrs = [f"alias={quoteattr(source.alias)}"]
            if source.sampling_rate != 1.0:
                source_attrs.append(
                    f'sampling-rate="{_format_number(source.sampling_rate)}"'
                )
            if source.storage_size:
                source_attrs.append(
                    f"storage-size={quoteattr(source.storage_size)}"
                )
            if source.disconnect_buffer:
                source_attrs.append(
                    f'disconnect-buffer="{source.disconnect_buffer}"'
                )
            if source.slide:
                source_attrs.append(f"slide={quoteattr(source.slide)}")
            lines.append(f"    <stream-source {' '.join(source_attrs)}>")
            lines.append(
                f"      <address wrapper={quoteattr(source.address.wrapper)}>"
            )
            for key, value in source.address.predicates.items():
                lines.append(
                    f"        <predicate key={quoteattr(key)} "
                    f"val={quoteattr(value)} />"
                )
            lines.append("      </address>")
            lines.append(f"      <query>{escape(source.query)}</query>")
            lines.append("    </stream-source>")
        lines.append(f"    <query>{escape(stream.query)}</query>")
        lines.append("  </input-stream>")
    lines.append("</virtual-sensor>")
    return "\n".join(lines)


def _format_number(value: float) -> str:
    if value == int(value):
        return str(int(value))
    return repr(value)
