"""Semantic validation of deployment descriptors.

Parsing accepts anything structurally well-formed; this pass rejects
descriptors that would fail at deployment time: queries that do not parse,
source queries reading tables other than ``WRAPPER``, stream queries
reading tables that are not source aliases, unknown window specs, and —
when a wrapper registry is supplied — unknown wrapper names.

Passing ``registry=`` additionally runs the gsn-lint schema pass: wrapper
output schemas are propagated through the source and stream queries and
checked against the declared ``<output-structure>``, turning ``SELECT *``
and column/type mistakes into static errors instead of runtime surprises.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, List, Optional

from repro.descriptors.model import VirtualSensorDescriptor
from repro.exceptions import SQLError, ValidationError
from repro.gsntime.duration import parse_duration, parse_window_spec
from repro.sqlengine.parser import parse_select
from repro.sqlengine.rewriter import WRAPPER_TABLE, statement_tables

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.wrappers.registry import WrapperRegistry


def validate_descriptor(
    descriptor: VirtualSensorDescriptor,
    known_wrapper: Optional[Callable[[str], bool]] = None,
    registry: Optional["WrapperRegistry"] = None,
) -> List[str]:
    """Validate ``descriptor``, returning a list of warnings.

    Hard violations raise :class:`ValidationError`; recoverable oddities
    are returned as warnings. Without a ``registry`` an output query
    selecting ``*`` defers schema checking to runtime; with one, the
    gsn-lint schema pass runs and column/type mistakes (including those
    hidden behind ``SELECT *``) become :class:`ValidationError`\\ s.
    """
    warnings: List[str] = []

    for stream in descriptor.input_streams:
        aliases = {source.alias for source in stream.sources}
        if stream.lifetime is not None:
            try:
                parse_duration(stream.lifetime)
            except Exception as exc:
                raise ValidationError(
                    f"bad lifetime on {descriptor.name}/{stream.name}: {exc}"
                ) from exc

        for source in stream.sources:
            _check_window(source.storage_size,
                          f"{descriptor.name}/{stream.name}/{source.alias}")
            _check_window(source.slide,
                          f"{descriptor.name}/{stream.name}/{source.alias}"
                          f" slide")
            tables = _parse_tables(
                source.query,
                f"source query of {descriptor.name}/{source.alias}",
            )
            illegal = tables - {WRAPPER_TABLE}
            if illegal:
                raise ValidationError(
                    f"source query of {source.alias!r} may only read "
                    f"WRAPPER, found {sorted(illegal)}"
                )
            if WRAPPER_TABLE not in tables:
                warnings.append(
                    f"source {source.alias!r} query does not read WRAPPER; "
                    f"it will produce constant rows"
                )
            if source.address.wrapper == "remote":
                if not source.address.predicates:
                    raise ValidationError(
                        f"remote source {source.alias!r} needs at least one "
                        f"discovery predicate"
                    )
            elif known_wrapper is not None \
                    and not known_wrapper(source.address.wrapper):
                raise ValidationError(
                    f"unknown wrapper {source.address.wrapper!r} "
                    f"for source {source.alias!r}"
                )

        stream_tables = _parse_tables(
            stream.query, f"stream query of {descriptor.name}/{stream.name}"
        )
        unknown = stream_tables - aliases
        if unknown:
            raise ValidationError(
                f"stream query of {stream.name!r} reads unknown source "
                f"alias(es) {sorted(unknown)}; declared: {sorted(aliases)}"
            )
        if not stream_tables:
            warnings.append(
                f"stream query of {stream.name!r} reads no source; "
                f"it will produce constant rows"
            )

    _check_window(descriptor.storage.history_size,
                  f"{descriptor.name}/<storage size>")

    if len(descriptor.output_structure) == 0:
        raise ValidationError("output structure cannot be empty")

    if registry is not None:
        # Deferred import: repro.analysis builds on this module.
        from repro.analysis.passes import schema_check

        report = schema_check(descriptor, registry)
        if report.errors:
            raise ValidationError(
                "; ".join(finding.render() for finding in report.errors)
            )
        warnings.extend(finding.render() for finding in report.warnings)

    return warnings


def _parse_tables(sql: str, context: str):
    try:
        statement = parse_select(sql)
    except SQLError as exc:
        raise ValidationError(f"{context} does not parse: {exc}") from exc
    return statement_tables(statement)


def _check_window(spec: Optional[str], context: str) -> None:
    if spec is None:
        return
    try:
        parse_window_spec(spec)
    except Exception as exc:
        raise ValidationError(f"bad window spec in {context}: {exc}") from exc
