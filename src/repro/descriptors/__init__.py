"""Virtual-sensor deployment descriptors.

"To support rapid deployment, these properties of virtual sensors are
provided in a declarative deployment descriptor" (paper, Section 2). This
package models the XML format of the paper's Figure 1, parses and
serializes it, and validates descriptors before deployment.
"""

from repro.descriptors.model import (
    AddressSpec,
    InputStreamSpec,
    LifeCycleConfig,
    StorageConfig,
    StreamSourceSpec,
    VirtualSensorDescriptor,
)
from repro.descriptors.xml_io import (
    descriptor_from_file,
    descriptor_from_xml,
    descriptor_to_xml,
)
from repro.descriptors.validation import validate_descriptor

__all__ = [
    "VirtualSensorDescriptor",
    "InputStreamSpec",
    "StreamSourceSpec",
    "AddressSpec",
    "LifeCycleConfig",
    "StorageConfig",
    "descriptor_from_xml",
    "descriptor_from_file",
    "descriptor_to_xml",
    "validate_descriptor",
]
