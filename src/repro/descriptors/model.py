"""Dataclass model of the virtual-sensor deployment descriptor.

Field names follow the XML attributes of the paper's Figure 1:
``pool-size``, ``permanent-storage``, ``sampling-rate``, ``storage-size``,
``disconnect-buffer``, and the ``<address wrapper=...>`` element with its
key/value predicates.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from repro.exceptions import ValidationError
from repro.streams.schema import StreamSchema


@dataclass(frozen=True)
class LifeCycleConfig:
    """``<life-cycle pool-size="10" max-errors="5"/>``.

    ``pool_size`` is the paper's thread-pool knob. ``max_errors`` is the
    error-handling policy: after that many *consecutive* pipeline
    failures the sensor transitions to FAILED instead of burning cycles
    on a broken source (0 disables auto-failing).
    """

    pool_size: int = 1
    max_errors: int = 0

    def __post_init__(self) -> None:
        if self.pool_size < 1:
            raise ValidationError("pool-size must be at least 1")
        if self.max_errors < 0:
            raise ValidationError("max-errors cannot be negative")


@dataclass(frozen=True)
class StorageConfig:
    """``<storage permanent-storage="true" size="10s"/>``.

    ``history_size`` bounds how much of the output stream is kept; it is a
    window spec (``"10s"`` time-based, ``"10"`` count-based, ``None``
    unbounded).

    ``incremental`` is the per-sensor escape hatch for the incremental
    pipeline: ``incremental="false"`` forces the legacy per-trigger
    window rebuild and generic query execution for this sensor.
    """

    permanent: bool = False
    history_size: Optional[str] = None
    incremental: bool = True


@dataclass(frozen=True)
class AddressSpec:
    """``<address wrapper="...">`` plus its key/value predicates.

    ``wrapper`` names the wrapper implementation ("remote" pulls the
    stream from another virtual sensor through GSN — logical addressing);
    ``predicates`` either configure a local wrapper or, for remote
    addressing, select the producing virtual sensor in the directory.
    """

    wrapper: str
    predicates: Dict[str, str] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.wrapper.strip():
            raise ValidationError("address needs a wrapper name")
        object.__setattr__(self, "wrapper", self.wrapper.strip().lower())
        object.__setattr__(
            self,
            "predicates",
            {str(k).strip().lower(): str(v) for k, v in self.predicates.items()},
        )


@dataclass(frozen=True)
class StreamSourceSpec:
    """``<stream-source>``: one input of an input stream.

    Attributes mirror the descriptor: ``alias`` names the temporary
    relation the source query fills; ``sampling_rate`` in (0, 1] samples
    the raw stream; ``storage_size`` defines the window over the raw
    stream; ``disconnect_buffer`` bounds elements retained across
    disconnections; ``query`` is the SQL over the reserved ``WRAPPER``
    table.
    """

    alias: str
    address: AddressSpec
    query: str = "select * from wrapper"
    sampling_rate: float = 1.0
    storage_size: Optional[str] = None
    disconnect_buffer: int = 0
    #: Optional trigger decimation: ``"5"`` fires the pipeline on every
    #: 5th admitted element, ``"10s"`` at most every 10 seconds (by
    #: element timestamp). The window itself updates on every element.
    slide: Optional[str] = None

    def __post_init__(self) -> None:
        alias = self.alias.strip().lower()
        if not alias or not alias.isidentifier():
            raise ValidationError(f"bad stream-source alias {self.alias!r}")
        object.__setattr__(self, "alias", alias)
        if not 0.0 < self.sampling_rate <= 1.0:
            raise ValidationError("sampling-rate must be in (0, 1]")
        if self.disconnect_buffer < 0:
            raise ValidationError("disconnect-buffer cannot be negative")
        if not self.query.strip():
            raise ValidationError("stream-source needs a query")


@dataclass(frozen=True)
class InputStreamSpec:
    """``<input-stream>``: named group of sources plus the stream query.

    ``rate`` bounds the output rate of the input stream in elements per
    second (0 disables bounding), mirroring the ``rate`` attribute of
    Figure 1. ``lifetime`` bounds how long the stream stays active after
    its sensor starts ("bounding the lifetime of a data stream in order
    to reserve resources only when they are needed", paper Section 3) —
    a duration string like ``"1h"``, or ``None`` for unbounded.
    """

    name: str
    sources: Tuple[StreamSourceSpec, ...]
    query: str
    rate: float = 0.0
    lifetime: Optional[str] = None

    def __post_init__(self) -> None:
        name = self.name.strip().lower()
        if not name:
            raise ValidationError("input-stream needs a name")
        object.__setattr__(self, "name", name)
        object.__setattr__(self, "sources", tuple(self.sources))
        if not self.sources:
            raise ValidationError(f"input-stream {name!r} has no sources")
        if self.rate < 0:
            raise ValidationError("rate cannot be negative")
        if not self.query.strip():
            raise ValidationError(f"input-stream {name!r} needs a query")
        aliases = [source.alias for source in self.sources]
        if len(set(aliases)) != len(aliases):
            raise ValidationError(
                f"duplicate source aliases in input-stream {name!r}"
            )


@dataclass(frozen=True)
class VirtualSensorDescriptor:
    """The complete deployment descriptor of one virtual sensor."""

    name: str
    output_structure: StreamSchema
    input_streams: Tuple[InputStreamSpec, ...]
    lifecycle: LifeCycleConfig = LifeCycleConfig()
    storage: StorageConfig = StorageConfig()
    addressing: Dict[str, str] = field(default_factory=dict)
    description: str = ""
    priority: int = 10
    #: Fraction of fresh elements whose pipeline runs are traced
    #: (``trace-sampling`` XML attribute). 1.0 traces everything, 0.0
    #: disables tracing; elements arriving with an upstream trace id are
    #: always traced regardless.
    trace_sampling: float = 1.0

    def __post_init__(self) -> None:
        name = self.name.strip().lower()
        if not name:
            raise ValidationError("virtual sensor needs a name")
        if not all(ch.isalnum() or ch in "-_." for ch in name):
            raise ValidationError(f"bad virtual sensor name {self.name!r}")
        object.__setattr__(self, "name", name)
        object.__setattr__(self, "input_streams", tuple(self.input_streams))
        if not self.input_streams:
            raise ValidationError(f"virtual sensor {name!r} has no input streams")
        stream_names = [stream.name for stream in self.input_streams]
        if len(set(stream_names)) != len(stream_names):
            raise ValidationError(f"duplicate input-stream names in {name!r}")
        object.__setattr__(
            self,
            "addressing",
            {str(k).strip().lower(): str(v) for k, v in self.addressing.items()},
        )
        if not 0 <= self.priority <= 20:
            raise ValidationError("priority must be within [0, 20]")
        if not 0.0 <= self.trace_sampling <= 1.0:
            raise ValidationError("trace-sampling must be in [0, 1]")

    @property
    def discovery_predicates(self) -> Dict[str, str]:
        """The key/value pairs published to the P2P directory: the
        user-defined addressing metadata plus the sensor's name."""
        merged = {"name": self.name}
        merged.update(self.addressing)
        return merged

    def source_aliases(self) -> Tuple[str, ...]:
        return tuple(
            source.alias
            for stream in self.input_streams
            for source in stream.sources
        )
