"""Figure 4: query processing latency in a GSN node.

Paper setup: one GSN node serving a stream with element size (SES) 32 KB;
0-500 registered clients issuing "random queries with 3 filtering
predicates in the where clause on average, using random history sizes
from 1 second up to 30 minutes and uniformly distributed random sampling
rates"; bursts produced with a small probability. The plotted quantity is
the *total* processing time for evaluating the whole client set on a data
arrival.

Expected shape: total time grows roughly linearly with the client count
(the per-client cost stays roughly flat — the paper reports < 1 ms/client
at 500 clients), with spikes on burst rounds.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from repro.container import GSNContainer
from repro.metrics.report import Series, format_table
from repro.simulation.workload import QueryWorkloadGenerator, payload_descriptor

#: The paper sweeps 0..500 clients; we sample that range.
PAPER_CLIENT_COUNTS = tuple(range(0, 501, 25))

#: Stream element size used in the paper's Figure 4.
PAPER_SES = 32_768

#: Burst probability ("bursts were produced with a probability of ~0.05").
BURST_PROBABILITY = 0.05

#: Extra data elements injected on a burst round.
BURST_ELEMENTS = 25


@dataclass
class Figure4Result:
    series: Series = field(default_factory=lambda: Series("SES=32KB"))
    burst_rounds: List[int] = field(default_factory=list)

    def table(self) -> str:
        rows: List[Tuple[object, ...]] = []
        for clients, total_ms in self.series.points:
            per_client = total_ms / clients if clients else 0.0
            burst = "burst" if clients in self.burst_rounds else ""
            rows.append((int(clients), total_ms, per_client, burst))
        return format_table(
            ("clients", "total_ms", "ms_per_client", "note"), rows
        )

    def plot(self) -> str:
        from repro.metrics.ascii_plot import plot_series
        return plot_series([self.series], x_label="number of clients",
                           y_label="total processing ms")

    def shape_holds(self) -> bool:
        """Total time must grow with client count while per-client cost
        stays bounded (amortization) — the paper's qualitative claims."""
        points = [(c, t) for c, t in self.series.points
                  if c not in self.burst_rounds]
        if len(points) < 3:
            return False
        counts = [c for c, __ in points]
        totals = [t for __, t in points]
        if totals[-1] <= totals[0]:
            return False
        larges = [t / c for c, t in points if c >= max(counts) / 2]
        smalls = [t / c for c, t in points if 0 < c <= max(counts) / 4]
        if not larges or not smalls:
            return True
        # Per-client cost must not blow up as clients increase.
        return (sum(larges) / len(larges)) <= 2.0 * (sum(smalls) / len(smalls))


def run_figure4(client_counts: Sequence[int] = PAPER_CLIENT_COUNTS,
                ses_bytes: int = PAPER_SES,
                warmup_ms: int = 5_000,
                seed: Optional[int] = 7,
                burst_probability: float = BURST_PROBABILITY,
                verbose: bool = False) -> Figure4Result:
    """Regenerate the Figure 4 data.

    For each client count N: register N random standing queries against a
    32 KB-element stream, let one data arrival trigger the repository,
    and measure the total wall time to evaluate all N queries.
    """
    import random

    result = Figure4Result()
    burst_rng = random.Random(seed)

    with GSNContainer("fig4") as node:
        node.deploy(payload_descriptor("stream", 1, 500, ses_bytes,
                                       window="5"))
        node.run_for(warmup_ms)
        table = node.output_table("stream")
        generator = QueryWorkloadGenerator(table, node.now, seed=seed)

        for clients in client_counts:
            subscriptions = [
                node.register_query(generator.next_query(), channel="queue",
                                    client=f"client-{i}")
                for i in range(clients)
            ]

            is_burst = burst_rng.random() < burst_probability
            if is_burst:
                node.run_for(500 * BURST_ELEMENTS)
                result.burst_rounds.append(clients)

            catalog = node.processor.snapshot_catalog()
            started = time.perf_counter()
            node.repository.data_arrived(table, catalog)
            total_ms = (time.perf_counter() - started) * 1000.0

            result.series.add(clients, total_ms)
            if verbose:
                per_client = total_ms / clients if clients else 0.0
                print(f"  clients={clients:>4} -> total {total_ms:8.3f} ms "
                      f"({per_client:.4f} ms/client)"
                      f"{'  [burst]' if is_burst else ''}")

            for subscription in subscriptions:
                node.unregister_query(subscription.id)
            # Drain the queue channel so memory stays flat across rounds.
            node.notifications.channel("queue").drain()

    return result


def main(fast: bool = False) -> Figure4Result:
    """CLI entry: print the regenerated Figure 4 table."""
    counts = tuple(range(0, 501, 100)) if fast else PAPER_CLIENT_COUNTS
    result = run_figure4(client_counts=counts, verbose=True)
    print()
    print("Figure 4 — query processing latency in a GSN node (SES=32KB)")
    print(result.table())
    print()
    print(result.plot())
    print(f"\nshape holds: {result.shape_holds()}")
    return result
