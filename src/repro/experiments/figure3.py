"""Figure 3: GSN node under time-triggered load.

Paper setup: "22 motes and 15 cameras arranged in 4 sensor networks ...
The devices produced data items every 10, 25, 50, 100, 250, 500, and 1000
milliseconds and we measure the internal processing times of a GSN node
for various sizes of produced data items" — sizes 15 B, 50 B, 100 B,
16 KB, 32 KB, and 75 KB.

Expected shape (which this reproduction checks, not the absolute numbers):
per-element processing time is highest at the smallest output interval,
drops sharply as the interval grows, and converges to a near-constant
floor at roughly 4 readings/second or less; larger payloads sit higher.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Sequence

from repro.container import GSNContainer
from repro.metrics.report import Series, format_series_table
from repro.simulation.workload import TimeTriggeredLoad

#: The paper's output intervals (ms).
PAPER_INTERVALS = (10, 25, 50, 100, 250, 500, 1000)

#: The paper's stream element sizes (bytes).
PAPER_SIZES = (15, 50, 100, 16_384, 32_768, 76_800)

#: Total devices in the paper's testbed (22 motes + 15 cameras).
PAPER_DEVICES = 37


@dataclass
class Figure3Result:
    """One series per stream-element size."""

    series: Dict[int, Series] = field(default_factory=dict)
    elements_processed: int = 0

    def table(self) -> str:
        ordered = [self.series[size] for size in sorted(self.series)]
        return format_series_table("interval_ms", ordered)

    def plot(self) -> str:
        from repro.metrics.ascii_plot import plot_series
        ordered = [self.series[size] for size in sorted(self.series)]
        return plot_series(ordered, x_label="output interval (ms)",
                           y_label="processing ms/item", log_y=True)

    def shape_holds(self) -> bool:
        """The paper's qualitative claims on this data."""
        for series in self.series.values():
            ys = series.ys()
            if len(ys) < 3:
                return False
            # Processing cost at the fastest interval must exceed the
            # converged cost at the slowest interval.
            if ys[0] < ys[-1]:
                return False
        return True


def _size_label(size: int) -> str:
    if size >= 1024:
        return f"{size // 1024}KB"
    return f"{size}B"


def run_figure3(intervals: Sequence[int] = PAPER_INTERVALS,
                sizes: Sequence[int] = PAPER_SIZES,
                device_count: int = PAPER_DEVICES,
                duration_ms: int = 10_000,
                verbose: bool = False) -> Figure3Result:
    """Regenerate the Figure 3 data.

    Deploys ``device_count`` fixed-size producers per (interval, size)
    cell on a fresh GSN node, runs ``duration_ms`` of simulated time, and
    records the node's mean internal processing time per data item.
    """
    result = Figure3Result()
    for size in sizes:
        series = Series(_size_label(size))
        for interval in intervals:
            # Sparse cells (large intervals) need more simulated time to
            # collect a statistically stable number of samples; simulated
            # time is nearly free when few events fire.
            cell_duration = max(duration_ms, interval * 25)
            with GSNContainer(f"fig3-{size}-{interval}") as node:
                load = TimeTriggeredLoad(node, device_count, interval, size)
                load.deploy()
                load.run(cell_duration)
                mean_ms = load.mean_processing_ms()
                result.elements_processed += load.elements_processed()
            series.add(interval, mean_ms)
            if verbose:
                print(f"  size={_size_label(size):>5} interval={interval:>5}ms"
                      f" -> {mean_ms:.3f} ms/element")
        result.series[size] = series
    return result


def main(fast: bool = False) -> Figure3Result:
    """CLI entry: print the regenerated Figure 3 table."""
    if fast:
        result = run_figure3(device_count=8, duration_ms=3_000, verbose=True)
    else:
        result = run_figure3(verbose=True)
    print()
    print("Figure 3 — GSN node under time-triggered load")
    print("(mean internal processing time in ms per data item)")
    print(result.table())
    print()
    print(result.plot())
    print(f"\nshape holds: {result.shape_holds()} "
          f"({result.elements_processed} elements processed)")
    return result
