"""Experiment harness regenerating the paper's evaluation.

- :mod:`repro.experiments.figure3` — "GSN node under time-triggered load"
- :mod:`repro.experiments.figure4` — "Query processing latency in a GSN node"
- :mod:`repro.experiments.ablations` — design-choice ablations
- :mod:`repro.experiments.runner` — the ``gsn-repro`` CLI

Run ``python -m repro.experiments figure3`` (or ``figure4``, ``all``).
"""

from repro.experiments.figure3 import Figure3Result, run_figure3
from repro.experiments.figure4 import Figure4Result, run_figure4

__all__ = ["run_figure3", "Figure3Result", "run_figure4", "Figure4Result"]
