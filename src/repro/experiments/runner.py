"""The ``gsn-repro`` command-line runner.

Experiments::

    gsn-repro figure3 [--fast]
    gsn-repro figure4 [--fast]
    gsn-repro ablations
    gsn-repro scalability
    gsn-repro all [--fast]
    gsn-repro demo [--fast]

Operations — deploy descriptor files into a throwaway simulated node::

    gsn-repro run sensor1.xml sensor2.xml --duration 30s \\
        --query "select count(*) n from vs_sensor1" \\
        --dashboard node.html

Equivalently ``python -m repro.experiments <command>``.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.experiments import ablations, figure3, figure4, scalability


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="gsn-repro",
        description="GSN reproduction: experiments and a descriptor runner.",
    )
    parser.add_argument(
        "command",
        choices=("figure3", "figure4", "ablations", "scalability",
                 "demo", "run", "all"),
        help="experiment to run, `demo` (the paper's Figure 5 testbed), "
             "or `run` (deploy descriptor XML files into a simulated node)",
    )
    parser.add_argument(
        "descriptors", nargs="*",
        help="descriptor XML files (for the `run` command)",
    )
    parser.add_argument(
        "--fast", action="store_true",
        help="reduced scale (fewer devices / client counts) for smoke runs",
    )
    parser.add_argument(
        "--duration", default="30s",
        help="simulated time for `run` (duration string, default 30s)",
    )
    parser.add_argument(
        "--query", action="append", default=[],
        help="SQL to print after the `run` (repeatable)",
    )
    parser.add_argument(
        "--dashboard", default="",
        help="write the node's HTML dashboard here after the `run`",
    )
    return parser


def run_descriptors(descriptor_paths: List[str], duration: str,
                    queries: List[str], dashboard: str) -> int:
    """The `run` command: a disposable simulated node for quick trials."""
    from repro.container import GSNContainer
    from repro.gsntime.duration import parse_duration

    if not descriptor_paths:
        print("run: provide at least one descriptor XML file",
              file=sys.stderr)
        return 2
    duration_ms = parse_duration(duration).millis
    with GSNContainer("gsn-run") as node:
        for path in descriptor_paths:
            sensor = node.deploy(path)
            print(f"deployed {sensor.name!r} from {path}")
        node.run_for(duration_ms)
        print(f"ran {duration} of simulated time "
              f"({node.scheduler.events_fired} events)")
        for name in node.sensor_names():
            sensor = node.sensor(name)
            print(f"  {name}: {sensor.elements_produced} elements, "
                  f"mean {sensor.latency.mean_ms:.3f} ms/element")
        for sql in queries:
            print(f"\n> {sql}")
            print(node.query(sql).pretty())
        if dashboard:
            from repro.tools.dashboard import write_dashboard
            write_dashboard(node, dashboard)
            print(f"\ndashboard written to {dashboard}")
    return 0


def run_demo(fast: bool = False) -> None:
    """Stand up the Figure 5 demo testbed, run it, print the node
    dashboards' headline numbers, and write HTML dashboards."""
    from repro.simulation.networks import build_demo_deployment
    from repro.tools.dashboard import write_dashboard

    scale = dict(motes=6, cameras=3) if fast else dict(motes=22, cameras=15)
    with build_demo_deployment(**scale) as demo:
        demo.run_for(10_000)
        print(f"demo testbed: {len(demo.network.directory)} sensors "
              f"across {len(demo.containers)} GSN nodes")
        for container in demo.containers:
            produced = sum(container.sensor(name).elements_produced
                           for name in container.sensor_names())
            page = f"dashboard-{container.name}.html"
            write_dashboard(container, page)
            print(f"  {container.name}: {len(container.sensor_names())} "
                  f"sensors, {produced} elements -> {page}")


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "run":
        return run_descriptors(args.descriptors, args.duration,
                               args.query, args.dashboard)
    if args.command in ("figure3", "all"):
        print("=" * 70)
        figure3.main(fast=args.fast)
    if args.command in ("figure4", "all"):
        print("=" * 70)
        figure4.main(fast=args.fast)
    if args.command in ("ablations", "all"):
        print("=" * 70)
        ablations.main()
    if args.command in ("scalability", "all"):
        print("=" * 70)
        scalability.main()
    if args.command == "demo":
        run_demo(fast=args.fast)
    return 0


if __name__ == "__main__":
    sys.exit(main())
