"""Scalability sweeps.

"Scalability (peer-to-peer architecture)" is one of the paper's four
design goals and "a key factor determining the usability of GSN is its
scalability in the number of queries and clients" (Section 5). Figure 4
covers the client axis; these sweeps cover the other two:

- :func:`sweep_sensors_per_node` — does per-element cost stay flat as
  one container hosts more virtual sensors?
- :func:`sweep_network_size` — does remote-stream delivery stay intact
  as more peer nodes join and chain off each other?
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence, Tuple

from repro.container import GSNContainer
from repro.gsntime.clock import VirtualClock
from repro.gsntime.scheduler import EventScheduler
from repro.metrics.report import Series, format_table
from repro.network.peer import PeerNetwork
from repro.simulation.networks import mote_descriptor


@dataclass
class ScalabilityResult:
    label: str
    series: Series
    notes: List[str] = field(default_factory=list)

    def table(self) -> str:
        return format_table(
            (self.label, self.series.label),
            [(int(x), y) for x, y in self.series.points],
        )


def sweep_sensors_per_node(
    sensor_counts: Sequence[int] = (1, 4, 16, 64),
    interval_ms: int = 500,
    duration_ms: int = 4_000,
) -> ScalabilityResult:
    """Mean pipeline service time per element as sensor count grows.

    A scalable container keeps this flat: each sensor's pipeline touches
    only its own windows and storage, so co-hosted sensors must not tax
    each other (beyond constant factors).
    """
    result = ScalabilityResult("sensors", Series("ms/element"))
    for count in sensor_counts:
        with GSNContainer(f"scale-{count}") as node:
            for index in range(count):
                node.deploy(mote_descriptor(f"m{index}", index + 1,
                                            interval_ms=interval_ms))
            node.run_for(duration_ms)
            total_ms = 0.0
            elements = 0
            for name in node.sensor_names():
                recorder = node.sensor(name).latency
                total_ms += recorder.total_ms
                elements += recorder.count
            mean = total_ms / elements if elements else 0.0
            result.series.add(count, mean)
    return result


def sweep_network_size(
    node_counts: Sequence[int] = (2, 4, 8),
    interval_ms: int = 500,
    duration_ms: int = 4_000,
) -> Tuple[ScalabilityResult, List[int]]:
    """Chains of mirror sensors across N peer nodes.

    Node 0 hosts the physical sensor; node k mirrors node k-1's stream
    through remote addressing. Returns per-chain-length delivery counts
    plus mean end-of-chain element counts — a scalable peer layer loses
    nothing as chains grow.
    """
    result = ScalabilityResult("nodes", Series("elements_at_tail"))
    deliveries = []
    for node_count in node_counts:
        clock = VirtualClock()
        scheduler = EventScheduler(clock)
        network = PeerNetwork(scheduler=scheduler)
        nodes = [
            GSNContainer(f"n{i}", network=network, clock=clock,
                         scheduler=scheduler)
            for i in range(node_count)
        ]
        try:
            nodes[0].deploy(mote_descriptor("origin", 1,
                                            interval_ms=interval_ms))
            previous = "origin"
            for index in range(1, node_count):
                mirror_name = f"hop{index}"
                nodes[index].deploy(_mirror_xml(mirror_name, previous))
                previous = mirror_name
            scheduler.run_for(duration_ms)
            tail = nodes[-1].sensor(previous)
            result.series.add(node_count, tail.elements_produced)
            deliveries.append(network.bus.delivered)
        finally:
            for node in reversed(nodes):
                node.shutdown()
    return result, deliveries


def _mirror_xml(name: str, upstream: str) -> str:
    return f"""
    <virtual-sensor name="{name}">
      <output-structure>
        <field name="temperature" type="integer"/>
      </output-structure>
      <addressing><predicate key="hop" val="{name}"/></addressing>
      <input-stream name="in">
        <stream-source alias="up" storage-size="1">
          <address wrapper="remote">
            <predicate key="name" val="{upstream}"/>
          </address>
          <query>select temperature from wrapper</query>
        </stream-source>
        <query>select * from up</query>
      </input-stream>
    </virtual-sensor>
    """


def main() -> None:
    print("Scalability: sensors per node")
    per_node = sweep_sensors_per_node()
    print(per_node.table())
    print("\nScalability: peer-network chain length")
    chain, deliveries = sweep_network_size()
    print(chain.table())
    print(f"bus deliveries per sweep: {deliveries}")
