"""Ablation experiments for the design choices called out in DESIGN.md.

Each ablation isolates one mechanism and compares the system with it
on/off (or across its alternatives):

- storage backend: in-memory vs SQLite persistence cost per element
- window type: time- vs count-window maintenance cost
- plan cache: repeated-query compilation cost with and without the cache
- pool size: synchronous vs threaded pools for the pipeline
- SQL backend: the scratch engine vs SQLite executing the same window query
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List

from repro.gsntime.clock import VirtualClock
from repro.query.plan_cache import PlanCache
from repro.simulation.workload import QueryWorkloadGenerator
from repro.sqlengine.executor import Catalog, execute
from repro.storage.base import RetentionPolicy
from repro.storage.memory import MemoryStorage
from repro.storage.sqlite import SQLiteStorage
from repro.streams.element import StreamElement
from repro.streams.schema import StreamSchema
from repro.streams.window import CountWindow, TimeWindow
from repro.datatypes import DataType


@dataclass
class AblationResult:
    name: str
    variants: Dict[str, float]  # variant -> metric (ms, lower is better)

    def table_rows(self) -> List[tuple]:
        return [(self.name, variant, round(value, 4))
                for variant, value in self.variants.items()]


def _payload_schema() -> StreamSchema:
    return StreamSchema.build(
        device_id=DataType.INTEGER, payload=DataType.BINARY,
    )


def _elements(count: int, payload_bytes: int) -> List[StreamElement]:
    payload = bytes(payload_bytes)
    return [
        StreamElement({"device_id": i % 16, "payload": payload},
                      timed=1_000 + i * 10)
        for i in range(count)
    ]


def ablate_storage_backend(elements: int = 2_000,
                           payload_bytes: int = 4_096) -> AblationResult:
    """Append cost per element: memory vs SQLite backend."""
    schema = _payload_schema()
    variants: Dict[str, float] = {}
    for label, backend in (("memory", MemoryStorage()),
                           ("sqlite", SQLiteStorage(":memory:"))):
        table = backend.create("s", schema, RetentionPolicy("count", 500))
        batch = _elements(elements, payload_bytes)
        started = time.perf_counter()
        for element in batch:
            table.append(element)
        elapsed = (time.perf_counter() - started) * 1000.0
        variants[label] = elapsed / elements
        backend.close()
    return AblationResult("storage_backend(ms/append)", variants)


def ablate_window_type(elements: int = 20_000) -> AblationResult:
    """Maintenance cost: time window vs count window of similar extent."""
    batch = _elements(elements, 16)
    variants: Dict[str, float] = {}

    count_window = CountWindow(1_000)
    started = time.perf_counter()
    for element in batch:
        count_window.append(element)
        count_window.contents()
    variants["count"] = (time.perf_counter() - started) * 1000.0 / elements

    time_window = TimeWindow(10_000)  # ~1000 elements at 10 ms spacing
    started = time.perf_counter()
    for element in batch:
        time_window.append(element)
        time_window.contents()
    variants["time"] = (time.perf_counter() - started) * 1000.0 / elements

    return AblationResult("window_type(ms/element)", variants)


def ablate_plan_cache(queries: int = 2_000,
                      distinct_queries: int = 20) -> AblationResult:
    """Compilation cost (parse + plan) with and without the LRU cache.

    Execution cost is identical either way, so the ablation isolates what
    the cache actually changes: repeated compilation of the standing
    queries the repository re-evaluates on every arrival.
    """
    clock = VirtualClock(1_000_000)
    generator = QueryWorkloadGenerator("s", clock.now, seed=3)
    texts = [generator.next_query() for __ in range(distinct_queries)]
    workload = [texts[i % distinct_queries] for i in range(queries)]

    variants: Dict[str, float] = {}
    for label, capacity in (("cache_on", 512), ("cache_off", 0)):
        cache = PlanCache(capacity)
        started = time.perf_counter()
        for sql in workload:
            cache.compile(sql)
        variants[label] = ((time.perf_counter() - started) * 1000.0
                           / queries)
    return AblationResult("plan_cache(ms/compile)", variants)


def ablate_pool_size(elements: int = 300) -> AblationResult:
    """Pipeline throughput: synchronous pool vs threaded pools.

    With the GIL and a CPU-bound pipeline, threads mostly add queueing
    overhead — which is itself a finding worth printing, and why the
    simulator defaults to synchronous pools.
    """
    from repro.vsensor.pool import WorkerPool

    def task() -> None:
        total = 0
        for i in range(2_000):
            total += i * i
        del total

    variants: Dict[str, float] = {}
    for label, (size, synchronous) in (
        ("sync", (1, True)),
        ("threads_1", (1, False)),
        ("threads_4", (4, False)),
    ):
        pool = WorkerPool(size, synchronous=synchronous)
        started = time.perf_counter()
        for __ in range(elements):
            pool.submit(task)
        pool.drain()
        variants[label] = ((time.perf_counter() - started) * 1000.0
                           / elements)
        pool.shutdown()
    return AblationResult("pool_size(ms/task)", variants)


def ablate_sql_backend(rows: int = 2_000) -> AblationResult:
    """The scratch SQL engine vs SQLite on the same window query."""
    schema = _payload_schema()
    sql = ("select device_id, count(*) as n from s "
           "where device_id < 8 group by device_id order by device_id")

    sqlite = SQLiteStorage(":memory:")
    table = sqlite.create("s", schema, RetentionPolicy("all"))
    batch = _elements(rows, 64)
    for element in batch:
        table.append(element)

    relation = table.relation()
    catalog = Catalog({"s": relation})

    variants: Dict[str, float] = {}
    started = time.perf_counter()
    for __ in range(20):
        execute(sql, catalog)
    variants["scratch_engine"] = (time.perf_counter() - started) * 1000.0 / 20

    started = time.perf_counter()
    for __ in range(20):
        sqlite.execute_sql(sql)
    variants["sqlite"] = (time.perf_counter() - started) * 1000.0 / 20
    sqlite.close()
    return AblationResult("sql_backend(ms/query)", variants)


def ablate_transport_latency(
        latencies=(0, 50, 200), duration_ms: int = 5_000) -> AblationResult:
    """Observed element age at a remote consumer vs injected link latency.

    The paper insists that "network and processing delays are inherent
    properties of the observation process which cannot be made
    transparent by abstraction" — so the measured age (arrival time
    minus element timestamp) must track the configured link latency
    1:1, not be hidden by the middleware.
    """
    from repro.container import GSNContainer
    from repro.gsntime.scheduler import EventScheduler
    from repro.network.peer import PeerNetwork
    from repro.simulation.networks import mote_descriptor

    variants: Dict[str, float] = {}
    for latency in latencies:
        clock = VirtualClock()
        scheduler = EventScheduler(clock)
        network = PeerNetwork(scheduler=scheduler, latency_ms=latency)
        producer = GSNContainer("prod", network=network, clock=clock,
                                scheduler=scheduler)
        consumer = GSNContainer("cons", network=network, clock=clock,
                                scheduler=scheduler)
        ages: List[int] = []
        try:
            producer.deploy(mote_descriptor("origin", 1, interval_ms=500))
            schema, cancel = consumer.peer.subscribe(
                {"name": "origin"},
                lambda element: ages.append(
                    clock.now() - (element.timed or 0)),
            )
            scheduler.run_for(duration_ms)
            cancel()
        finally:
            consumer.shutdown()
            producer.shutdown()
        variants[f"latency_{latency}ms"] = (
            sum(ages) / len(ages) if ages else float("nan")
        )
    return AblationResult("transport_latency(observed age ms)", variants)


ALL_ABLATIONS = (
    ablate_storage_backend,
    ablate_window_type,
    ablate_plan_cache,
    ablate_pool_size,
    ablate_sql_backend,
    ablate_transport_latency,
)


def run_all() -> List[AblationResult]:
    return [ablation() for ablation in ALL_ABLATIONS]


def main() -> List[AblationResult]:
    from repro.metrics.report import format_table

    results = run_all()
    rows = [row for result in results for row in result.table_rows()]
    print("Ablation results (lower is better)")
    print(format_table(("ablation", "variant", "value"), rows))
    return results
