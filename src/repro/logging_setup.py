"""Logging conventions of the ``repro`` package.

Every component logs through a child of the ``repro`` logger —
``repro.container``, ``repro.vsensor``, ``repro.wrappers``,
``repro.network``, ``repro.storage`` — so deployments can tune
subsystems individually with the standard :mod:`logging` machinery.

As a library, ``repro`` stays silent by default (a ``NullHandler`` on
the root of the hierarchy). ``GSNContainer(log_level=...)`` or a direct
call to :func:`configure_logging` turns output on for quick starts;
applications with their own logging config need neither.
"""

from __future__ import annotations

import logging
from typing import Union

ROOT_LOGGER_NAME = "repro"

logging.getLogger(ROOT_LOGGER_NAME).addHandler(logging.NullHandler())

#: Marker on the stderr handler configure_logging() attaches, so
#: repeated calls adjust the level instead of stacking handlers.
_HANDLER_FLAG = "_repro_default_handler"

_FORMAT = "%(asctime)s %(levelname)-7s %(name)s: %(message)s"


def configure_logging(level: Union[int, str] = "INFO") -> logging.Logger:
    """Set the ``repro`` hierarchy's level; attach a stderr handler once.

    Idempotent: calling again only adjusts the level. Returns the root
    ``repro`` logger.
    """
    root = logging.getLogger(ROOT_LOGGER_NAME)
    root.setLevel(level)
    for handler in root.handlers:
        if getattr(handler, _HANDLER_FLAG, False):
            return root
    handler = logging.StreamHandler()
    handler.setFormatter(logging.Formatter(_FORMAT))
    setattr(handler, _HANDLER_FLAG, True)
    root.addHandler(handler)
    return root
