"""Stream trace recording and CSV export/import.

The record→replay cycle is how field deployments are debugged on a desk:

1. attach a :class:`TraceRecorder` to a live virtual sensor (or export
   its retained output stream with :func:`export_stream_csv`);
2. ship the CSV;
3. feed it back through the ``replay`` wrapper, which preserves the
   original timing.

Binary fields are hex-encoded with a ``0x`` prefix so camera traces
survive the text format.
"""

from __future__ import annotations

import csv
from typing import Any, Dict, List

from repro.concurrency import new_lock
from repro.container import GSNContainer
from repro.exceptions import GSNError
from repro.streams.element import StreamElement


def _encode(value: Any) -> Any:
    if isinstance(value, (bytes, bytearray)):
        return "0x" + bytes(value).hex()
    return value


def _decode(value: str) -> Any:
    if value == "":
        return None
    if value.startswith("0x"):
        try:
            return bytes.fromhex(value[2:])
        except ValueError:
            return value
    for converter in (int, float):
        try:
            return converter(value)
        except ValueError:
            continue
    return value


class TraceRecorder:
    """Records a virtual sensor's output elements as they are produced."""

    def __init__(self, container: GSNContainer, sensor_name: str) -> None:
        self.sensor_name = sensor_name
        # Elements arrive on the sensor's emitting thread while the
        # owner reads/saves from its own; the lock keeps the row list
        # consistent without pausing the sensor.
        self._lock = new_lock("TraceRecorder._lock")
        self.rows: List[Dict[str, Any]] = []  # guarded-by: TraceRecorder._lock
        self._sensor = container.sensor(sensor_name)
        self._sensor.add_listener(self._on_element)
        self._recording = True

    def _on_element(self, element: StreamElement) -> None:
        row = dict(element.values)
        row["timed"] = element.timed
        with self._lock:
            if not self._recording:
                return
            self.rows.append(row)

    def stop(self) -> None:
        with self._lock:
            self._recording = False
        self._sensor.remove_listener(self._on_element)

    def __len__(self) -> int:
        with self._lock:
            return len(self.rows)

    def save_csv(self, path: str) -> int:
        """Write the recorded trace; returns the number of rows."""
        with self._lock:
            rows = list(self.rows)
        return _write_csv(path, rows)


def export_stream_csv(container: GSNContainer, sensor_name: str,
                      path: str) -> int:
    """Export a sensor's *retained* output stream to CSV.

    Unlike :class:`TraceRecorder` this needs no foresight — it dumps
    whatever the storage layer still holds under the sensor's retention
    policy. Returns the number of rows written.
    """
    table = container.output_table(sensor_name)
    relation = container.query(f"select * from {table} order by timed")
    rows = relation.to_dicts()
    if not rows:
        raise GSNError(f"sensor {sensor_name!r} has no retained output")
    return _write_csv(path, rows)


def _write_csv(path: str, rows: List[Dict[str, Any]]) -> int:
    if not rows:
        raise GSNError("nothing to write")
    field_names = list(rows[0].keys())
    if "timed" in field_names:
        field_names.remove("timed")
    field_names.append("timed")
    with open(path, "w", newline="") as handle:
        writer = csv.DictWriter(handle, fieldnames=field_names)
        writer.writeheader()
        for row in rows:
            writer.writerow({key: _encode(row.get(key))
                             for key in field_names})
    return len(rows)


def load_trace_csv(path: str) -> List[Dict[str, Any]]:
    """Read a trace CSV back into rows suitable for
    :meth:`repro.wrappers.replay.ReplayWrapper.load_rows`."""
    with open(path, newline="") as handle:
        reader = csv.DictReader(handle)
        rows = [
            {key: _decode(value) for key, value in row.items()}
            for row in reader
        ]
    if not rows:
        raise GSNError(f"trace {path!r} is empty")
    return rows
