"""Operational tooling around the middleware: trace recording/export
(pairing with the ``replay`` wrapper to reproduce field deployments) and
the static HTML dashboard renderer."""

from repro.tools.dashboard import render_dashboard, write_dashboard
from repro.tools.trace import TraceRecorder, export_stream_csv, load_trace_csv

__all__ = [
    "TraceRecorder",
    "export_stream_csv",
    "load_trace_csv",
    "render_dashboard",
    "write_dashboard",
]
