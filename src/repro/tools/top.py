"""``gsn-top``: a terminal view of one container's live vitals.

Polls a running :class:`~repro.interfaces.http_server.GSNHttpServer`
(``/healthz``, ``/monitor``, ``/profile``) and renders health, SLO burn,
per-sensor throughput/latency, and the hottest profiler stacks — the
operator's glanceable answer to "is this container fine and where is
its time going".

Rendering is a pure function of the fetched snapshot
(:func:`render`), so the screen layout is unit-testable without a
server; the fetch layer is stdlib ``urllib`` only.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
import urllib.error
import urllib.request
from typing import Any, Dict, List, Optional

#: ANSI "clear screen + home" used between live refreshes.
CLEAR = "\x1b[2J\x1b[H"

_STATUS_MARKS = {"ok": "+", "degraded": "!", "failed": "x"}


def fetch_snapshot(url: str, timeout: float = 5.0) -> Dict[str, Any]:
    """One poll: healthz + monitor JSON and the collapsed profile text.

    A 503 from ``/healthz`` is a *valid* answer (a degraded container),
    not a fetch failure — its body still carries the health report.
    """
    base = url.rstrip("/")
    try:
        with urllib.request.urlopen(f"{base}/healthz",
                                    timeout=timeout) as response:
            healthz = json.load(response)
    except urllib.error.HTTPError as exc:
        healthz = json.load(exc)
    with urllib.request.urlopen(f"{base}/monitor",
                                timeout=timeout) as response:
        monitor = json.load(response)["monitor"]
    with urllib.request.urlopen(f"{base}/profile",
                                timeout=timeout) as response:
        profile = response.read().decode("utf-8")
    return {"healthz": healthz, "monitor": monitor, "profile": profile}


def _health_lines(healthz: Dict[str, Any]) -> List[str]:
    health = healthz.get("health", {})
    verdict = health.get("status", "unknown")
    lines = [f"health: {verdict}"]
    for name, check in sorted(health.get("checks", {}).items()):
        status = check.get("status", "?")
        mark = _STATUS_MARKS.get(status, "?")
        extra = ""
        if status != "ok":
            detail = {k: v for k, v in check.items() if k != "status"}
            extra = f"  {detail}"
        lines.append(f"  [{mark}] {name:<14} {status}{extra}")
    return lines


def _slo_lines(healthz: Dict[str, Any]) -> List[str]:
    slos = healthz.get("health", {}).get("slos", [])
    if not slos:
        return []
    lines = ["slos:"]
    for doc in slos:
        met = "met" if doc.get("met") else "MISSED"
        burn = doc.get("burn_rate", 0.0)
        budget = doc.get("error_budget_remaining", 1.0)
        objective = doc.get("objective_ms", doc.get("objective_per_s"))
        lines.append(
            f"  {doc.get('slo', '?'):<22} {met:<7} "
            f"objective={objective} burn={burn:.2f} budget={budget:.2f}"
        )
    return lines


def _sensor_lines(monitor: Dict[str, Any]) -> List[str]:
    sensors = monitor.get("virtual_sensors", {}).get("sensors", {})
    if not sensors:
        return ["sensors: none deployed"]
    lines = ["sensors:",
             f"  {'name':<18} {'state':<9} {'produced':>8} "
             f"{'p50 ms':>8} {'p95 ms':>8} {'queue':>7}"]
    for name, doc in sorted(sensors.items()):
        state = doc.get("state", "?")
        produced = doc.get("elements_produced", 0)
        latency = doc.get("processing", {}) or {}
        p50 = latency.get("p50_ms")
        p95 = latency.get("p95_ms")
        lifecycle = doc.get("lifecycle", {}) or {}
        depth = lifecycle.get("queue_depth", 0)
        capacity = lifecycle.get("queue_capacity", 0)
        queue = f"{depth}/{capacity}" if capacity else "-"
        lines.append(
            f"  {name:<18} {state:<9} {produced:>8} "
            f"{_fmt(p50):>8} {_fmt(p95):>8} {queue:>7}"
        )
    return lines


def _fmt(value: Optional[float]) -> str:
    return f"{value:.1f}" if isinstance(value, (int, float)) else "-"


def _hot_stack_lines(profile: str, limit: int = 5) -> List[str]:
    rows = []
    for line in profile.splitlines():
        stack, __, count_text = line.rpartition(" ")
        if not stack or not count_text.isdigit():
            continue
        rows.append((int(count_text), stack))
    rows.sort(reverse=True)
    if not rows:
        return ["hot stacks: no samples yet"]
    lines = ["hot stacks:"]
    for count, stack in rows[:limit]:
        frames = stack.split(";")
        # owner;...;leaf — the ends carry the story, the middle rarely.
        shown = frames[0] + ";...;" + frames[-1] if len(frames) > 3 \
            else ";".join(frames)
        lines.append(f"  {count:>6}  {shown}")
    return lines


def render(snapshot: Dict[str, Any]) -> str:
    """The full screen for one snapshot (pure; no I/O)."""
    monitor = snapshot.get("monitor", {})
    healthz = snapshot.get("healthz", {})
    flight = monitor.get("flight", {}) or {}
    profiler = monitor.get("profiler", {}) or {}
    header = (
        f"gsn-top — {monitor.get('name', '?')} "
        f"[{monitor.get('state', '?')}]  t={monitor.get('time', '?')}ms  "
        f"flight={flight.get('recorded', 0)} events "
        f"({flight.get('dumps_taken', 0)} dumps)  "
        f"profiler={'on' if profiler.get('running') else 'off'} "
        f"overhead={profiler.get('overhead_percent', 0)}%"
    )
    sections = [
        [header],
        _health_lines(healthz),
        _slo_lines(healthz),
        _sensor_lines(monitor),
        _hot_stack_lines(snapshot.get("profile", "")),
    ]
    return "\n".join("\n".join(block) for block in sections if block)


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="gsn-top",
        description="Live health/SLO/profiler view of a GSN container.",
    )
    parser.add_argument("--url", default="http://127.0.0.1:8000",
                        help="base URL of the container's HTTP server")
    parser.add_argument("--interval", type=float, default=2.0,
                        help="refresh period in seconds")
    parser.add_argument("--once", action="store_true",
                        help="print one snapshot and exit (no clearing)")
    args = parser.parse_args(argv)

    while True:
        try:
            snapshot = fetch_snapshot(args.url)
        except (OSError, ValueError) as exc:
            print(f"gsn-top: cannot reach {args.url}: {exc}",
                  file=sys.stderr)
            return 1
        if args.once:
            print(render(snapshot))
            return 0
        print(CLEAR + render(snapshot), flush=True)
        time.sleep(args.interval)


if __name__ == "__main__":
    raise SystemExit(main())
