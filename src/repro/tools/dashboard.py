"""Static HTML dashboard.

"During the whole demonstration, the audience are able to monitor the
effective status of all parts of the system ... through a web interface
and various plots" (paper, Section 6). This renders one self-contained
HTML page from a container's status document — no server, no JS
dependencies — suitable for writing to disk on a schedule or serving
from any static host.
"""

from __future__ import annotations

from html import escape
from typing import Any, Dict, List

from repro.container import GSNContainer
from repro.metrics.ascii_plot import plot_series
from repro.metrics.report import Series

_STYLE = """
body { font-family: system-ui, sans-serif; margin: 2rem; color: #1a202c; }
h1 { border-bottom: 2px solid #2b6cb0; padding-bottom: .3rem; }
h2 { color: #2b6cb0; margin-top: 1.6rem; }
table { border-collapse: collapse; margin: .5rem 0; }
th, td { border: 1px solid #cbd5e0; padding: .3rem .7rem; text-align: left;
         font-size: .9rem; }
th { background: #ebf4ff; }
.ok { color: #276749; } .warn { color: #c05621; }
.badge { background: #ebf4ff; border-radius: 4px; padding: 0 .4rem; }
pre.plot { background: #f7fafc; border: 1px solid #cbd5e0; padding: .6rem;
           font-size: .75rem; line-height: 1.1; overflow-x: auto; }
"""


def _table(headers: List[str], rows: List[List[Any]]) -> str:
    head = "".join(f"<th>{escape(str(h))}</th>" for h in headers)
    body = "".join(
        "<tr>" + "".join(f"<td>{escape(str(cell))}</td>" for cell in row)
        + "</tr>"
        for row in rows
    )
    return f"<table><tr>{head}</tr>{body}</table>"


def render_dashboard(container: GSNContainer) -> str:
    """One self-contained HTML page of the container's live status."""
    status = container.status()
    sensors: Dict[str, Any] = status["virtual_sensors"]["sensors"]

    sensor_rows = []
    for name, doc in sorted(sensors.items()):
        processing = doc["processing"]
        incremental = doc.get("incremental", {})
        counters = incremental.get("counters", {})
        fast_hits = (counters.get("identity_hits", 0)
                     + counters.get("aggregate_hits", 0))
        sensor_rows.append([
            name,
            doc["lifecycle"]["state"],
            doc["elements_produced"],
            f"{processing['mean_ms']:.3f}",
            f"{processing['p95_ms']:.3f}",
            "yes" if doc["permanent_storage"] else "no",
            ("off" if not incremental.get("enabled")
             else f"{fast_hits} fast / {counters.get('legacy_queries', 0)}"
                  f" legacy"),
            counters.get("cache_hits", 0),
        ])

    stream_rows = []
    for name, doc in sorted(sensors.items()):
        for stream_name, stream in doc["input_streams"].items():
            for source in stream["sources"]:
                quality = source["quality"]
                stream_rows.append([
                    f"{name}/{stream_name}/{source['alias']}",
                    source["wrapper"],
                    source["window"],
                    source["admitted"],
                    "up" if source["connected"] else "DOWN",
                    quality["missing_value_count"],
                    quality["late_count"],
                    quality["out_of_order_count"],
                ])

    subscription_rows = [
        [s["name"], s["client"], s["channel"],
         ", ".join(s["tables"]), s["notifications_sent"]]
        for s in status["subscriptions"]["subscriptions"]
    ]

    queries = status["queries"]
    sections = [
        f"<h1>GSN node <span class='badge'>{escape(status['name'])}</span>"
        f"</h1>",
        f"<p>container time: {status['time']} ms"
        f" · mode: {'simulated' if status['simulated'] else 'wall clock'}"
        f" · queries executed: {queries['queries_executed']}"
        f" · plan-cache hit ratio: "
        f"{queries['plan_cache']['hit_ratio']:.2%}</p>",
        "<h2>Virtual sensors</h2>",
        _table(["sensor", "state", "produced", "mean ms", "p95 ms",
                "persistent", "incremental", "cache reuse"],
               sensor_rows) if sensor_rows
        else "<p>none deployed</p>",
        "<h2>Stream sources</h2>",
        _table(["source", "wrapper", "window", "admitted", "link",
                "missing", "late", "out-of-order"], stream_rows)
        if stream_rows else "<p>none</p>",
        "<h2>Subscriptions</h2>",
        _table(["name", "client", "channel", "tables", "notified"],
               subscription_rows) if subscription_rows
        else "<p>none registered</p>",
    ]

    sections.extend(_observability_sections(container))

    if status["peer"] is not None:
        peer = status["peer"]
        sections.append("<h2>Peer network</h2>")
        sections.append(_table(
            ["serving", "listening", "forwarded", "received", "seal"],
            [[peer["serving"], peer["listening"],
              peer["elements_forwarded"], peer["elements_received"],
              peer["seal"]]],
        ))

    return (
        "<!DOCTYPE html><html><head><meta charset='utf-8'>"
        f"<title>GSN · {escape(status['name'])}</title>"
        f"<style>{_STYLE}</style></head><body>"
        + "".join(sections)
        + "</body></html>"
    )


def _observability_sections(container: GSNContainer) -> List[str]:
    """Latency/throughput panel fed by the metrics registry and the
    trace ring buffer (empty lists degrade to 'no data' gracefully)."""
    sections = ["<h2>Pipeline latency</h2>"]

    stage_rows: List[List[Any]] = []
    for family in container.metrics.collect():
        if family.name != "gsn_pipeline_step_latency_ms":
            continue
        for labels, snapshot in family.samples:
            if snapshot.count == 0:
                continue
            stage_rows.append([
                labels.get("sensor", "?"), labels.get("step", "?"),
                snapshot.count, f"{snapshot.mean:.3f}",
            ])
    stage_rows.sort(key=lambda row: (row[0], row[1]))
    sections.append(
        _table(["sensor", "step", "observations", "mean ms"], stage_rows)
        if stage_rows else "<p>no traced triggers yet</p>"
    )

    roots = [span for span in container.traces.recent()
             if span.name == "trigger" and span.duration_ms is not None]
    if roots:
        series = Series("trigger ms")
        for span in sorted(roots, key=lambda s: s.started_at):
            series.add(float(span.started_at), span.duration_ms)
        chart = plot_series([series], x_label="container time (ms)",
                            y_label="latency (ms)")
        sections.append(f"<pre class='plot'>{escape(chart)}</pre>")
    return sections


def write_dashboard(container: GSNContainer, path: str) -> None:
    """Render and write the dashboard page to ``path``."""
    with open(path, "w") as handle:
        handle.write(render_dashboard(container))
