"""Access control and data integrity layers.

"The access control layer ensures that access is provided only to
entitled parties, and the data integrity layer guarantees data integrity
and confidentiality through electronic signatures and encryption (this
can be defined at different levels, for example, for the whole GSN
container or for an individual virtual sensor)." (paper, Section 4)
"""

from repro.access.control import AccessController, Permission, Principal
from repro.access.integrity import IntegrityService, SealedEnvelope

__all__ = [
    "AccessController",
    "Principal",
    "Permission",
    "IntegrityService",
    "SealedEnvelope",
]
