"""Data integrity and confidentiality.

Implements the paper's "electronic signatures and encryption" for stream
payloads exchanged between containers: HMAC-SHA256 signatures over a
canonical serialization, plus a keystream cipher for confidentiality.

The cipher is a SHA256-counter keystream — *not* a vetted AEAD
construction, but the honest standard-library stand-in for the TLS/crypto
toolkit a production deployment would use; the seal/unseal API is what the
middleware layers against.
"""

from __future__ import annotations

import hashlib
import hmac
import json
import secrets
from dataclasses import dataclass
from typing import Any, Dict, Optional

from repro.concurrency import new_lock
from repro.exceptions import IntegrityError
from repro.status import UptimeTracker, status_doc


def _canonical(payload: Dict[str, Any]) -> bytes:
    """Deterministic serialization (bytes become hex-tagged strings)."""
    def encode(value: Any) -> Any:
        if isinstance(value, (bytes, bytearray)):
            return {"__bytes__": bytes(value).hex()}
        if isinstance(value, dict):
            return {k: encode(v) for k, v in value.items()}
        if isinstance(value, (list, tuple)):
            return [encode(v) for v in value]
        return value

    return json.dumps(encode(payload), sort_keys=True,
                      separators=(",", ":")).encode("utf-8")


def _decode(value: Any) -> Any:
    if isinstance(value, dict):
        if set(value) == {"__bytes__"}:
            return bytes.fromhex(value["__bytes__"])
        return {k: _decode(v) for k, v in value.items()}
    if isinstance(value, list):
        return [_decode(v) for v in value]
    return value


def _keystream(key: bytes, nonce: bytes, length: int) -> bytes:
    blocks = []
    counter = 0
    while sum(len(b) for b in blocks) < length:
        blocks.append(hashlib.sha256(
            key + nonce + counter.to_bytes(8, "big")
        ).digest())
        counter += 1
    return b"".join(blocks)[:length]


@dataclass(frozen=True)
class SealedEnvelope:
    """A signed (and optionally encrypted) payload in transit."""

    body: bytes
    signature: str
    nonce: str
    encrypted: bool
    sender: str


class IntegrityService:
    """Seals and opens payloads for one container.

    Containers sharing a ``shared_secret`` (deployment configuration) can
    verify each other's envelopes. Sealing levels: ``sign`` (integrity
    only) or ``encrypt`` (integrity + confidentiality).
    """

    def __init__(self, container_name: str,
                 shared_secret: Optional[bytes] = None) -> None:
        self.container_name = container_name
        self._secret = shared_secret or b"gsn-demo-secret"
        # Seal/open run on whatever thread carries the message (peer
        # delivery, HTTP handlers), so the audit counters need a lock.
        self._lock = new_lock("IntegrityService._lock")
        self.sealed = 0  # guarded-by: IntegrityService._lock
        self.opened = 0  # guarded-by: IntegrityService._lock
        self.rejected = 0  # guarded-by: IntegrityService._lock
        self._uptime = UptimeTracker()

    def seal(self, payload: Dict[str, Any],
             encrypt: bool = False) -> SealedEnvelope:
        body = _canonical(payload)
        nonce = secrets.token_bytes(16)
        if encrypt:
            stream = _keystream(self._secret, nonce, len(body))
            body = bytes(b ^ s for b, s in zip(body, stream))
        signature = hmac.new(self._secret, nonce + body,
                             hashlib.sha256).hexdigest()
        with self._lock:
            self.sealed += 1
        return SealedEnvelope(
            body=body,
            signature=signature,
            nonce=nonce.hex(),
            encrypted=encrypt,
            sender=self.container_name,
        )

    def open(self, envelope: SealedEnvelope) -> Dict[str, Any]:
        """Verify and decode an envelope; raises :class:`IntegrityError`
        on any tampering or key mismatch."""
        nonce = bytes.fromhex(envelope.nonce)
        expected = hmac.new(self._secret, nonce + envelope.body,
                            hashlib.sha256).hexdigest()
        if not hmac.compare_digest(expected, envelope.signature):
            with self._lock:
                self.rejected += 1
            raise IntegrityError(
                f"signature verification failed for envelope from "
                f"{envelope.sender!r}"
            )
        body = envelope.body
        if envelope.encrypted:
            stream = _keystream(self._secret, nonce, len(body))
            body = bytes(b ^ s for b, s in zip(body, stream))
        try:
            decoded = json.loads(body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            with self._lock:
                self.rejected += 1
            raise IntegrityError(f"envelope body corrupt: {exc}") from exc
        with self._lock:
            self.opened += 1
        return _decode(decoded)

    def status(self) -> dict:
        with self._lock:
            sealed, opened, rejected = self.sealed, self.opened, self.rejected
        return status_doc(
            "integrity", "running",
            counters={"sealed": sealed, "opened": opened,
                      "rejected": rejected},
            uptime_ms=self._uptime.uptime_ms(),
            sealed=sealed,
            opened=opened,
            rejected=rejected,
        )
