"""Access control.

A small capability model: principals hold API keys and are granted
permissions either container-wide or per virtual sensor (matching the
paper's "different levels"). Open containers (the default, as in the
demo) run with access control disabled.
"""

from __future__ import annotations

import enum
import hashlib
import hmac
import secrets
from dataclasses import dataclass, field
from typing import Dict, Optional, Set, Tuple

from repro.exceptions import AccessDeniedError
from repro.status import UptimeTracker, status_doc

#: Grant scope meaning "the whole container".
CONTAINER_SCOPE = "*"


class Permission(enum.Enum):
    READ = "read"          # query streams, receive notifications
    DEPLOY = "deploy"      # deploy/undeploy/reconfigure virtual sensors
    MANAGE = "manage"      # channels, principals, container settings


@dataclass
class Principal:
    """An authenticated party (a user, a peer container, a dashboard)."""

    name: str
    key_hash: str
    grants: Dict[str, Set[Permission]] = field(default_factory=dict)

    def grant(self, permission: Permission,
              scope: str = CONTAINER_SCOPE) -> None:
        self.grants.setdefault(scope.lower(), set()).add(permission)

    def revoke(self, permission: Permission,
               scope: str = CONTAINER_SCOPE) -> None:
        self.grants.get(scope.lower(), set()).discard(permission)

    def allows(self, permission: Permission, scope: str) -> bool:
        if permission in self.grants.get(CONTAINER_SCOPE, set()):
            return True
        return permission in self.grants.get(scope.lower(), set())


def _hash_key(api_key: str) -> str:
    return hashlib.sha256(api_key.encode("utf-8")).hexdigest()


class AccessController:
    """Authentication + authorization for one container.

    Disabled by default (``enabled=False``): every check passes, matching
    the open setup of the paper's demo. Enabling it makes every check
    require an API key issued by :meth:`create_principal`.
    """

    def __init__(self, enabled: bool = False) -> None:
        self.enabled = enabled
        self._principals: Dict[str, Principal] = {}
        self.checks_passed = 0
        self.checks_denied = 0
        self._uptime = UptimeTracker()

    # -- principal management -------------------------------------------------

    def create_principal(self, name: str,
                         api_key: Optional[str] = None) -> Tuple[Principal, str]:
        """Create a principal; returns it plus the (only copy of the)
        API key."""
        key = api_key if api_key is not None else secrets.token_hex(16)
        normalized = name.strip().lower()
        if not normalized:
            raise AccessDeniedError("principal needs a name")
        if normalized in self._principals:
            raise AccessDeniedError(f"principal {name!r} already exists")
        principal = Principal(normalized, _hash_key(key))
        self._principals[normalized] = principal
        return principal, key

    def drop_principal(self, name: str) -> None:
        if self._principals.pop(name.strip().lower(), None) is None:
            raise AccessDeniedError(f"no principal {name!r}")

    def get_principal(self, name: str) -> Principal:
        try:
            return self._principals[name.strip().lower()]
        except KeyError:
            raise AccessDeniedError(f"no principal {name!r}") from None

    # -- checks ----------------------------------------------------------------

    def authenticate(self, name: str, api_key: str) -> Principal:
        principal = self.get_principal(name)
        if not hmac.compare_digest(principal.key_hash, _hash_key(api_key)):
            self.checks_denied += 1
            raise AccessDeniedError(f"bad credentials for {name!r}")
        return principal

    def check(self, permission: Permission, scope: str = CONTAINER_SCOPE,
              name: str = "", api_key: str = "") -> None:
        """Raise :class:`AccessDeniedError` unless the caller may perform
        ``permission`` on ``scope``. No-op while disabled."""
        if not self.enabled:
            self.checks_passed += 1
            return
        principal = self.authenticate(name, api_key)
        if not principal.allows(permission, scope):
            self.checks_denied += 1
            raise AccessDeniedError(
                f"{name!r} lacks {permission.value!r} on {scope!r}"
            )
        self.checks_passed += 1

    def status(self) -> dict:
        return status_doc(
            "access-control",
            "enabled" if self.enabled else "disabled",
            counters={"checks_passed": self.checks_passed,
                      "checks_denied": self.checks_denied},
            uptime_ms=self._uptime.uptime_ms(),
            enabled=self.enabled,
            principals=sorted(self._principals),
            checks_passed=self.checks_passed,
            checks_denied=self.checks_denied,
        )
