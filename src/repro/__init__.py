"""repro — a pure-Python reproduction of the GSN sensor-network middleware.

Global Sensor Networks (GSN) is the middleware presented in "A Middleware
for Fast and Flexible Sensor Network Deployment" (Aberer, Hauswirth,
Salehi; VLDB 2006). Its central abstraction is the *virtual sensor*: a
declaratively specified stream processor with any number of input streams
and one output stream, deployed from an XML descriptor and queried in SQL.

Quickstart::

    from repro import GSNContainer

    XML = '''
    <virtual-sensor name="avg-temp">
      <output-structure>
        <field name="temperature" type="integer"/>
      </output-structure>
      <storage permanent-storage="true" size="1h"/>
      <input-stream name="input">
        <stream-source alias="src1" storage-size="10s">
          <address wrapper="mote">
            <predicate key="interval" val="500"/>
          </address>
          <query>select avg(temperature) as temperature from wrapper</query>
        </stream-source>
        <query>select * from src1</query>
      </input-stream>
    </virtual-sensor>
    '''

    with GSNContainer("demo") as node:
        node.deploy(XML)
        node.run_for(10_000)                       # 10 simulated seconds
        print(node.query("select * from vs_avg_temp").pretty())

See ``DESIGN.md`` for the system inventory and ``EXPERIMENTS.md`` for the
reproduction of the paper's evaluation figures.
"""

from repro.container import GSNContainer
from repro.datatypes import DataType
from repro.descriptors import (
    AddressSpec,
    InputStreamSpec,
    LifeCycleConfig,
    StorageConfig,
    StreamSourceSpec,
    VirtualSensorDescriptor,
    descriptor_from_file,
    descriptor_from_xml,
    descriptor_to_xml,
    validate_descriptor,
)
from repro.exceptions import GSNError
from repro.interfaces import GSNClient, WebInterface
from repro.network import PeerNetwork
from repro.sqlengine import Relation
from repro.streams import Field, StreamElement, StreamSchema
from repro.wrappers import Wrapper, WrapperRegistry, default_registry

__version__ = "1.0.0"

__all__ = [
    "GSNContainer",
    "GSNClient",
    "WebInterface",
    "PeerNetwork",
    "GSNError",
    "DataType",
    "Field",
    "StreamSchema",
    "StreamElement",
    "Relation",
    "Wrapper",
    "WrapperRegistry",
    "default_registry",
    "VirtualSensorDescriptor",
    "InputStreamSpec",
    "StreamSourceSpec",
    "AddressSpec",
    "LifeCycleConfig",
    "StorageConfig",
    "descriptor_from_xml",
    "descriptor_from_file",
    "descriptor_to_xml",
    "validate_descriptor",
    "__version__",
]
