"""gsn-plan: deploy-time query-plan analysis (rules GSN7xx).

The runtime half of the "adaptive query execution plan" — the planner's
join-strategy choice plus the incremental fast path — discovers its own
limits *by failing*: a per-source query is assumed fast-path-eligible
until its accumulator poisons itself. This pass moves that decision to
deploy time. For every per-source and output query of a descriptor it
builds the logical plan tree and annotates each node with

(a) the inferred schema (:mod:`repro.analysis.schema_infer`),
(b) a cardinality/cost estimate derived from declared window sizes and
    sampling rates, and
(c) a **fast-path eligibility verdict** — eligible, or ineligible with a
    stable reason from the taxonomy shared with
    :mod:`repro.sqlengine.incremental` (so the static verdict and the
    runtime attachment agree by construction).

Rules:

- ``GSN701`` — source query statically ineligible for the incremental
  path (warning; carries the taxonomy reason).
- ``GSN702`` — join without equi-condition (cross product) whose
  estimated cardinality blows past :data:`CROSS_PRODUCT_ROW_LIMIT`.
- ``GSN703`` — ORDER BY without LIMIT over a very large input.
- ``GSN704`` — estimated per-trigger cost exceeds the source's
  sampling-rate budget (the sensor provably can't keep up).
- ``GSN705`` — provably dead predicate (always-false/NULL WHERE,
  contradictory constant comparisons).

The cost model only flags what it can bound: unknown cardinalities
propagate as ``None`` and suppress the threshold rules, mirroring the
schema pass's "prove it or stay silent" posture.
"""

from __future__ import annotations

import logging
import math
import operator
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.descriptors.model import VirtualSensorDescriptor
from repro.exceptions import GSNError, SQLError
from repro.gsntime.duration import parse_window_spec
from repro.sqlengine.ast_nodes import (
    BetweenExpr, BinaryOp, ColumnRef, InExpr, IsNullExpr, LikeExpr,
    Literal, Node, UnaryOp,
)
from repro.sqlengine.executor import _truthy
from repro.sqlengine.explain import expression_to_sql, explain_plan
from repro.sqlengine.incremental import (
    Classified, GroupedAggregateQuery, IdentityQuery, INELIGIBILITY_REASONS,
    REASON_CONSTANT_SOURCE, REASON_DISABLED, REASON_DISTINCT,
    REASON_EXPRESSION_ARGUMENT, REASON_HAVING,
    REASON_JOIN, REASON_LIMIT_OFFSET, REASON_NON_INCREMENTAL_FUNCTION,
    REASON_ORDER_BY, REASON_PROJECTION, REASON_SET_OPERATION,
    REASON_SUBQUERY, REASON_TYPE_RISK,
    REASON_UNKNOWN_COLUMN, REASON_UNKNOWN_SCHEMA, REASON_WHERE,
    classify_join, classify_with_reason,
)
from repro.sqlengine.parser import parse_select
from repro.sqlengine.planner import (
    HashJoinPlan, NestedLoopJoinPlan, Plan, ScanPlan, SelectPlan,
    SubqueryScanPlan, plan_select,
)
from repro.sqlengine.rewriter import WRAPPER_TABLE
from repro.wrappers.registry import WrapperRegistry

from repro.analysis.passes import (
    RemoteResolver, _derive_wrapper_schemas, _source_interval_ms,
    estimate_window_memory,
)
from repro.analysis.rules import Report
from repro.analysis.schema_infer import (
    RelSchema, infer_output_schema, wrapper_relation_schema,
)

logger = logging.getLogger("repro.analysis.planpass")

SourceKey = Tuple[str, str]

#: GSN704 budget: rows the engine is assumed able to touch per second.
COST_BUDGET_ROWS_PER_SECOND = 2_000_000

#: GSN702 threshold: estimated rows out of a non-equi join.
CROSS_PRODUCT_ROW_LIMIT = 250_000

#: GSN703 threshold: sorting more than this without a LIMIT is flagged.
SORT_ROW_LIMIT = 100_000

#: Ineligibility reasons that are *proofs* — the manager may route the
#: source straight to the legacy executor without consulting the runtime
#: classifier. ``unknown-schema`` is excluded: it means the analyzer
#: could not see, not that it proved anything; the runtime (which knows
#: the live schema) keeps the final say there.
PROVEN_INELIGIBILITY_REASONS = INELIGIBILITY_REASONS - {
    REASON_UNKNOWN_SCHEMA,
}

_REASON_DETAILS = {
    REASON_SET_OPERATION: "set operations require full re-evaluation",
    REASON_HAVING: "HAVING filters grouped results",
    REASON_ORDER_BY: "ordered output is not delta-maintained",
    REASON_DISTINCT: "distinctness needs multiset bookkeeping",
    REASON_LIMIT_OFFSET: "LIMIT/OFFSET depends on full ordering",
    REASON_JOIN: "only two-source inner equi-joins are delta-"
                 "maintained; this join shape re-executes per trigger",
    REASON_SUBQUERY: "subqueries are re-executed per trigger",
    REASON_CONSTANT_SOURCE: "no window relation to maintain",
    REASON_WHERE: "the WHERE shape is not row-local over the window",
    REASON_PROJECTION: "only SELECT *, aggregate lists, or grouped "
                       "column/aggregate lists qualify",
    REASON_NON_INCREMENTAL_FUNCTION:
        "aggregate outside count/sum/avg/min/max",
    REASON_EXPRESSION_ARGUMENT:
        "aggregate arguments and GROUP BY keys must be plain columns",
}


@dataclass(frozen=True)
class PlanVerdict:
    """The static fast-path decision for one query."""

    eligible: bool
    reason: Optional[str] = None     # a taxonomy constant when ineligible
    detail: str = ""

    def __post_init__(self) -> None:
        if self.reason is not None \
                and self.reason not in INELIGIBILITY_REASONS:
            raise ValueError(f"unknown ineligibility reason {self.reason!r}")

    @property
    def proven(self) -> bool:
        """Whether an ineligible verdict is a proof (vs. "could not see")."""
        return (not self.eligible
                and self.reason in PROVEN_INELIGIBILITY_REASONS)

    def as_dict(self) -> Dict[str, object]:
        return {"eligible": self.eligible, "reason": self.reason,
                "detail": self.detail}


@dataclass
class NodeAnnotation:
    """Per-plan-node analysis result (cardinality, cost, schema)."""

    rows: Optional[float] = None     # estimated output rows (None=unknown)
    cost: Optional[float] = None     # cumulative rows touched (None=unknown)
    schema: Optional[RelSchema] = None
    sort_rows: Optional[float] = None  # input rows to ORDER BY, if any
    note: str = ""                   # eligibility note on the root node

    def render(self) -> str:
        bits = []
        if self.rows is not None:
            bits.append(f"rows~{_fmt(self.rows)}")
        if self.cost is not None:
            bits.append(f"cost~{_fmt(self.cost)}")
        if self.note:
            bits.append(self.note)
        return f"[{', '.join(bits)}]" if bits else ""


def _fmt(value: float) -> str:
    if abs(value - round(value)) < 1e-9 and abs(value) < 1e15:
        return str(int(round(value)))
    return format(value, ".3g")


class AnnotatedPlan:
    """A logical plan plus the annotation attached to every node."""

    def __init__(self, plan: SelectPlan,
                 annotations: Dict[int, NodeAnnotation]) -> None:
        self.plan = plan
        self._annotations = annotations

    def annotation(self, node: Plan) -> Optional[NodeAnnotation]:
        return self._annotations.get(id(node))

    def annotator(self, node: Plan) -> Optional[str]:
        """The :func:`~repro.sqlengine.explain.explain_plan` hook."""
        annotation = self._annotations.get(id(node))
        return annotation.render() if annotation is not None else None

    def render(self) -> str:
        return explain_plan(self.plan, annotator=self.annotator)


# --------------------------------------------------------------------------
# Cardinality / cost estimation
# --------------------------------------------------------------------------

def annotate_plan(plan: SelectPlan,
                  table_rows: Optional[Dict[str, float]] = None,
                  table_schemas: Optional[Dict[str, RelSchema]] = None,
                  output_schema: Optional[RelSchema] = None
                  ) -> AnnotatedPlan:
    """Annotate every node of ``plan`` with cardinality and cost.

    ``table_rows`` bounds base-table cardinality (window element counts
    at deploy time, live relation sizes for EXPLAIN ANALYZE-style use);
    missing tables propagate as unknown. ``table_schemas`` attaches
    relation schemas to the scans; ``output_schema`` to the root.
    """
    annotations: Dict[int, NodeAnnotation] = {}
    root = _annotate_select(plan, dict(table_rows or {}),
                            dict(table_schemas or {}), annotations)
    if output_schema is not None:
        root.schema = output_schema
    return AnnotatedPlan(plan, annotations)


def _mul(*values: Optional[float]) -> Optional[float]:
    product = 1.0
    for value in values:
        if value is None:
            return None
        product *= value
    return product


def _add(*values: Optional[float]) -> Optional[float]:
    total = 0.0
    for value in values:
        if value is None:
            return None
        total += value
    return total


def _annotate_select(plan: SelectPlan, table_rows: Dict[str, float],
                     table_schemas: Dict[str, RelSchema],
                     annotations: Dict[int, NodeAnnotation]
                     ) -> NodeAnnotation:
    if plan.source is not None:
        source = _annotate_source(plan.source, table_rows, table_schemas,
                                  annotations)
        rows, cost = source.rows, source.cost
    else:
        rows, cost = 1.0, 1.0

    if plan.where is not None:
        cost = _add(cost, rows)
        rows = _mul(rows, _selectivity(plan.where))
    if plan.is_aggregate:
        cost = _add(cost, rows)
        if plan.group_by:
            # Distinct-group estimate without statistics: sqrt(n) groups.
            rows = None if rows is None else max(1.0, math.sqrt(rows))
        else:
            rows = 1.0
    if plan.having is not None:
        rows = _mul(rows, 0.5)
    if plan.distinct:
        cost = _add(cost, rows)

    for __, __, right in plan.set_operations:
        inner = _annotate_select(right, table_rows, table_schemas,
                                 annotations)
        rows = _add(rows, inner.rows)
        cost = _add(cost, inner.cost)

    sort_rows: Optional[float] = None
    if plan.order_by:
        sort_rows = rows
        cost = _add(cost, None if rows is None
                    else rows * math.log2(max(rows, 2.0)))
    if plan.offset is not None and rows is not None:
        rows = max(0.0, rows - plan.offset)
    if plan.limit is not None and rows is not None:
        rows = min(rows, float(plan.limit))

    annotation = NodeAnnotation(rows=rows, cost=cost, sort_rows=sort_rows)
    annotations[id(plan)] = annotation
    return annotation


def _annotate_source(node: Plan, table_rows: Dict[str, float],
                     table_schemas: Dict[str, RelSchema],
                     annotations: Dict[int, NodeAnnotation]
                     ) -> NodeAnnotation:
    if isinstance(node, ScanPlan):
        rows = table_rows.get(node.table)
        if rows is None:
            rows = table_rows.get(node.binding)
        schema = table_schemas.get(node.table)
        if schema is None:
            schema = table_schemas.get(node.binding)
        annotation = NodeAnnotation(rows=rows, cost=rows, schema=schema)
    elif isinstance(node, SubqueryScanPlan):
        inner = _annotate_select(node.plan, table_rows, table_schemas,
                                 annotations)
        annotation = NodeAnnotation(rows=inner.rows, cost=inner.cost,
                                    schema=inner.schema)
    elif isinstance(node, HashJoinPlan):
        left = _annotate_source(node.left, table_rows, table_schemas,
                                annotations)
        right = _annotate_source(node.right, table_rows, table_schemas,
                                 annotations)
        rows = _mul(left.rows, right.rows, 0.1)
        if node.residual is not None:
            rows = _mul(rows, _selectivity(node.residual))
        # Build + probe: each input is touched once beyond its own cost.
        cost = _add(left.cost, right.cost, left.rows, right.rows)
        annotation = NodeAnnotation(rows=rows, cost=cost)
    elif isinstance(node, NestedLoopJoinPlan):
        left = _annotate_source(node.left, table_rows, table_schemas,
                                annotations)
        right = _annotate_source(node.right, table_rows, table_schemas,
                                 annotations)
        pairs = _mul(left.rows, right.rows)
        selectivity = (1.0 if node.condition is None
                       else _selectivity(node.condition))
        rows = _mul(pairs, selectivity)
        cost = _add(left.cost, right.cost, pairs)
        annotation = NodeAnnotation(rows=rows, cost=cost)
    else:
        annotation = NodeAnnotation()
    annotations[id(node)] = annotation
    return annotation


def _selectivity(node: Node) -> float:
    """Textbook predicate selectivity without statistics."""
    if isinstance(node, BinaryOp):
        if node.op == "and":
            return _selectivity(node.left) * _selectivity(node.right)
        if node.op == "or":
            left = _selectivity(node.left)
            right = _selectivity(node.right)
            return min(1.0, left + right - left * right)
        if node.op in ("=", "=="):
            return 0.1
        if node.op in ("<", "<=", ">", ">="):
            return 0.3
        if node.op in ("!=", "<>"):
            return 0.9
        return 0.5
    if isinstance(node, UnaryOp) and node.op == "not":
        return max(0.0, 1.0 - _selectivity(node.operand))
    if isinstance(node, BetweenExpr):
        return 0.7 if node.negated else 0.3
    if isinstance(node, LikeExpr):
        return 0.75 if node.negated else 0.25
    if isinstance(node, IsNullExpr):
        return 0.9 if node.negated else 0.1
    if isinstance(node, InExpr):
        if node.options:
            base = min(1.0, 0.1 * len(node.options))
            return 1.0 - base if node.negated else base
        return 0.5
    return 0.5


# --------------------------------------------------------------------------
# Constant folding (GSN705)
# --------------------------------------------------------------------------

_UNDECIDED = object()

_COMPARE = {
    "=": operator.eq, "==": operator.eq,
    "!=": operator.ne, "<>": operator.ne,
    "<": operator.lt, "<=": operator.le,
    ">": operator.gt, ">=": operator.ge,
}


def _is_number(value: object) -> bool:
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def _comparable_values(left: object, right: object) -> bool:
    if _is_number(left) and _is_number(right):
        return True
    return type(left) is type(right)


def fold_constant(node: Node) -> object:
    """Evaluate an expression over literals; :data:`_UNDECIDED` when the
    value depends on row data (or on semantics this folder won't model).
    ``None`` models SQL NULL with Kleene three-valued and/or."""
    if isinstance(node, Literal):
        return node.value
    if isinstance(node, UnaryOp):
        value = fold_constant(node.operand)
        if value is _UNDECIDED:
            return _UNDECIDED
        if node.op == "not":
            return None if value is None else not _truthy(value)
        if value is None:
            return None
        if not _is_number(value):
            return _UNDECIDED
        return -value if node.op == "-" else value
    if isinstance(node, BinaryOp):
        return _fold_binary(node)
    if isinstance(node, BetweenExpr):
        operand = fold_constant(node.operand)
        low = fold_constant(node.low)
        high = fold_constant(node.high)
        if _UNDECIDED in (operand, low, high):
            return _UNDECIDED
        if operand is None or low is None or high is None:
            return None
        if not (_comparable_values(operand, low)
                and _comparable_values(operand, high)):
            return _UNDECIDED
        try:
            inside = low <= operand <= high
        except TypeError:
            return _UNDECIDED
        return not inside if node.negated else inside
    if isinstance(node, InExpr) and node.subquery is None:
        operand = fold_constant(node.operand)
        options = [fold_constant(option) for option in node.options or ()]
        if operand is _UNDECIDED or _UNDECIDED in options:
            return _UNDECIDED
        if operand is None:
            return None
        hit = any(option is not None
                  and _comparable_values(operand, option)
                  and operand == option
                  for option in options)
        if hit:
            return not node.negated
        if any(option is None for option in options):
            return None
        return node.negated
    if isinstance(node, IsNullExpr):
        value = fold_constant(node.operand)
        if value is _UNDECIDED:
            return _UNDECIDED
        result = value is None
        return not result if node.negated else result
    return _UNDECIDED


def _fold_binary(node: BinaryOp) -> object:
    op = node.op
    if op in ("and", "or"):
        left = _tri(fold_constant(node.left))
        right = _tri(fold_constant(node.right))
        if op == "and":
            if left is False or right is False:
                return False
            if left is _UNDECIDED or right is _UNDECIDED:
                return _UNDECIDED
            return None if (left is None or right is None) else True
        if left is True or right is True:
            return True
        if left is _UNDECIDED or right is _UNDECIDED:
            return _UNDECIDED
        return None if (left is None or right is None) else False

    left = fold_constant(node.left)
    right = fold_constant(node.right)
    if left is _UNDECIDED or right is _UNDECIDED:
        return _UNDECIDED
    if left is None or right is None:
        return None
    if op in _COMPARE:
        if not _comparable_values(left, right):
            return _UNDECIDED
        try:
            return _COMPARE[op](left, right)
        except TypeError:
            return _UNDECIDED
    if op in ("+", "-", "*", "/", "%"):
        if not (_is_number(left) and _is_number(right)):
            return _UNDECIDED
        try:
            if op == "+":
                return left + right
            if op == "-":
                return left - right
            if op == "*":
                return left * right
            if op == "/":
                return left / right
            return left % right
        except (ZeroDivisionError, TypeError, ValueError):
            return _UNDECIDED
    return _UNDECIDED


def _tri(value: object) -> object:
    """Collapse a folded value to Kleene True/False/None (or undecided)."""
    if value is _UNDECIDED or value is None:
        return value
    return _truthy(value)


def dead_predicate(where: Optional[Node]) -> Optional[str]:
    """A message when ``where`` provably rejects every row, else None."""
    if where is None:
        return None
    value = fold_constant(where)
    if value is not _UNDECIDED:
        if value is None:
            return "WHERE folds to NULL; no row ever passes"
        if not _truthy(value):
            return f"WHERE folds to the constant {value!r}"
        return None
    return _contradictory_ranges(where)


def _conjuncts(node: Node) -> List[Node]:
    if isinstance(node, BinaryOp) and node.op == "and":
        return _conjuncts(node.left) + _conjuncts(node.right)
    return [node]


_FLIP = {"<": ">", "<=": ">=", ">": "<", ">=": "<=", "=": "=", "==": "=="}


def _contradictory_ranges(where: Node) -> Optional[str]:
    """Detect per-column interval contradictions among numeric constant
    conjuncts (``x > 5 and x < 3``, ``x between 9 and 2``, ...)."""
    # column key -> [lower, lower_strict, upper, upper_strict]
    bounds: Dict[Tuple[Optional[str], str], List[object]] = {}

    def tighten(ref: ColumnRef, op: str, value: float) -> None:
        entry = bounds.setdefault((ref.table, ref.name),
                                  [None, False, None, False])
        if op in ("=", "=="):
            tighten(ref, ">=", value)
            tighten(ref, "<=", value)
            return
        if op in (">", ">="):
            strict = op == ">"
            if entry[0] is None or value > entry[0] \
                    or (value == entry[0] and strict):
                entry[0], entry[1] = value, strict
        else:
            strict = op == "<"
            if entry[2] is None or value < entry[2] \
                    or (value == entry[2] and strict):
                entry[2], entry[3] = value, strict

    for conjunct in _conjuncts(where):
        if isinstance(conjunct, BinaryOp) and conjunct.op in _FLIP:
            left, right, op = conjunct.left, conjunct.right, conjunct.op
            if isinstance(left, ColumnRef) and isinstance(right, Literal) \
                    and _is_number(right.value):
                tighten(left, op, right.value)
            elif isinstance(right, ColumnRef) and isinstance(left, Literal) \
                    and _is_number(left.value):
                tighten(right, _FLIP[op], left.value)
        elif isinstance(conjunct, BetweenExpr) and not conjunct.negated \
                and isinstance(conjunct.operand, ColumnRef) \
                and isinstance(conjunct.low, Literal) \
                and isinstance(conjunct.high, Literal) \
                and _is_number(conjunct.low.value) \
                and _is_number(conjunct.high.value):
            if conjunct.low.value > conjunct.high.value:
                return (f"BETWEEN {_fmt(conjunct.low.value)} AND "
                        f"{_fmt(conjunct.high.value)} is empty")
            tighten(conjunct.operand, ">=", conjunct.low.value)
            tighten(conjunct.operand, "<=", conjunct.high.value)

    for (table, name), (low, low_strict, high, high_strict) in \
            bounds.items():
        if low is None or high is None:
            continue
        if low > high or (low == high and (low_strict or high_strict)):
            column = f"{table}.{name}" if table else name
            return (f"contradictory constraints on {column!r}: "
                    f"requires {'>' if low_strict else '>='} {_fmt(low)} "
                    f"and {'<' if high_strict else '<='} {_fmt(high)}")
    return None


def _division_risk(node: Node) -> bool:
    """Whether evaluating ``node`` may divide by zero (which would poison
    a running accumulator mid-stream)."""
    for sub in node.walk():
        if isinstance(sub, BinaryOp) and sub.op in ("/", "%"):
            divisor = sub.right
            if not (isinstance(divisor, Literal)
                    and _is_number(divisor.value)
                    and divisor.value != 0):
                return True
    return False


# --------------------------------------------------------------------------
# Fast-path verdicts
# --------------------------------------------------------------------------

def structural_verdict(plan: SelectPlan) -> PlanVerdict:
    """The window- and schema-agnostic half of the verdict: is the query
    *shape* incrementally maintainable at all?"""
    classified, reason = classify_with_reason(plan)
    if classified is None:
        assert reason is not None
        if reason == REASON_JOIN and classify_join(plan) is not None:
            return PlanVerdict(True, None,
                               "delta-maintained two-source equi-join")
        return PlanVerdict(False, reason, _REASON_DETAILS.get(reason, ""))
    return PlanVerdict(True, None, _eligible_detail(classified))


def _eligible_detail(classified: Classified) -> str:
    if isinstance(classified, IdentityQuery):
        return "identity: the window relation is the answer"
    if isinstance(classified, GroupedAggregateQuery):
        return (f"grouped: {len(classified.items)} running "
                f"accumulator(s) per group")
    return f"{len(classified.items)} running accumulator(s)"


def source_query_verdict(plan: SelectPlan, window_kind: str,
                         wrapper_schema: Optional[RelSchema],
                         incremental_enabled: bool = True) -> PlanVerdict:
    """The full deploy-time verdict for one per-source query.

    Mirrors :meth:`VirtualSensor._attach_fast_path` exactly: identity
    queries attach over any window; running accumulators (flat or
    grouped) ride the window observer protocol, which both count and
    time windows publish, and need every referenced column present in
    the materialized relation; on top of that, anything the accumulator
    could *poison* on (type mismatches, division by a data-dependent
    divisor) is rejected as ``type-risk`` so that an eligible verdict
    is a no-poison proof.
    """
    if not incremental_enabled:
        return PlanVerdict(False, REASON_DISABLED,
                           "the incremental pipeline is disabled for "
                           "this sensor")
    classified, reason = classify_with_reason(plan)
    if classified is None:
        assert reason is not None
        return PlanVerdict(False, reason, _REASON_DETAILS.get(reason, ""))
    if isinstance(classified, IdentityQuery):
        return PlanVerdict(True, None,
                           "identity: the window relation is the answer")
    if wrapper_schema is None:
        return PlanVerdict(False, REASON_UNKNOWN_SCHEMA,
                           "wrapper schema not statically derivable; "
                           "the runtime decides at attach time")
    missing = sorted(name for name in classified.referenced
                     if name not in wrapper_schema)
    if missing:
        return PlanVerdict(False, REASON_UNKNOWN_COLUMN,
                           f"column(s) {', '.join(missing)} not in the "
                           f"wrapper relation")
    scratch = Report()
    infer_output_schema(plan.statement, {WRAPPER_TABLE: wrapper_schema},
                        scratch, "", "")
    for finding in scratch.errors:
        if finding.rule_id in ("GSN101", "GSN102"):
            return PlanVerdict(False, REASON_UNKNOWN_COLUMN,
                               finding.message)
        return PlanVerdict(False, REASON_TYPE_RISK, finding.message)
    if classified.where is not None and _division_risk(classified.where):
        return PlanVerdict(False, REASON_TYPE_RISK,
                           "WHERE divides by a data-dependent divisor "
                           "(poisons on zero)")
    return PlanVerdict(True, None, _eligible_detail(classified))


# --------------------------------------------------------------------------
# Descriptor-level pass
# --------------------------------------------------------------------------

@dataclass
class SourcePlanInfo:
    """Everything gsn-plan derived for one per-source query."""

    stream: str
    alias: str
    query: str
    plan: SelectPlan
    annotated: AnnotatedPlan
    verdict: PlanVerdict
    window_kind: str
    window_elements: Optional[int]


@dataclass
class StreamPlanInfo:
    """Everything gsn-plan derived for one output (stream) query."""

    stream: str
    query: str
    plan: SelectPlan
    annotated: AnnotatedPlan
    verdict: PlanVerdict        # structural only: output queries always
                                # run per trigger over the temporaries


@dataclass
class DescriptorPlan:
    """The gsn-plan result for one descriptor."""

    name: str
    sources: Dict[SourceKey, SourcePlanInfo] = field(default_factory=dict)
    streams: Dict[str, StreamPlanInfo] = field(default_factory=dict)

    @property
    def verdicts(self) -> Dict[SourceKey, PlanVerdict]:
        return {key: info.verdict for key, info in self.sources.items()}

    def coverage(self) -> Tuple[int, int]:
        """``(eligible, total)`` over the per-source queries."""
        eligible = sum(1 for info in self.sources.values()
                       if info.verdict.eligible)
        return eligible, len(self.sources)

    def render(self) -> str:
        """All annotated plans, EXPLAIN-style (the ``--plan`` output)."""
        sections: List[str] = []
        for (stream, alias), info in self.sources.items():
            sections.append(f"-- {self.name}/{stream}/{alias} "
                            f"source query: {info.query}")
            sections.append(info.annotated.render())
        for stream, info in self.streams.items():
            sections.append(f"-- {self.name}/{stream} "
                            f"stream query: {info.query}")
            sections.append(info.annotated.render())
        return "\n".join(sections)


def plan_descriptor(descriptor: VirtualSensorDescriptor,
                    registry: Optional[WrapperRegistry] = None,
                    report: Optional[Report] = None,
                    source: str = "",
                    wrapper_schemas=None,
                    remote_resolver: Optional[RemoteResolver] = None,
                    incremental: bool = True) -> DescriptorPlan:
    """Run gsn-plan over one descriptor.

    With a ``report``, GSN701–GSN705 findings are added; without one the
    pass is silent (the manager's deploy hook uses it that way). Pass
    ``wrapper_schemas`` (from :func:`~repro.analysis.passes.analyze`) to
    avoid re-deriving them — and re-reporting GSN108/GSN109.
    """
    enabled = incremental and descriptor.storage.incremental
    if wrapper_schemas is None:
        wrapper_schemas = _derive_wrapper_schemas(
            descriptor, registry, Report(), source, remote_resolver
        )
    result = DescriptorPlan(descriptor.name)

    for stream in descriptor.input_streams:
        alias_rows: Dict[str, float] = {}
        alias_schemas: Dict[str, RelSchema] = {}
        for src in stream.sources:
            key = (stream.name, src.alias)
            context = f"{descriptor.name}/{stream.name}/{src.alias}" \
                      f" source query"
            try:
                statement = parse_select(src.query)
                plan = plan_select(statement)
                window_kind, __ = parse_window_spec(src.storage_size or "1")
            except (SQLError, GSNError):
                continue  # GSN100 is the schema pass's to report
            schema = wrapper_schemas.get(key)
            rel_schema = (wrapper_relation_schema(schema)
                          if schema is not None else None)
            elements: Optional[int] = None
            try:
                elements, __ = estimate_window_memory(src, schema)
            except GSNError:
                pass

            out_schema = None
            if rel_schema is not None:
                out_schema = infer_output_schema(
                    statement, {WRAPPER_TABLE: rel_schema}, Report(),
                    context, source)
            verdict = source_query_verdict(plan, window_kind, rel_schema,
                                           incremental_enabled=enabled)
            annotated = annotate_plan(
                plan,
                table_rows=({WRAPPER_TABLE: float(elements)}
                            if elements is not None else None),
                table_schemas=({WRAPPER_TABLE: rel_schema}
                               if rel_schema is not None else None),
                output_schema=out_schema,
            )
            root = annotated.annotation(plan)
            assert root is not None
            root.note = ("fast-path: eligible" if verdict.eligible
                         else f"fast-path: ineligible ({verdict.reason})")
            info = SourcePlanInfo(stream.name, src.alias, src.query, plan,
                                  annotated, verdict, window_kind, elements)
            result.sources[key] = info
            if root.rows is not None:
                alias_rows[src.alias] = root.rows
            if out_schema is not None:
                alias_schemas[src.alias] = out_schema

            if report is not None:
                if not verdict.eligible and verdict.reason != REASON_DISABLED:
                    report.add(
                        "GSN701",
                        f"source query ineligible for the incremental "
                        f"fast path ({verdict.reason}): {verdict.detail}",
                        location=context, source=source)
                _plan_rule_findings(annotated, report, source, context)
                if not verdict.eligible:
                    _budget_finding(annotated, src, report, source, context)

        context = f"{descriptor.name}/{stream.name} stream query"
        try:
            statement = parse_select(stream.query)
            plan = plan_select(statement)
        except SQLError:
            continue
        out_schema = None
        if alias_schemas.keys() >= {s.alias for s in stream.sources}:
            out_schema = infer_output_schema(statement, alias_schemas,
                                             Report(), context, source)
        annotated = annotate_plan(plan, table_rows=alias_rows,
                                  table_schemas=alias_schemas or None,
                                  output_schema=out_schema)
        verdict = structural_verdict(plan)
        root = annotated.annotation(plan)
        assert root is not None
        root.note = ("shape: incremental-capable" if verdict.eligible
                     else f"shape: {verdict.reason}")
        result.streams[stream.name] = StreamPlanInfo(
            stream.name, stream.query, plan, annotated, verdict)
        if report is not None:
            _plan_rule_findings(annotated, report, source, context)

    return result


def _plan_rule_findings(annotated: AnnotatedPlan, report: Report,
                        source: str, context: str) -> None:
    """GSN702/GSN703/GSN705 over one annotated plan tree."""
    for node in annotated.plan.walk():
        annotation = annotated.annotation(node)
        if isinstance(node, NestedLoopJoinPlan) and annotation is not None \
                and annotation.rows is not None:
            left = annotated.annotation(node.left)
            right = annotated.annotation(node.right)
            pairs = _mul(left.rows if left else None,
                         right.rows if right else None)
            if pairs is not None and pairs > CROSS_PRODUCT_ROW_LIMIT:
                shape = ("cross join" if node.condition is None
                         or node.kind == "cross"
                         else "join without an equi-condition")
                report.add(
                    "GSN702",
                    f"{shape} enumerates ~{_fmt(pairs)} row pairs per "
                    f"trigger (limit {_fmt(CROSS_PRODUCT_ROW_LIMIT)}); "
                    f"add an equality join condition",
                    location=context, source=source)
        if isinstance(node, SelectPlan):
            if node.order_by and node.limit is None \
                    and annotation is not None \
                    and annotation.sort_rows is not None \
                    and annotation.sort_rows > SORT_ROW_LIMIT:
                report.add(
                    "GSN703",
                    f"ORDER BY without LIMIT sorts ~"
                    f"{_fmt(annotation.sort_rows)} rows per trigger "
                    f"(limit {_fmt(SORT_ROW_LIMIT)}); bound the window "
                    f"or add LIMIT",
                    location=context, source=source)
            message = dead_predicate(node.where)
            if message is not None:
                rendered = expression_to_sql(node.where)
                report.add(
                    "GSN705",
                    f"predicate {rendered} is provably dead: {message}; "
                    f"the query can never return rows",
                    location=context, source=source)


def _budget_finding(annotated: AnnotatedPlan, src, report: Report,
                    source: str, context: str) -> None:
    """GSN704: legacy per-trigger cost versus the source's trigger rate."""
    root = annotated.annotation(annotated.plan)
    if root is None or root.cost is None:
        return
    interval_ms = _source_interval_ms(src)
    triggers_per_second = src.sampling_rate * 1000.0 / interval_ms
    if triggers_per_second <= 0:
        return
    load = root.cost * triggers_per_second
    if load > COST_BUDGET_ROWS_PER_SECOND:
        report.add(
            "GSN704",
            f"~{_fmt(root.cost)} rows touched per trigger at "
            f"~{_fmt(triggers_per_second)} triggers/s is "
            f"~{_fmt(load)} rows/s, above the "
            f"{_fmt(COST_BUDGET_ROWS_PER_SECOND)} rows/s budget; the "
            f"sensor cannot keep up — shrink the window, lower the "
            f"sampling rate, or make the query fast-path eligible",
            location=context, source=source)


def descriptor_verdicts(descriptor: VirtualSensorDescriptor,
                        registry: Optional[WrapperRegistry] = None,
                        incremental: bool = True
                        ) -> Dict[SourceKey, PlanVerdict]:
    """Never-raising verdict map for one descriptor.

    The deploy hook: :meth:`VirtualSensorManager.deploy` calls this to
    hand the sensor its static verdicts; a failing plan pass must never
    block a deployment, so any error degrades to "no verdicts".
    """
    try:
        return plan_descriptor(descriptor, registry=registry,
                               incremental=incremental).verdicts
    except Exception:
        logger.exception("plan pass failed for %s; deploying without "
                         "static verdicts", descriptor.name)
        return {}
