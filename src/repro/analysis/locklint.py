"""AST-based concurrency lint (the GSN4xx rules).

Verifies a lightweight ``# guarded-by:`` convention over Python sources:

- A field annotated on its initializing assignment, e.g.::

      self.tasks_completed = 0  # guarded-by: _lock

  The canonical spelling is the lock's registry name
  (``guarded-by: WorkerPool._lock`` — see
  :func:`repro.concurrency.new_lock`); the attribute holding the lock
  is the segment after the last dot either way. An annotated field
  may only be *written* (assigned, augmented, deleted) or *mutated*
  (any method called on it, e.g. ``self._errors.append(x)``) inside a
  ``with self._lock:`` block. Plain reads are not flagged — passing a
  reference or reading a counter for display is benign; mutation is not.

- A method annotated on its ``def`` line::

      def _evict(self, reference):  # requires-lock: _lock

  is analyzed as if the lock were held, and every ``self._evict(...)``
  call site must itself hold the lock (GSN403).

``__init__`` is exempt: construction happens-before publication.

The checker is deliberately intra-procedural and syntactic — it exists
to catch the "forgot the with-block" class of bug cheaply at lint time,
not to prove the program race-free.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set

from repro.analysis.rules import Report

GUARDED_BY = re.compile(r"#\s*guarded-by:\s*([A-Za-z_][\w.]*)")
REQUIRES_LOCK = re.compile(r"#\s*requires-lock:\s*([A-Za-z_][\w.]*)")


def _lock_attr(declared: str) -> str:
    """The ``self.<attr>`` holding a declared lock — the tail of a
    registry-qualified name (``WorkerPool._lock`` -> ``_lock``)."""
    return declared.rpartition(".")[2]

#: Modules (relative to the ``repro`` package) the repo itself keeps
#: under locklint — ``gsn-lint --self-check``.
SELF_CHECK_MODULES = (
    "vsensor/pool.py",
    "vsensor/input_manager.py",
    "storage/sqlite.py",
    "streams/materialized.py",
    "sqlengine/incremental.py",
    "metrics/collectors.py",
    "metrics/registry.py",
    "metrics/tracing.py",
    "interfaces/http_server.py",
    "vsensor/virtual_sensor.py",
    "network/peer.py",
    "notifications/manager.py",
    "analysis/crashwitness.py",
    "vsensor/lifecycle.py",
    "interfaces/async_gateway.py",
)


@dataclass
class _ClassInfo:
    name: str
    guards: Dict[str, str] = field(default_factory=dict)      # field -> lock
    requires: Dict[str, str] = field(default_factory=dict)    # method -> lock
    assigned: Set[str] = field(default_factory=set)           # all self.* set


def lint_source(source: str, report: Optional[Report] = None,
                filename: str = "<string>") -> Report:
    """Run the concurrency lint over one module's source text."""
    if report is None:
        report = Report()
    try:
        tree = ast.parse(source)
    except SyntaxError as exc:
        report.add("GSN100", f"cannot parse python source: {exc}",
                   location=filename, source=filename)
        return report
    lines = source.splitlines()

    for node in ast.walk(tree):
        if isinstance(node, ast.ClassDef):
            _lint_class(node, lines, report, filename)
    return report


def lint_file(path: str, report: Optional[Report] = None) -> Report:
    with open(path, "r", encoding="utf-8") as handle:
        return lint_source(handle.read(), report, filename=path)


def lint_files(paths: Sequence[str],
               report: Optional[Report] = None) -> Report:
    if report is None:
        report = Report()
    for path in paths:
        lint_file(path, report)
    return report


# --------------------------------------------------------------------------
# collection
# --------------------------------------------------------------------------

def _line_comment_match(lines: List[str], lineno: int,
                        pattern: "re.Pattern[str]") -> Optional[str]:
    if 1 <= lineno <= len(lines):
        match = pattern.search(lines[lineno - 1])
        if match:
            return match.group(1)
    return None


def _self_attr(node: ast.AST) -> Optional[str]:
    """``self.<attr>`` -> attr name."""
    if isinstance(node, ast.Attribute) and \
            isinstance(node.value, ast.Name) and node.value.id == "self":
        return node.attr
    return None


def _collect(cls: ast.ClassDef, lines: List[str]) -> _ClassInfo:
    info = _ClassInfo(cls.name)
    for method in cls.body:
        if not isinstance(method, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        lock = _line_comment_match(lines, method.lineno, REQUIRES_LOCK)
        if lock:
            info.requires[method.name] = _lock_attr(lock)
        for node in ast.walk(method):
            targets: List[ast.expr] = []
            if isinstance(node, ast.Assign):
                targets = list(node.targets)
            elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
                targets = [node.target]
            for target in targets:
                attr = _self_attr(target)
                if attr is None:
                    continue
                info.assigned.add(attr)
                guard = _line_comment_match(lines, node.lineno, GUARDED_BY)
                if guard:
                    info.guards[attr] = _lock_attr(guard)
    return info


# --------------------------------------------------------------------------
# checking
# --------------------------------------------------------------------------

class _MethodChecker(ast.NodeVisitor):
    def __init__(self, info: _ClassInfo, method: str,
                 held: Set[str], report: Report, filename: str) -> None:
        self.info = info
        self.method = method
        self.held = set(held)
        self.report = report
        self.filename = filename

    def _where(self, node: ast.AST) -> str:
        return (f"{self.info.name}.{self.method}:"
                f"{getattr(node, 'lineno', '?')}")

    def _flag(self, rule: str, message: str, node: ast.AST) -> None:
        self.report.add(rule, message, location=self._where(node),
                        source=self.filename)

    # -- lock acquisition --------------------------------------------------

    def visit_With(self, node: ast.With) -> None:
        acquired = []
        for item in node.items:
            if not self._lock_name(item.context_expr):
                self.visit(item.context_expr)
        for item in node.items:
            lock = self._lock_name(item.context_expr)
            if lock is not None and lock not in self.held:
                self.held.add(lock)
                acquired.append(lock)
        for statement in node.body:
            self.visit(statement)
        for lock in acquired:
            self.held.discard(lock)

    def _lock_name(self, expr: ast.expr) -> Optional[str]:
        attr = _self_attr(expr)
        if attr is not None:
            return attr
        if isinstance(expr, ast.Name):
            return expr.id
        return None

    # -- guarded accesses --------------------------------------------------

    def _check_write(self, target: ast.expr, node: ast.AST) -> None:
        attr = _self_attr(target)
        if attr is None and isinstance(target, ast.Subscript):
            attr = _self_attr(target.value)  # self.guarded[i] = ...
        if attr is None or attr not in self.info.guards:
            return
        lock = self.info.guards[attr]
        if lock not in self.held:
            self._flag("GSN401",
                       f"write to guarded field self.{attr} without "
                       f"holding self.{lock}", node)

    def visit_Assign(self, node: ast.Assign) -> None:
        for target in node.targets:
            self._check_write(target, node)
        self.visit(node.value)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        self._check_write(node.target, node)
        self.visit(node.value)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        self._check_write(node.target, node)
        if node.value is not None:
            self.visit(node.value)

    def visit_Delete(self, node: ast.Delete) -> None:
        for target in node.targets:
            self._check_write(target, node)

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if isinstance(func, ast.Attribute):
            # self.<guarded>.<method>(...): mutation of the guarded value
            owner = _self_attr(func.value)
            if owner is not None and owner in self.info.guards:
                lock = self.info.guards[owner]
                if lock not in self.held:
                    self._flag(
                        "GSN401",
                        f"call self.{owner}.{func.attr}() on guarded "
                        f"field without holding self.{lock}", node)
            # self.<method>(...) where the method requires a lock
            callee = _self_attr(func)
            if callee is not None and callee in self.info.requires:
                lock = self.info.requires[callee]
                if lock not in self.held:
                    self._flag(
                        "GSN403",
                        f"self.{callee}() requires self.{lock} but the "
                        f"caller does not hold it", node)
        self.generic_visit(node)


def _lint_class(cls: ast.ClassDef, lines: List[str], report: Report,
                filename: str) -> None:
    info = _collect(cls, lines)
    if not info.guards and not info.requires:
        return

    declared_locks = set(info.guards.values()) | set(info.requires.values())
    for lock in sorted(declared_locks):
        if lock not in info.assigned:
            report.add("GSN402",
                       f"guard annotation names self.{lock}, which is "
                       f"never assigned in class {info.name}",
                       location=f"{info.name}:{cls.lineno}",
                       source=filename)

    for method in cls.body:
        if not isinstance(method, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        if method.name == "__init__":
            continue  # construction happens-before publication
        held: Set[str] = set()
        required = info.requires.get(method.name)
        if required:
            held.add(required)
        checker = _MethodChecker(info, method.name, held, report, filename)
        for statement in method.body:
            checker.visit(statement)
