"""Whole-program data-race detection — the GSN8xx rules.

The deadlock pass (GSN5xx) proves lock *ordering*; the flow pass
(GSN6xx) proves exception flow; this pass proves that shared state is
actually *guarded*.  It runs over the same
:class:`repro.analysis.callgraph.ProgramIndex` and closes the loop on
the ``# guarded-by:`` vocabulary that :mod:`repro.analysis.locklint`
introduced: declarations are verified against observed lock sets, and
undeclared shared attributes get their guard inferred.

1. **entry points** — the places concurrency starts — are discovered
   from the index: ``Thread(target=...)`` constructions and Thread
   subclass ``run()`` overrides, worker-pool ``submit(...)`` arguments,
   timer/scheduler callbacks (``Timer``, ``.after()``, ``.every()``),
   HTTP handler ``do_*`` methods, and callback registrations
   (``add_listener``/``register``/``subscribe``/... — the peer-link
   receive path).  Every public function is additionally reachable from
   the synthetic ``main`` entry (anything public can be called from the
   embedding application's thread);
2. held-lock contexts are propagated from the entry points through
   resolved calls to a fixed point (same bounded worklist the deadlock
   pass uses, but seeded *only* at entries so the per-access **must**-
   held set is the intersection over genuinely possible contexts);
3. per-attribute access summaries — read / write / read-modify-write /
   in-place collection mutation / iteration, each with its must-held
   lock set — are collected for every ``self.x`` (and typed shared-
   object) attribute.  An attribute is *shared* when its accesses are
   reachable from ≥ 2 distinct entry points, at least one of them
   concurrent, with at least one write outside ``__init__`` — and the
   write side itself concurrent (a scalar written only from the main
   thread and read from a timer is the benign-under-the-GIL case the
   read policy below already accepts; collections are exempt from that
   carve-out because mutation races concurrent *iteration*);
4. each shared attribute's **dominant guard** is inferred (the lock held
   at ≥ :data:`DOMINANT_THRESHOLD` of its guarded writes); an explicit
   ``# guarded-by:`` declaration takes precedence when it verifies.
   Violations:

   - **GSN801** unguarded write to shared state (no guard anywhere);
   - **GSN802** inconsistent guard — the attribute is usually written
     under lock L, this write is not;
   - **GSN803** unguarded compound update: ``+=``, check-then-act
     (test reads the attribute, branch writes it), or dict/list
     mutation during iteration;
   - **GSN804** unsynchronized collection mutated across entry points;
   - **GSN805** guarded mutable state escaping its lock scope — a bare
     ``return self.x`` of a guarded collection hands out a reference
     the lock no longer covers (return a copy instead);
   - **GSN806** stale or wrong ``# guarded-by:`` declaration — the
     named lock does not exist, is not the lock's
     :func:`repro.concurrency.new_lock` registry name, or is never
     held at any observed write.

Reads are deliberately not flagged (same trade :mod:`locklint` makes:
a torn read is benign under the GIL for the simple cases, and flagging
them would drown the writes that actually corrupt state).  Findings are
suppressed by a trailing ``# gsn-lint: disable=GSN80x`` on the
offending line.  The runtime counterpart is
:mod:`repro.analysis.racewitness`, which enforces the same declarations
at mutate-time during the test suite.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import (
    Dict, FrozenSet, List, Optional, Sequence, Set, Tuple,
)

from repro.analysis.callgraph import (
    Access, Call, FunctionInfo, ITERATE, MUTATE, ProgramIndex, READ, RMW,
    WRITE, _MUTATOR_METHODS, _self_attr,
)
from repro.analysis.flowgraph import _Resolver, _walk_scope
from repro.analysis.lockgraph import (
    MAX_CONTEXTS_PER_FUNCTION, MAX_LOCKS_PER_CONTEXT, expand_paths,
)
from repro.analysis.rules import Report

#: A lock is the attribute's dominant guard when it is held at at least
#: this fraction of the attribute's writes (outside ``__init__``).
DOMINANT_THRESHOLD = 0.75

#: The synthetic entry every public function is reachable from.
MAIN_ENTRY = "main"

#: ``<receiver>.<name>(callable)`` — the callable arg is registered to
#: run later on some other thread (listener/observer/peer-link paths).
_CALLBACK_REGISTRARS = frozenset({
    "add_listener", "add_observer", "add_callback", "subscribe",
    "register", "watch",
})

#: ``<scheduler>.<name>(..., callable, ...)`` — timer callbacks.
_SCHEDULER_METHODS = frozenset({"after", "every", "call_later", "schedule"})

#: Value kinds that make an attribute a (mutable) collection.
_COLLECTION_CTORS = frozenset({
    "list", "dict", "set", "deque", "defaultdict", "OrderedDict",
    "Counter",
})

WRITEISH = frozenset({WRITE, RMW, MUTATE})

Context = FrozenSet[str]


@dataclass(frozen=True)
class EntryPoint:
    """One place concurrent execution can begin."""

    id: str         # "thread:WorkerPool._worker_main", "main", ...
    kind: str       # thread | pool | timer | callback | http | main
    qualname: str
    path: str
    line: int


@dataclass(frozen=True)
class AccessSite:
    """One attribute access with its propagated must-held lock set."""

    cls: str
    attr: str
    kind: str
    function: str
    path: str
    line: int
    must_held: FrozenSet[str]
    in_init: bool
    entries: FrozenSet[str]


@dataclass
class AttrSummary:
    """Everything the rules need to know about one ``Class.attr``."""

    cls: str
    attr: str
    sites: List[AccessSite]
    entries: FrozenSet[str]       # entry ids reaching any access
    is_collection: bool
    declared: Optional[str]       # raw ``# guarded-by:`` text, if any
    declared_line: int
    canonical: Optional[str]      # registry name the declaration resolves to
    dominant: Optional[str]       # inferred guard, if any

    @property
    def writes(self) -> List["AccessSite"]:
        return [s for s in self.sites
                if s.kind in WRITEISH and not s.in_init]

    @property
    def shared(self) -> bool:
        """Whether this attribute's writes can actually race.

        Requires ≥ 2 entry points with at least one concurrent, plus a
        write outside ``__init__`` — and the write side must itself be
        concurrent: a scalar written only from the main thread and read
        from a timer is the benign-under-the-GIL case the pass's
        read-policy already accepts.  Collections are the exception — a
        main-side mutation races concurrent *readers* (``dict changed
        size during iteration``), so any concurrent access counts.
        """
        if len(self.entries) < 2 or not self.writes:
            return False
        if not self.entries - {MAIN_ENTRY}:
            return False
        if any(site.entries - {MAIN_ENTRY} for site in self.writes):
            return True
        # Main-side-only writes: rebinds are atomic under the GIL, but
        # an in-place mutation still races concurrent iteration.
        return self.is_collection and any(
            site.kind == MUTATE for site in self.writes)


class RaceAnalysis:
    """One run of the GSN8xx pass over an index."""

    def __init__(self, index: ProgramIndex) -> None:
        self.index = index
        self.entries: List[EntryPoint] = []
        self.contexts: Dict[str, Set[Context]] = {}
        self.reaching: Dict[str, Set[str]] = {}
        self.summaries: Dict[Tuple[str, str], AttrSummary] = {}
        self.suppressed_count = 0
        self._resolvers: Dict[str, _Resolver] = {}
        self._edges: Dict[str, Set[str]] = {}
        self._compound: Dict[Tuple[str, str, str, int], str] = {}
        self._emitted: Set[Tuple[str, str, int]] = set()

    # -- plumbing ----------------------------------------------------------

    def _resolver(self, qualname: str) -> _Resolver:
        resolver = self._resolvers.get(qualname)
        if resolver is None:
            resolver = _Resolver(self.index, self.index.functions[qualname])
            self._resolvers[qualname] = resolver
        return resolver

    def _suppressed(self, rule: str, path: str, line: int) -> bool:
        rules = self.index.suppressions.get(path, {}).get(line)
        return rules is not None and rule in rules

    def _emit(self, report: Report, rule: str, message: str,
              function: str, path: str, line: int) -> None:
        key = (rule, path, line)
        if key in self._emitted:
            return
        self._emitted.add(key)
        if self._suppressed(rule, path, line):
            self.suppressed_count += 1
            return
        report.add(rule, message, location=f"{function}:{line}",
                   source=path)

    # -- entry-point discovery ---------------------------------------------

    def discover_entries(self) -> List[EntryPoint]:
        found: Dict[Tuple[str, str], EntryPoint] = {}

        def add(kind: str, qualname: str, path: str, line: int) -> None:
            # All ``main`` roots share one entry id: they run on the
            # same (embedding application) thread, so reachability from
            # two of them is not concurrency.
            entry_id = MAIN_ENTRY if kind == MAIN_ENTRY \
                else f"{kind}:{qualname}"
            entry = EntryPoint(entry_id, kind, qualname, path, line)
            found.setdefault((entry.id, qualname), entry)

        for qualname in sorted(self.index.functions):
            info = self.index.functions[qualname]
            # Public functions/methods: callable from the embedding
            # application's (main) thread.
            if not info.name.startswith("_") or (
                    info.name.startswith("__")
                    and info.name.endswith("__")):
                add(MAIN_ENTRY, qualname, info.path, info.lineno)
            # ``class Worker(Thread): def run(self)``.
            if info.name == "run" and info.class_name is not None:
                cls = self.index.classes.get(info.class_name)
                if cls is not None and any("Thread" in base
                                           for base in cls.bases):
                    add("thread", qualname, info.path, info.lineno)
            # HTTP handler methods on (top-level) handler classes.
            if info.name.startswith("do_") and info.class_name is not None:
                cls = self.index.classes.get(info.class_name)
                if cls is not None and any("Handler" in base
                                           for base in cls.bases):
                    add("http", qualname, info.path, info.lineno)
            self._scan_spawn_sites(info, add)

        # ``main`` is one entry id no matter how many roots seed it.
        entries = sorted(found.values(), key=lambda e: (e.id, e.qualname))
        self.entries = entries
        return entries

    def _scan_spawn_sites(self, info: FunctionInfo, add) -> None:
        resolver = self._resolver(info.qualname)
        for child in _walk_scope(info.node):
            if not isinstance(child, ast.Call):
                continue
            func = child.func
            callee = func.attr if isinstance(func, ast.Attribute) else (
                func.id if isinstance(func, ast.Name) else None
            )
            if callee is None:
                continue
            kind: Optional[str] = None
            candidates: List[ast.AST] = []
            if callee == "Thread":
                kind = "thread"
                candidates = [kw.value for kw in child.keywords
                              if kw.arg == "target"]
            elif callee == "Timer":
                kind = "timer"
                candidates = list(child.args[1:2])
            elif callee == "submit":
                kind = "pool"
                candidates = list(child.args) + \
                    [kw.value for kw in child.keywords]
            elif callee in _SCHEDULER_METHODS:
                kind = "timer"
                candidates = list(child.args) + \
                    [kw.value for kw in child.keywords]
            elif callee.lstrip("_") in _CALLBACK_REGISTRARS:
                kind = "callback"
                candidates = list(child.args) + \
                    [kw.value for kw in child.keywords]
            if kind is None:
                continue
            for candidate in candidates:
                for target in resolver.entry_targets(candidate):
                    add(kind, target, info.path, child.lineno)

    # -- propagation -------------------------------------------------------

    def solve(self) -> None:
        if not self.entries:
            self.discover_entries()
        # Static call edges, once.
        for qualname, info in self.index.functions.items():
            targets: Set[str] = set()
            for event in info.events:
                if isinstance(event, Call):
                    targets.update(t for t in event.targets
                                   if t in self.index.functions)
            self._edges[qualname] = targets

        # 1. which entry ids reach which functions (BFS, ctx-free).
        for entry in self.entries:
            if entry.qualname not in self.index.functions:
                continue
            seen = self.reaching.setdefault(entry.qualname, set())
            if entry.id in seen:
                continue
            seen.add(entry.id)
            queue = [entry.qualname]
            while queue:
                current = queue.pop()
                for callee in self._edges.get(current, ()):
                    reached = self.reaching.setdefault(callee, set())
                    if entry.id not in reached:
                        reached.add(entry.id)
                        queue.append(callee)

        # 2. held-lock contexts from the entries to a fixed point.
        #
        # Concurrent entries always seed an empty context (they start a
        # fresh stack). ``main`` roots seed only when nothing in the
        # program calls them: a public *hook* with internal callers
        # (``on_configure`` under ``configure``'s lock) inherits its
        # callers' contexts — we assume external callers follow the
        # same locking discipline the internal call sites exhibit.
        called: Set[str] = set()
        for targets in self._edges.values():
            called.update(targets)
        worklist: List[str] = []

        def seed(qualname: str) -> None:
            known = self.contexts.setdefault(qualname, set())
            if frozenset() not in known:
                known.add(frozenset())
                worklist.append(qualname)

        for entry in self.entries:
            if entry.qualname not in self.index.functions:
                continue
            if entry.kind == MAIN_ENTRY and entry.qualname in called:
                continue
            seed(entry.qualname)
        self._fixpoint(worklist)
        # Public-cycle fallback: a ring of public functions that only
        # call each other has no root; seed the stragglers empty.
        stragglers = [entry.qualname for entry in self.entries
                      if entry.qualname in self.index.functions
                      and entry.qualname not in self.contexts]
        for qualname in stragglers:
            seed(qualname)
        if worklist:
            self._fixpoint(worklist)

    def _fixpoint(self, worklist: List[str]) -> None:
        processed: Set[Tuple[str, Context]] = set()
        while worklist:
            qualname = worklist.pop()
            info = self.index.functions[qualname]
            base_requires = frozenset(info.requires)
            for ctx in list(self.contexts.get(qualname, ())):
                if (qualname, ctx) in processed:
                    continue
                processed.add((qualname, ctx))
                base = ctx | base_requires
                for event in info.events:
                    if not isinstance(event, Call):
                        continue
                    callee_ctx = frozenset(base | set(event.held))
                    if len(callee_ctx) > MAX_LOCKS_PER_CONTEXT:
                        continue
                    for target in event.targets:
                        if target not in self.index.functions:
                            continue
                        known = self.contexts.setdefault(target, set())
                        if callee_ctx in known:
                            continue
                        if len(known) >= MAX_CONTEXTS_PER_FUNCTION:
                            # Collapse to the must-held intersection:
                            # sound for guard inference, and bounded.
                            collapsed = frozenset.intersection(
                                callee_ctx, *known)
                            known.clear()
                            known.add(collapsed)
                        else:
                            known.add(callee_ctx)
                        worklist.append(target)

    # -- access summaries --------------------------------------------------

    def collect(self) -> Dict[Tuple[str, str], AttrSummary]:
        self.solve()
        collections = self._collection_attrs()
        sites: Dict[Tuple[str, str], List[AccessSite]] = {}
        entries_for: Dict[Tuple[str, str], Set[str]] = {}
        for qualname, contexts in self.contexts.items():
            info = self.index.functions[qualname]
            requires = frozenset(info.requires)
            reaching = frozenset(self.reaching.get(qualname, ()))
            in_init = info.name == "__init__"
            for event in info.events:
                if not isinstance(event, Access):
                    continue
                local = frozenset(event.held) | requires
                must = frozenset.intersection(
                    *(ctx | local for ctx in contexts)
                ) if contexts else local
                key = (event.cls, event.attr)
                sites.setdefault(key, []).append(AccessSite(
                    event.cls, event.attr, event.kind, qualname,
                    info.path, event.line, must,
                    in_init and info.class_name == event.cls,
                    reaching,
                ))
                entries_for.setdefault(key, set()).update(reaching)
        self._find_compound_patterns()
        for key in sorted(sites):
            cls, attr = key
            declared, declared_line, canonical = self._declaration(cls, attr)
            summary = AttrSummary(
                cls=cls, attr=attr,
                sites=sorted(sites[key], key=lambda s: (s.path, s.line)),
                entries=frozenset(entries_for.get(key, ())),
                is_collection=key in collections,
                declared=declared, declared_line=declared_line,
                canonical=canonical, dominant=None,
            )
            summary.dominant = self._dominant(summary)
            self.summaries[key] = summary
        return self.summaries

    def _collection_attrs(self) -> Set[Tuple[str, str]]:
        out: Set[Tuple[str, str]] = set()
        for cls in self.index.classes.values():
            for qualname in cls.methods.values():
                info = self.index.functions.get(qualname)
                if info is None:
                    continue
                for node in _walk_scope(info.node):
                    target: Optional[ast.AST] = None
                    value: Optional[ast.AST] = None
                    if isinstance(node, ast.Assign) \
                            and len(node.targets) == 1:
                        target, value = node.targets[0], node.value
                    elif isinstance(node, ast.AnnAssign):
                        target, value = node.target, node.value
                    else:
                        continue
                    attr = _self_attr(target)
                    if attr is None or value is None:
                        continue
                    if self._is_collection_value(value):
                        out.add((cls.name, attr))
        return out

    @staticmethod
    def _is_collection_value(value: ast.AST) -> bool:
        if isinstance(value, (ast.List, ast.Dict, ast.Set, ast.ListComp,
                              ast.DictComp, ast.SetComp)):
            return True
        if isinstance(value, ast.Call):
            func = value.func
            name = func.attr if isinstance(func, ast.Attribute) else (
                func.id if isinstance(func, ast.Name) else None
            )
            return name in _COLLECTION_CTORS
        return False

    def _declaration(self, cls: str,
                     attr: str) -> Tuple[Optional[str], int, Optional[str]]:
        for info in self.index._mro(cls):
            entry = info.guards.get(attr)
            if entry is not None:
                declared, line = entry
                tail = declared.rsplit(".", 1)[-1]
                decl = self.index.lock_for_attr(cls, tail)
                canonical = decl.name if decl is not None else None
                return declared, line, canonical
        return None, 0, None

    def _dominant(self, summary: AttrSummary) -> Optional[str]:
        writes = summary.writes
        if not writes:
            return None
        counts: Dict[str, int] = {}
        for site in writes:
            for lock in site.must_held:
                counts[lock] = counts.get(lock, 0) + 1
        best: Optional[str] = None
        best_count = 0
        for lock in sorted(counts):
            if counts[lock] > best_count:
                best, best_count = lock, counts[lock]
        if best is not None and best_count / len(writes) >= \
                DOMINANT_THRESHOLD:
            return best
        return None

    # -- compound-update patterns (GSN803) ---------------------------------

    def _find_compound_patterns(self) -> None:
        for qualname in self.contexts:
            info = self.index.functions[qualname]
            if info.class_name is None:
                continue
            for node in _walk_scope(info.node):
                if isinstance(node, ast.If):
                    self._mark_check_then_act(info, node)
                elif isinstance(node, (ast.For, ast.While)):
                    self._mark_iter_mutation(info, node)

    def _self_reads(self, node: ast.AST) -> Set[str]:
        out: Set[str] = set()
        for child in ast.walk(node):
            attr = _self_attr(child)
            if attr is not None and isinstance(child.ctx, ast.Load):
                out.add(attr)
        return out

    def _self_writes(self, stmts: Sequence[ast.stmt]
                     ) -> List[Tuple[str, int]]:
        out: List[Tuple[str, int]] = []
        for stmt in stmts:
            for child in [stmt] + list(_walk_scope(stmt)):
                if isinstance(child, ast.Assign):
                    for target in child.targets:
                        attr = _self_attr(target)
                        if attr is not None:
                            out.append((attr, child.lineno))
                elif isinstance(child, ast.AugAssign):
                    attr = _self_attr(child.target)
                    if attr is not None:
                        out.append((attr, child.lineno))
                elif isinstance(child, ast.Call) \
                        and isinstance(child.func, ast.Attribute) \
                        and child.func.attr in _MUTATOR_METHODS:
                    attr = _self_attr(child.func.value)
                    if attr is not None:
                        out.append((attr, child.lineno))
                elif isinstance(child, ast.Subscript) \
                        and isinstance(child.ctx, (ast.Store, ast.Del)):
                    attr = _self_attr(child.value)
                    if attr is not None:
                        out.append((attr, child.lineno))
        return out

    def _mark_check_then_act(self, info: FunctionInfo,
                             node: ast.If) -> None:
        reads = self._self_reads(node.test)
        if not reads:
            return
        cls = info.class_name or ""
        for attr, line in self._self_writes(node.body):
            if attr in reads:
                self._compound.setdefault(
                    (cls, attr, info.path, line), "check-then-act")

    def _mark_iter_mutation(self, info: FunctionInfo, node: ast.AST) -> None:
        if isinstance(node, ast.For):
            iterated = _self_attr(node.iter)
        else:
            assert isinstance(node, ast.While)
            test_reads = self._self_reads(node.test)
            iterated = None if len(test_reads) != 1 \
                else next(iter(test_reads))
        if iterated is None:
            return
        cls = info.class_name or ""
        for attr, line in self._self_writes(node.body):
            if attr == iterated:
                self._compound.setdefault(
                    (cls, attr, info.path, line), "mutation-during-iteration")

    # -- rule judging ------------------------------------------------------

    def run(self, report: Optional[Report] = None,
            include_parse_errors: bool = False) -> Report:
        if report is None:
            report = Report()
        if include_parse_errors:
            for path, error in self.index.parse_errors:
                report.add("GSN100", f"cannot parse python source: {error}",
                           location=path, source=path)
        self.collect()
        for key in sorted(self.summaries):
            summary = self.summaries[key]
            if self._loop_owned(summary.cls, summary.attr):
                # ``# owned-by: loop`` state belongs to the async pass:
                # GSN904 proves single-writer (loop-thread) discipline,
                # which is a stronger guarantee than a lock.
                continue
            declaration_ok = self._judge_declaration(report, summary)
            if summary.shared:
                self._judge_writes(report, summary, declaration_ok)
            self._judge_escapes(report, summary)
        return report

    def _loop_owned(self, cls: str, attr: str) -> bool:
        return any(attr in info.loop_owned
                   for info in self.index._mro(cls))

    def _judge_declaration(self, report: Report,
                           summary: AttrSummary) -> bool:
        """GSN806. Returns True when the declaration can serve as the
        attribute's expected guard."""
        if summary.declared is None:
            return False
        cls_info = self.index.classes.get(summary.cls)
        path = cls_info.path if cls_info is not None else ""
        where = f"{summary.cls}.{summary.attr}"
        if summary.canonical is None:
            self._emit(
                report, "GSN806",
                f"guarded-by on {where} names unknown lock "
                f"{summary.declared!r} — no such lock attribute on "
                f"{summary.cls}",
                where, path, summary.declared_line,
            )
            return False
        if summary.declared != summary.canonical:
            self._emit(
                report, "GSN806",
                f"guarded-by on {where} says {summary.declared!r} but the "
                f"lock's registry name is {summary.canonical!r} — declare "
                f"'# guarded-by: {summary.canonical}'",
                where, path, summary.declared_line,
            )
            return False
        writes = summary.writes
        if writes and all(summary.canonical not in s.must_held
                          for s in writes):
            self._emit(
                report, "GSN806",
                f"guarded-by on {where} declares {summary.canonical!r} but "
                f"the lock is never held at any of its {len(writes)} "
                f"write(s) — the declaration is stale",
                where, path, summary.declared_line,
            )
            return False
        return True

    def _judge_writes(self, report: Report, summary: AttrSummary,
                      declaration_ok: bool) -> None:
        expected = summary.canonical if declaration_ok else summary.dominant
        where = f"{summary.cls}.{summary.attr}"
        entries = ", ".join(sorted(summary.entries))
        for site in summary.writes:
            if expected is not None and expected in site.must_held:
                continue
            compound = self._compound.get(
                (summary.cls, summary.attr, site.path, site.line))
            if expected is not None:
                self._emit(
                    report, "GSN802",
                    f"{where} is guarded by {expected} but this "
                    f"{'update' if site.kind != WRITE else 'write'} does "
                    f"not hold it (reachable from: {entries})",
                    site.function, site.path, site.line,
                )
            elif site.kind == RMW or compound is not None:
                what = compound or "read-modify-write"
                self._emit(
                    report, "GSN803",
                    f"unguarded compound update ({what}) on {where}, "
                    f"shared across entry points ({entries}) — the "
                    f"read-and-write must happen under one lock",
                    site.function, site.path, site.line,
                )
            elif site.kind == MUTATE and summary.is_collection:
                self._emit(
                    report, "GSN804",
                    f"unsynchronized collection {where} is mutated across "
                    f"entry points ({entries}) — guard it with a lock",
                    site.function, site.path, site.line,
                )
            else:
                self._emit(
                    report, "GSN801",
                    f"unguarded write to {where}, shared across entry "
                    f"points ({entries}) — guard it with a lock and "
                    f"declare '# guarded-by: <lock>'",
                    site.function, site.path, site.line,
                )

    def _judge_escapes(self, report: Report, summary: AttrSummary) -> None:
        guard = summary.canonical or summary.dominant
        if guard is None or not summary.is_collection:
            return
        cls_info = self.index.classes.get(summary.cls)
        if cls_info is None:
            return
        where = f"{summary.cls}.{summary.attr}"
        for qualname in sorted(cls_info.methods.values()):
            info = self.index.functions.get(qualname)
            if info is None or qualname not in self.contexts:
                continue
            for node in _walk_scope(info.node):
                if not isinstance(node, (ast.Return, ast.Yield)):
                    continue
                value = getattr(node, "value", None)
                if value is None or _self_attr(value) != summary.attr:
                    continue
                self._emit(
                    report, "GSN805",
                    f"guarded collection {where} escapes its lock scope: "
                    f"the returned reference is no longer covered by "
                    f"{guard} — return a copy (e.g. list(self.{summary.attr}))",
                    qualname, info.path, node.lineno,
                )


# --------------------------------------------------------------------------
# entry point
# --------------------------------------------------------------------------

def analyze_races(paths: Sequence[str],
                  report: Optional[Report] = None,
                  index: Optional[ProgramIndex] = None,
                  include_parse_errors: bool = True,
                  ) -> Tuple[Report, RaceAnalysis]:
    """Run the full GSN8xx pass over ``paths`` (files or directories).

    Pass a pre-built ``index`` to share parsing with the deadlock/flow
    passes (and set ``include_parse_errors=False`` if one of them
    already reported parse failures).
    """
    if index is None:
        index = ProgramIndex.build(expand_paths(paths))
    analysis = RaceAnalysis(index)
    report = analysis.run(report, include_parse_errors=include_parse_errors)
    return report, analysis
