"""The gsn-lint rule catalogue.

Every finding carries a stable rule ID (``GSN101``, ``GSN201``, ...) so
CI output stays diffable across analyzer versions. IDs are grouped by
pass:

- ``GSN1xx`` — schema inference & type checking over descriptor queries
- ``GSN2xx`` — cross-virtual-sensor graph analysis
- ``GSN3xx`` — resource estimation (window memory, storage growth)
- ``GSN4xx`` — concurrency lint over Python sources (``# guarded-by:``)
- ``GSN5xx`` — interprocedural deadlock pass (lock-order graph,
  blocking/dispatch under a lock, self-deadlock)
- ``GSN6xx`` — interprocedural exception-flow & resource-lifecycle pass
  (swallowed exceptions, thread-killing escapes, leaked resources)
- ``GSN7xx`` — deploy-time query-plan pass (fast-path eligibility,
  cardinality blow-ups, cost-vs-sampling-rate budget, dead predicates)
- ``GSN8xx`` — whole-program data-race pass (guard inference over
  entry-point-reachable shared attributes, ``# guarded-by:``
  verification)
- ``GSN9xx`` — async-safety pass (blocking calls reachable from
  coroutines, sync locks held across ``await``, fire-and-forget
  tasks, event-loop thread affinity / ``# owned-by: loop``,
  unbounded asyncio queues)

Severities: ``error`` findings would fail (or silently corrupt) a
deployment and make :func:`repro.analysis.analyze` callers such as
``Container.deploy(strict=True)`` reject the descriptor; ``warning``
findings are reported but do not fail the lint run unless the caller
opts in.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional

ERROR = "error"
WARNING = "warning"


@dataclass(frozen=True)
class Rule:
    """One statically-decidable deployment defect class."""

    id: str
    severity: str
    title: str


_CATALOGUE: List[Rule] = [
    # -- schema pass -------------------------------------------------------
    Rule("GSN100", ERROR, "descriptor fails basic validation "
                          "(query parse, window spec, table use)"),
    Rule("GSN101", ERROR, "unknown column reference"),
    Rule("GSN102", ERROR, "query reads an unknown or illegal table"),
    Rule("GSN103", ERROR, "type mismatch in comparison, join or arithmetic"),
    Rule("GSN104", ERROR, "call to an unknown SQL function"),
    Rule("GSN105", ERROR, "declared output field is never produced"),
    Rule("GSN106", WARNING, "query column not in output-structure (dropped)"),
    Rule("GSN107", ERROR, "produced type cannot convert to declared type"),
    Rule("GSN108", WARNING, "schema not statically derivable; checks skipped"),
    Rule("GSN109", ERROR, "wrapper unknown or rejects its configuration"),
    Rule("GSN110", WARNING, "ambiguous unqualified column reference"),
    Rule("GSN111", ERROR, "known SQL function called with wrong arity"),
    # -- graph pass --------------------------------------------------------
    Rule("GSN201", ERROR, "virtual-sensor dependency cycle"),
    Rule("GSN202", ERROR, "remote source matches no known producer"),
    Rule("GSN203", WARNING, "remote source matches multiple producers"),
    Rule("GSN204", ERROR, "addressing predicates are unsatisfiable"),
    Rule("GSN205", ERROR, "duplicate virtual-sensor name in deployment set"),
    # -- resource pass -----------------------------------------------------
    Rule("GSN301", ERROR, "estimated window memory exceeds budget"),
    Rule("GSN302", WARNING, "permanent storage with unbounded history"),
    Rule("GSN303", WARNING, "unbounded history fed at full trigger rate "
                            "(no slide)"),
    Rule("GSN304", WARNING, "very large count-based window"),
    Rule("GSN305", WARNING, "remote source without disconnect buffer"),
    # -- concurrency lint --------------------------------------------------
    Rule("GSN401", ERROR, "guarded field touched outside its declared lock"),
    Rule("GSN402", ERROR, "guard annotation names an unknown lock"),
    Rule("GSN403", ERROR, "requires-lock method called without the lock"),
    # -- deadlock pass (interprocedural) -----------------------------------
    Rule("GSN501", ERROR, "lock-acquisition-order cycle (potential "
                          "deadlock)"),
    Rule("GSN502", ERROR, "blocking operation while holding a lock"),
    Rule("GSN503", ERROR, "callback/notification dispatch under a lock"),
    Rule("GSN504", ERROR, "re-acquisition of a non-reentrant lock "
                          "(self-deadlock)"),
    # -- exception-flow / resource pass (interprocedural) ------------------
    Rule("GSN601", ERROR, "exception swallowed without logging, metric, "
                          "or re-raise"),
    Rule("GSN602", ERROR, "exception type can escape a thread entry point "
                          "(worker dies silently)"),
    Rule("GSN603", ERROR, "resource acquired but not released on every "
                          "path (no with/finally)"),
    Rule("GSN604", WARNING, "blocking call without a timeout reachable "
                            "from a thread entry point"),
    Rule("GSN605", WARNING, "non-daemon thread started without a "
                            "join/stop path"),
    # -- plan pass (deploy-time query-plan analysis) -----------------------
    Rule("GSN701", WARNING, "source query statically ineligible for the "
                            "incremental fast path"),
    Rule("GSN702", ERROR, "join without equi-condition (cross product) "
                          "over large windows"),
    Rule("GSN703", ERROR, "ORDER BY without LIMIT over an unbounded or "
                          "very large input"),
    Rule("GSN704", ERROR, "estimated per-trigger cost exceeds the "
                          "source's sampling-rate budget"),
    Rule("GSN705", ERROR, "provably dead predicate (always-false WHERE)"),
    # -- data-race pass (interprocedural) ----------------------------------
    Rule("GSN801", ERROR, "unguarded write to state shared across entry "
                          "points"),
    Rule("GSN802", ERROR, "inconsistent guard: write misses the "
                          "attribute's dominant/declared lock"),
    Rule("GSN803", ERROR, "unguarded compound update (read-modify-write, "
                          "check-then-act, mutation during iteration)"),
    Rule("GSN804", ERROR, "unsynchronized collection mutated across "
                          "entry points"),
    Rule("GSN805", WARNING, "guarded mutable state escapes its lock scope "
                            "(returned reference)"),
    Rule("GSN806", WARNING, "stale or wrong guarded-by declaration"),
    # -- async-safety pass (interprocedural) -------------------------------
    Rule("GSN901", ERROR, "blocking call reachable from a coroutine "
                          "(stalls the event loop)"),
    Rule("GSN902", ERROR, "synchronous lock held across an await point"),
    Rule("GSN903", ERROR, "unawaited coroutine / fire-and-forget task "
                          "without an exception sink"),
    Rule("GSN904", ERROR, "event-loop thread-affinity violation "
                          "(loop-bound API or loop-owned state touched "
                          "from a foreign thread)"),
    Rule("GSN905", WARNING, "unbounded asyncio queue (no backpressure "
                            "bound)"),
]

RULES: Dict[str, Rule] = {rule.id: rule for rule in _CATALOGUE}


@dataclass(frozen=True)
class Finding:
    """One rule violation at one location."""

    rule_id: str
    message: str
    location: str = ""
    source: str = ""  # file path (or "<descriptor>" for in-memory input)

    @property
    def rule(self) -> Rule:
        return RULES[self.rule_id]

    @property
    def severity(self) -> str:
        return self.rule.severity

    @property
    def path(self) -> str:
        """The file the finding points at (alias of ``source``)."""
        return self.source

    @property
    def line(self) -> int:
        """Line number parsed off the ``location`` suffix, 0 if none."""
        _, _, tail = self.location.rpartition(":")
        try:
            return int(tail)
        except ValueError:
            return 0

    @property
    def suppression(self) -> str:
        """The inline comment that would silence this finding."""
        return f"# gsn-lint: disable={self.rule_id}"

    def render(self) -> str:
        prefix = f"{self.source}: " if self.source else ""
        where = f" [{self.location}]" if self.location else ""
        return (f"{prefix}{self.rule_id} {self.severity}{where}: "
                f"{self.message}")


@dataclass
class Report:
    """The accumulated findings of one analysis run."""

    findings: List[Finding] = field(default_factory=list)

    def add(self, rule_id: str, message: str, location: str = "",
            source: str = "") -> Finding:
        if rule_id not in RULES:
            raise KeyError(f"unknown rule id {rule_id!r}")
        finding = Finding(rule_id, message, location, source)
        self.findings.append(finding)
        return finding

    def extend(self, other: "Report") -> None:
        self.findings.extend(other.findings)

    def __iter__(self) -> Iterator[Finding]:
        return iter(self.findings)

    def __len__(self) -> int:
        return len(self.findings)

    @property
    def errors(self) -> List[Finding]:
        return [f for f in self.findings if f.severity == ERROR]

    @property
    def warnings(self) -> List[Finding]:
        return [f for f in self.findings if f.severity == WARNING]

    @property
    def ok(self) -> bool:
        return not self.errors

    def by_rule(self, rule_id: str) -> List[Finding]:
        return [f for f in self.findings if f.rule_id == rule_id]

    def rule_ids(self) -> List[str]:
        return sorted({f.rule_id for f in self.findings})

    def render(self) -> str:
        lines = [finding.render() for finding in self.findings]
        lines.append(
            f"gsn-lint: {len(self.errors)} error(s), "
            f"{len(self.warnings)} warning(s)"
        )
        return "\n".join(lines)

    def as_dicts(self) -> List[Dict[str, object]]:
        """JSON-ready findings: one object per finding, carrying the
        stable rule id, the file/line it anchors to, and the exact
        suppression comment (so CI annotations can offer the fix)."""
        return [
            {
                "rule": f.rule_id,
                "severity": f.severity,
                "message": f.message,
                "path": f.path,
                "line": f.line,
                "location": f.location,
                "source": f.source,
                "suppression": f.suppression,
            }
            for f in self.findings
        ]


def catalogue() -> List[Rule]:
    """All rules, in ID order (the reference docs are generated from
    this)."""
    return sorted(_CATALOGUE, key=lambda rule: rule.id)


def describe(rule_id: str) -> Optional[Rule]:
    return RULES.get(rule_id)
