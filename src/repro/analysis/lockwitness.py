"""Runtime lock-order witness.

The static pass (:mod:`repro.analysis.lockgraph`) proves properties of
the *source*; this module checks the *process*. When enabled, every lock
the runtime creates through :func:`repro.concurrency.new_lock` becomes a
:class:`WitnessedLock` that records which locks each thread already
holds at every acquisition.  Each (held → acquired) pair becomes an edge
in an observed acquisition-order graph, keyed by the same class-
qualified lock names the static analyzer uses, so the two worlds can be
diffed directly.

Violations:

- *self-deadlock* — re-acquiring a non-reentrant lock the thread already
  holds.  Always raises (proceeding would hang the process).
- *inversion* — acquiring ``A`` while holding ``B`` when the sanctioned
  order (:data:`repro.concurrency.LOCK_ORDER`) or a previously observed
  edge says ``A`` must come first.  Raises in strict mode, otherwise the
  violation is recorded for the end-of-run report.

Two instances of the *same* class's lock (say, two ``Counter._lock``\\ s)
carry the same name; holding both at once is not ordered by the naming
scheme and is therefore not recorded as an edge (it would read as a
self-cycle).  Re-acquiring the *same instance* is still caught.

Off by default: until :func:`enable` is called, ``new_lock`` hands out
plain ``threading.Lock`` objects and this module costs nothing.
"""

from __future__ import annotations

import threading
from typing import Dict, List, Optional, Set, Tuple

from repro import concurrency

Edge = Tuple[str, str]


class LockOrderViolation(AssertionError):
    """A thread acquired locks against the sanctioned/observed order."""


class WitnessedLock:
    """Drop-in ``threading.Lock``/``RLock`` that reports to a witness."""

    __slots__ = ("name", "reentrant", "_lock", "_witness")

    def __init__(self, name: str, reentrant: bool,
                 witness: "LockWitness") -> None:
        self.name = name
        self.reentrant = reentrant
        self._lock = threading.RLock() if reentrant else threading.Lock()
        self._witness = witness

    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        self._witness.before_acquire(self)
        acquired = self._lock.acquire(blocking, timeout)
        if acquired:
            self._witness.after_acquire(self)
        return acquired

    def release(self) -> None:
        self._lock.release()
        self._witness.after_release(self)

    def __enter__(self) -> bool:
        return self.acquire()

    def __exit__(self, *exc_info: object) -> None:
        self.release()

    def locked(self) -> bool:
        return self._lock.locked()

    def __repr__(self) -> str:
        return f"<WitnessedLock {self.name!r}>"


class LockWitness:
    """Records acquisition order per thread and checks it for cycles."""

    def __init__(self, strict: bool = True,
                 declared: Optional[Tuple[Edge, ...]] = None) -> None:
        self.strict = strict
        self.declared: Set[Edge] = set(
            concurrency.LOCK_ORDER if declared is None else declared
        )
        self._mutex = threading.Lock()
        self._held = threading.local()  # per-thread [(name, lock id)]
        self.edges: Dict[Edge, int] = {}   # observed (outer, inner) -> count
        self.violations: List[str] = []
        self.acquisitions = 0

    # -- bookkeeping ---------------------------------------------------------

    def _stack(self) -> List[Tuple[str, int]]:
        stack = getattr(self._held, "stack", None)
        if stack is None:
            stack = []
            self._held.stack = stack
        return stack

    def make_lock(self, name: str, reentrant: bool) -> WitnessedLock:
        return WitnessedLock(name, reentrant, self)

    # -- acquisition hooks ---------------------------------------------------

    def before_acquire(self, lock: WitnessedLock) -> None:
        stack = self._stack()
        for held_name, held_id in stack:
            if held_id == id(lock) and not lock.reentrant:
                # Proceeding would block this thread forever; always raise.
                raise LockOrderViolation(
                    f"self-deadlock: thread already holds {lock.name!r} "
                    f"(non-reentrant) and is acquiring it again"
                )
        for held_name, held_id in stack:
            if held_name == lock.name:
                continue  # sibling instances of one class: unordered
            edge = (held_name, lock.name)
            reverse = (lock.name, held_name)
            if reverse in self.declared or reverse in self.edges:
                origin = "declared" if reverse in self.declared \
                    else "observed"
                message = (
                    f"lock-order inversion: acquiring {lock.name!r} while "
                    f"holding {held_name!r}, but the {origin} order is "
                    f"{lock.name} < {held_name}"
                )
                self._violate(message)
            with self._mutex:
                self.edges[edge] = self.edges.get(edge, 0) + 1

    def after_acquire(self, lock: WitnessedLock) -> None:
        self._stack().append((lock.name, id(lock)))
        with self._mutex:
            self.acquisitions += 1

    def after_release(self, lock: WitnessedLock) -> None:
        stack = self._stack()
        for index in range(len(stack) - 1, -1, -1):
            if stack[index][1] == id(lock):
                del stack[index]
                return

    def _violate(self, message: str) -> None:
        with self._mutex:
            self.violations.append(message)
        if self.strict:
            raise LockOrderViolation(message)

    # -- reporting -----------------------------------------------------------

    def check_acyclic(self) -> List[List[str]]:
        """Cycles in the observed ∪ declared order graph (ideally none)."""
        graph: Dict[str, Set[str]] = {}
        for before, after in list(self.edges) + sorted(self.declared):
            graph.setdefault(before, set()).add(after)
            graph.setdefault(after, set())
        cycles: List[List[str]] = []
        WHITE, GRAY, BLACK = 0, 1, 2
        color = {node: WHITE for node in graph}
        path: List[str] = []

        def visit(node: str) -> None:
            color[node] = GRAY
            path.append(node)
            for succ in sorted(graph[node]):
                if color[succ] == GRAY:
                    cycles.append(path[path.index(succ):] + [succ])
                elif color[succ] == WHITE:
                    visit(succ)
            path.pop()
            color[node] = BLACK

        for node in sorted(graph):
            if color[node] == WHITE:
                visit(node)
        return cycles

    def status(self) -> dict:
        return {
            "acquisitions": self.acquisitions,
            "edges": len(self.edges),
            "violations": list(self.violations),
            "strict": self.strict,
        }


#: The installed witness, when enabled.
_active: Optional[LockWitness] = None


def enable(strict: bool = True,
           declared: Optional[Tuple[Edge, ...]] = None) -> LockWitness:
    """Install a witness: locks created from now on are instrumented."""
    global _active
    witness = LockWitness(strict=strict, declared=declared)
    _active = witness
    concurrency.install_witness(witness.make_lock)
    return witness


def disable() -> None:
    """Return :func:`repro.concurrency.new_lock` to plain stdlib locks."""
    global _active
    _active = None
    concurrency.install_witness(None)


def active() -> Optional[LockWitness]:
    return _active
