"""Interprocedural lock analysis — the GSN5xx rules.

Runs over the event summaries produced by
:mod:`repro.analysis.callgraph`:

1. every function is seeded as an entry point with an empty held-lock
   context (anything public can be called lock-free), plus whatever its
   ``# requires-lock:`` annotation promises;
2. held-lock contexts are propagated through resolved calls to a fixed
   point (bounded per function, so recursion and combinatorial caller
   sets terminate);
3. each lock acquisition under a non-empty held set contributes edges to
   the global lock-acquisition-order graph; cycles — including cycles
   against the declared ``# lock-order: A < B`` edges and the sanctioned
   :data:`repro.concurrency.LOCK_ORDER` — are **GSN501**;
4. opaque calls classified as blocking under a held lock are **GSN502**;
   callback/listener dispatch under a held lock is **GSN503**;
5. re-acquiring a non-reentrant lock already in the held set is
   **GSN504**.

Findings are suppressed by a trailing ``# gsn-lint: disable=GSN50x`` on
the offending line; a suppressed acquisition also withdraws its edges
from the cycle search (the annotation asserts the order is intentional).
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from repro.analysis.callgraph import (
    Acquire, Call, DeclaredEdge, Opaque, ProgramIndex, BLOCKING, DISPATCH,
)
from repro.analysis.rules import Report

#: Bounds on the fixed point: distinct held-lock contexts tracked per
#: function, and locks per context. Both are far above anything a sane
#: codebase produces; they exist so pathological inputs terminate.
MAX_CONTEXTS_PER_FUNCTION = 24
MAX_LOCKS_PER_CONTEXT = 8

Context = FrozenSet[str]


@dataclass(frozen=True)
class EdgeSite:
    """One place where lock ``after`` was acquired holding ``before``."""

    function: str
    path: str
    line: int


class LockGraph:
    """The acquisition-order graph accumulated during propagation."""

    def __init__(self) -> None:
        self.edges: Dict[Tuple[str, str], List[EdgeSite]] = {}
        self.declared: List[DeclaredEdge] = []

    def add(self, before: str, after: str, site: EdgeSite) -> None:
        sites = self.edges.setdefault((before, after), [])
        if all(s.line != site.line or s.path != site.path for s in sites):
            sites.append(site)

    def nodes(self) -> List[str]:
        names: Set[str] = set()
        for before, after in self.edges:
            names.add(before)
            names.add(after)
        for edge in self.declared:
            names.add(edge.before)
            names.add(edge.after)
        return sorted(names)

    def successors(self) -> Dict[str, Set[str]]:
        graph: Dict[str, Set[str]] = {name: set() for name in self.nodes()}
        for before, after in self.edges:
            graph[before].add(after)
        for edge in self.declared:
            graph[edge.before].add(edge.after)
        return graph

    def cycles(self) -> List[List[str]]:
        """Elementary cycles, one representative per strongly connected
        component that contains a cycle."""
        graph = self.successors()
        index_counter = [0]
        stack: List[str] = []
        lowlink: Dict[str, int] = {}
        number: Dict[str, int] = {}
        on_stack: Set[str] = set()
        components: List[List[str]] = []

        def strongconnect(root: str) -> None:
            work = [(root, iter(sorted(graph[root])))]
            number[root] = lowlink[root] = index_counter[0]
            index_counter[0] += 1
            stack.append(root)
            on_stack.add(root)
            while work:
                node, successors = work[-1]
                advanced = False
                for succ in successors:
                    if succ not in number:
                        number[succ] = lowlink[succ] = index_counter[0]
                        index_counter[0] += 1
                        stack.append(succ)
                        on_stack.add(succ)
                        work.append((succ, iter(sorted(graph[succ]))))
                        advanced = True
                        break
                    if succ in on_stack:
                        lowlink[node] = min(lowlink[node], number[succ])
                if advanced:
                    continue
                work.pop()
                if work:
                    parent = work[-1][0]
                    lowlink[parent] = min(lowlink[parent], lowlink[node])
                if lowlink[node] == number[node]:
                    component = []
                    while True:
                        member = stack.pop()
                        on_stack.discard(member)
                        component.append(member)
                        if member == node:
                            break
                    components.append(component)

        for name in self.nodes():
            if name not in number:
                strongconnect(name)

        cycles: List[List[str]] = []
        for component in components:
            members = set(component)
            if len(component) > 1:
                cycles.append(self._cycle_path(graph, sorted(members)[0],
                                               members))
            elif component[0] in graph[component[0]]:
                cycles.append([component[0], component[0]])
        return cycles

    @staticmethod
    def _cycle_path(graph: Dict[str, Set[str]], start: str,
                    members: Set[str]) -> List[str]:
        """A concrete cycle through ``start`` inside one SCC (BFS)."""
        parents: Dict[str, str] = {}
        queue = [start]
        seen = {start}
        while queue:
            node = queue.pop(0)
            for succ in sorted(graph[node]):
                if succ == start:
                    path = [start]
                    walker = node
                    tail = []
                    while walker != start:
                        tail.append(walker)
                        walker = parents[walker]
                    return [start] + list(reversed(tail)) + [start] \
                        if tail else [start, start]
                if succ in members and succ not in seen:
                    seen.add(succ)
                    parents[succ] = node
                    queue.append(succ)
        return [start, start]  # unreachable for a genuine SCC

    def sites(self, before: str, after: str) -> List[EdgeSite]:
        return self.edges.get((before, after), [])

    def to_dot(self) -> str:
        """GraphViz rendering: observed edges solid, declared dashed."""
        lines = ["digraph lock_order {", '  rankdir="LR";']
        for name in self.nodes():
            lines.append(f'  "{name}";')
        for (before, after), sites in sorted(self.edges.items()):
            label = f"{len(sites)} site(s)"
            lines.append(
                f'  "{before}" -> "{after}" [label="{label}"];'
            )
        seen_declared = {(e.before, e.after) for e in self.declared}
        for before, after in sorted(seen_declared):
            if (before, after) not in self.edges:
                lines.append(
                    f'  "{before}" -> "{after}" [style=dashed, '
                    f'label="declared"];'
                )
        lines.append("}")
        return "\n".join(lines)


class DeadlockAnalysis:
    """One run of the GSN5xx pass over an index."""

    def __init__(self, index: ProgramIndex,
                 sanctioned: Sequence[Tuple[str, str]] = ()) -> None:
        self.index = index
        self.graph = LockGraph()
        self.graph.declared = list(index.declared_order)
        for before, after in sanctioned:
            self.graph.declared.append(
                DeclaredEdge(before, after, "<concurrency.LOCK_ORDER>", 0)
            )
        self.suppressed_count = 0
        self._emitted: Set[Tuple[str, str, int]] = set()

    # -- suppression -------------------------------------------------------

    def _suppressed(self, rule: str, path: str, line: int) -> bool:
        rules = self.index.suppressions.get(path, {}).get(line)
        return rules is not None and rule in rules

    def _emit(self, report: Report, rule: str, message: str,
              function: str, path: str, line: int) -> None:
        key = (rule, path, line)
        if key in self._emitted:
            return
        self._emitted.add(key)
        if self._suppressed(rule, path, line):
            self.suppressed_count += 1
            return
        report.add(rule, message, location=f"{function}:{line}",
                   source=path)

    # -- propagation -------------------------------------------------------

    def run(self, report: Optional[Report] = None) -> Report:
        if report is None:
            report = Report()
        for path, error in self.index.parse_errors:
            report.add("GSN100", f"cannot parse python source: {error}",
                       location=path, source=path)

        contexts: Dict[str, Set[Context]] = {
            qualname: {frozenset()}
            for qualname in self.index.functions
        }
        processed: Set[Tuple[str, Context]] = set()
        worklist: List[str] = sorted(self.index.functions)

        while worklist:
            qualname = worklist.pop()
            info = self.index.functions[qualname]
            base_requires = frozenset(info.requires)
            for ctx in list(contexts[qualname]):
                if (qualname, ctx) in processed:
                    continue
                processed.add((qualname, ctx))
                base = ctx | base_requires
                for event in info.events:
                    if isinstance(event, Acquire):
                        self._acquire(report, info, base, event)
                    elif isinstance(event, Opaque):
                        self._opaque(report, info, base, event)
                    elif isinstance(event, Call):
                        callee_ctx = frozenset(base | set(event.held))
                        if len(callee_ctx) > MAX_LOCKS_PER_CONTEXT:
                            continue
                        for target in event.targets:
                            known = contexts.get(target)
                            if known is None:
                                continue
                            if callee_ctx in known:
                                continue
                            if len(known) >= MAX_CONTEXTS_PER_FUNCTION:
                                continue
                            known.add(callee_ctx)
                            worklist.append(target)

        self._cycles(report)
        return report

    # -- per-event rules ---------------------------------------------------

    def _acquire(self, report: Report, info, base: Context,
                 event: Acquire) -> None:
        held = base | set(event.held)
        if event.lock in held and not event.reentrant:
            self._emit(
                report, "GSN504",
                f"re-acquisition of non-reentrant lock {event.lock} "
                f"(already held on this path)",
                info.qualname, info.path, event.line,
            )
            return
        if self._suppressed("GSN501", info.path, event.line):
            # The annotation vouches for this acquisition's ordering:
            # keep it out of the cycle search entirely.
            self.suppressed_count += 1
            return
        site = EdgeSite(info.qualname, info.path, event.line)
        for held_lock in held:
            if held_lock != event.lock:
                self.graph.add(held_lock, event.lock, site)

    def _opaque(self, report: Report, info, base: Context,
                event: Opaque) -> None:
        held = base | set(event.held)
        if not held or event.kind is None:
            return
        locks = ", ".join(sorted(held))
        if event.kind == BLOCKING:
            self._emit(
                report, "GSN502",
                f"blocking operation {event.desc}() while holding "
                f"{locks} ({event.detail})",
                info.qualname, info.path, event.line,
            )
        elif event.kind == DISPATCH:
            self._emit(
                report, "GSN503",
                f"callback dispatch {event.desc}() while holding {locks} "
                f"— snapshot under the lock, dispatch outside it",
                info.qualname, info.path, event.line,
            )

    def _cycles(self, report: Report) -> None:
        for cycle in self.graph.cycles():
            arrows = " -> ".join(cycle)
            details: List[str] = []
            anchor: Optional[EdgeSite] = None
            for before, after in zip(cycle, cycle[1:]):
                sites = self.graph.sites(before, after)
                if sites:
                    site = sites[0]
                    if anchor is None:
                        anchor = site
                    details.append(
                        f"{before} -> {after} at "
                        f"{os.path.basename(site.path)}:{site.line}"
                    )
                else:
                    details.append(f"{before} -> {after} (declared order)")
            location = f"{anchor.function}:{anchor.line}" if anchor else ""
            source = anchor.path if anchor else "<declared>"
            report.add(
                "GSN501",
                f"lock-order cycle: {arrows} ({'; '.join(details)})",
                location=location, source=source,
            )


# --------------------------------------------------------------------------
# entry points
# --------------------------------------------------------------------------

def _sanctioned_order() -> Sequence[Tuple[str, str]]:
    from repro.concurrency import LOCK_ORDER
    return LOCK_ORDER


def expand_paths(paths: Sequence[str]) -> List[str]:
    """``.py`` files named directly plus all found under directories."""
    out: List[str] = []
    for path in paths:
        if os.path.isdir(path):
            for root, dirs, files in os.walk(path):
                dirs[:] = sorted(
                    d for d in dirs
                    if d not in ("__pycache__", ".git")
                )
                for name in sorted(files):
                    if name.endswith(".py"):
                        out.append(os.path.join(root, name))
        else:
            out.append(path)
    return out


def analyze_deadlocks(paths: Sequence[str],
                      report: Optional[Report] = None,
                      include_sanctioned: bool = True,
                      index: Optional[ProgramIndex] = None,
                      ) -> Tuple[Report, LockGraph]:
    """Run the full GSN5xx pass over ``paths`` (files or directories).

    Returns the report plus the acquisition graph (for ``--graph``).
    ``include_sanctioned`` merges :data:`repro.concurrency.LOCK_ORDER`
    into the declared edges — the repo's own sources are checked against
    the sanctioned order, arbitrary inputs can opt out. Pass a pre-built
    ``index`` to share parsing with the flow pass.
    """
    if index is None:
        files = expand_paths(paths)
        index = ProgramIndex.build(files)
    sanctioned = _sanctioned_order() if include_sanctioned else ()
    analysis = DeadlockAnalysis(index, sanctioned=sanctioned)
    report = analysis.run(report)
    return report, analysis.graph
