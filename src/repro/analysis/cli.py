"""The ``gsn-lint`` command line interface.

Usage::

    gsn-lint [options] PATH...

``.xml`` paths are parsed as virtual-sensor descriptors and run through
the schema, graph, and resource passes *as one deployment set* (so
cross-sensor references resolve). ``.py`` paths (and directories, which
are walked for ``.py`` sources) are run through the intra-procedural
concurrency lint, the interprocedural deadlock pass (GSN501–GSN504),
the exception-flow / resource-lifecycle pass (GSN601–GSN605), the
whole-program data-race pass (GSN801–GSN806), *and* the async-safety
pass (GSN901–GSN905).
``--deadlock`` restricts python inputs to the deadlock pass alone;
``--flow`` to the exception-flow pass alone; ``--race`` to the
data-race pass alone; ``--async`` to the async-safety pass alone (the
flags combine — any subset runs without the intra-procedural lint);
``--all`` is the umbrella: every registered pass, including ``--plan``
over descriptor inputs, in one merged report. ``--graph`` prints the
lock-acquisition-order graph as GraphViz DOT. ``--self-check`` lints
the bundled concurrency-sensitive modules of repro itself. With no
inputs at all (``python -m repro.analysis``) the registered passes and
their rule ranges are listed.

Exit codes: 0 — clean (or warnings only), 1 — error findings,
2 — bad invocation or unreadable input.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import List, Optional, Sequence, Tuple

from repro.analysis import locklint
from repro.analysis.callgraph import ProgramIndex
from repro.analysis.flowgraph import analyze_flow
from repro.analysis.lockgraph import analyze_deadlocks, expand_paths
from repro.analysis.passes import (
    DEFAULT_MEMORY_BUDGET, analyze, attach_descriptor_lines,
)
from repro.analysis.rules import Report, catalogue
from repro.descriptors.model import VirtualSensorDescriptor
from repro.descriptors.xml_io import descriptor_from_file, descriptor_line_index
from repro.exceptions import GSNError
from repro.wrappers.registry import default_registry


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="gsn-lint",
        description="Static analyzer for GSN virtual-sensor deployments.",
    )
    parser.add_argument("paths", nargs="*", metavar="PATH",
                        help="descriptor .xml files, python .py files, "
                             "and/or directories (walked for .py) to lint")
    parser.add_argument("--self-check", action="store_true",
                        help="run the concurrency lint over repro's own "
                             "lock-guarded modules")
    parser.add_argument("--deadlock", action="store_true",
                        help="run only the interprocedural lock-order / "
                             "deadlock pass (GSN501-GSN504) on python "
                             "inputs")
    parser.add_argument("--flow", action="store_true",
                        help="run only the interprocedural exception-flow "
                             "/ resource-lifecycle pass (GSN601-GSN605) "
                             "on python inputs")
    parser.add_argument("--race", action="store_true",
                        help="run only the whole-program data-race pass "
                             "(GSN801-GSN806) on python inputs")
    parser.add_argument("--async", dest="async_pass", action="store_true",
                        help="run only the async-safety pass "
                             "(GSN901-GSN905) on python inputs")
    parser.add_argument("--all", dest="all_passes", action="store_true",
                        help="run every registered pass (GSN1xx-GSN9xx) "
                             "in one merged report (implies --plan)")
    parser.add_argument("--graph", action="store_true",
                        help="print the lock-acquisition-order graph as "
                             "GraphViz DOT (implies the deadlock pass)")
    parser.add_argument("--no-sanctioned-order", action="store_true",
                        help="ignore repro.concurrency.LOCK_ORDER when "
                             "building the lock graph")
    parser.add_argument("--plan", action="store_true",
                        help="also run the deploy-time query-plan pass "
                             "(GSN701-GSN705) over descriptor inputs and "
                             "print the annotated plans")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the rule catalogue and exit")
    parser.add_argument("--list-passes", action="store_true",
                        help="print the registered passes with their rule "
                             "ranges and exit")
    parser.add_argument("--format", choices=("text", "json"),
                        default="text", help="findings output format")
    parser.add_argument("--memory-budget-mb", type=int, default=None,
                        metavar="MB",
                        help="per-source window memory budget for GSN301 "
                             "(default 64)")
    parser.add_argument("--strict-warnings", action="store_true",
                        help="exit nonzero on warnings too")
    parser.add_argument("--external-producers", action="store_true",
                        help="assume remote sources may resolve on other "
                             "nodes (suppresses GSN202/GSN203)")
    parser.add_argument("-q", "--quiet", action="store_true",
                        help="suppress the summary line when clean")
    return parser


def _load_descriptors(paths: Sequence[str], report: Report
                      ) -> Tuple[List[VirtualSensorDescriptor], List[str]]:
    descriptors: List[VirtualSensorDescriptor] = []
    sources: List[str] = []
    for path in paths:
        try:
            descriptors.append(descriptor_from_file(path))
            sources.append(path)
        except GSNError as exc:
            report.add("GSN100", str(exc), source=path)
    return descriptors, sources


def _print_rules() -> None:
    for rule in catalogue():
        print(f"{rule.id}  {rule.severity:7s}  {rule.title}")


#: (name, rule range, one-liner, how to select it) — the pass registry
#: shown by ``--list-passes`` / a bare ``python -m repro.analysis``.
PASSES: Tuple[Tuple[str, str, str, str], ...] = (
    ("schema", "GSN100-GSN111",
     "descriptor schema inference & type checking", "default on .xml"),
    ("graph", "GSN201-GSN205",
     "cross-sensor dependency/addressing graph", "default on .xml"),
    ("resource", "GSN301-GSN305",
     "window-memory / storage-growth estimation", "default on .xml"),
    ("locklint", "GSN401-GSN403",
     "intra-procedural guarded-by lint", "default on .py, --self-check"),
    ("deadlock", "GSN501-GSN504",
     "interprocedural lock-order / deadlock pass", "--deadlock"),
    ("flow", "GSN601-GSN605",
     "exception-flow / resource-lifecycle pass", "--flow"),
    ("plan", "GSN701-GSN705",
     "deploy-time query-plan pass", "--plan"),
    ("race", "GSN801-GSN806",
     "whole-program data-race pass", "--race"),
    ("async", "GSN901-GSN905",
     "async-safety / event-loop pass", "--async"),
)


def _print_passes() -> None:
    print("gsn-lint passes (select with the listed flag; python passes "
          "all run by default on .py inputs; --all runs everything):")
    for name, rules, title, select in PASSES:
        print(f"  {name:9s} {rules:14s} {title:44s} [{select}]")


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.list_rules:
        _print_rules()
        return 0
    if args.list_passes:
        _print_passes()
        return 0
    if args.all_passes:
        args.plan = True

    xml_paths = [p for p in args.paths if p.lower().endswith(".xml")]
    dirs = [p for p in args.paths if os.path.isdir(p)]
    py_paths = [p for p in args.paths
                if p.lower().endswith(".py") and p not in dirs]
    other = [p for p in args.paths
             if p not in xml_paths + py_paths + dirs]
    if other:
        parser.error(f"unsupported input(s): {other} "
                     f"(expected .xml descriptors, .py sources, or "
                     f"directories)")
    deadlock_only = args.deadlock or args.graph
    flow_only = args.flow
    race_only = args.race
    async_only = args.async_pass
    if (deadlock_only or flow_only or race_only or async_only) \
            and xml_paths:
        parser.error("--deadlock/--graph/--flow/--race/--async apply to "
                     "python inputs only")
    if args.self_check:
        package_root = os.path.dirname(os.path.dirname(
            os.path.abspath(__file__)))  # .../src/repro
        for relative in locklint.SELF_CHECK_MODULES:
            py_paths.append(os.path.join(package_root, relative))
    if not xml_paths and not py_paths and not dirs:
        # Bare invocation: list what this tool can do instead of erroring
        # (``python -m repro.analysis`` is documented to do exactly this).
        _print_passes()
        return 0

    report = Report()
    descriptors, sources = _load_descriptors(xml_paths, report)
    if descriptors:
        budget = (args.memory_budget_mb * 1024 * 1024
                  if args.memory_budget_mb else DEFAULT_MEMORY_BUDGET)
        report.extend(analyze(
            descriptors, registry=default_registry(), sources=sources,
            memory_budget=budget,
            external_producers=args.external_producers,
            plan=args.plan,
        ))
        if args.plan and args.format == "text":
            from repro.analysis.planpass import plan_descriptor
            for descriptor, source in zip(descriptors, sources):
                rendered = plan_descriptor(
                    descriptor, registry=default_registry(), source=source
                ).render()
                if rendered:
                    print(rendered)
    if xml_paths:
        line_indexes = {}
        for path in xml_paths:
            try:
                with open(path, "r", encoding="utf-8") as handle:
                    line_indexes[path] = descriptor_line_index(handle.read())
            except OSError:
                continue
        attach_descriptor_lines(report, line_indexes)

    missing = [p for p in py_paths + dirs if not os.path.exists(p)]
    if missing:
        print(f"gsn-lint: cannot read {missing}", file=sys.stderr)
        return 2
    python_inputs = expand_paths(py_paths + dirs)
    graph = None
    if python_inputs:
        restricted = deadlock_only or flow_only or race_only or async_only
        run_deadlock = deadlock_only or not restricted
        run_flow = flow_only or not restricted
        run_race = race_only or not restricted
        run_async = async_only or not restricted
        if not restricted:
            locklint.lint_files(python_inputs, report)
        index = ProgramIndex.build(python_inputs)
        if run_deadlock:
            __, graph = analyze_deadlocks(
                python_inputs, report=report,
                include_sanctioned=not args.no_sanctioned_order,
                index=index,
            )
        if run_flow:
            analyze_flow(python_inputs, report=report, index=index,
                         include_parse_errors=not run_deadlock)
        if run_race:
            from repro.analysis.racegraph import analyze_races
            analyze_races(python_inputs, report=report, index=index,
                          include_parse_errors=not (run_deadlock
                                                    or run_flow))
        if run_async:
            from repro.analysis.asyncgraph import analyze_async
            analyze_async(python_inputs, report=report, index=index,
                          include_parse_errors=not (run_deadlock
                                                    or run_flow
                                                    or run_race))

    failed = bool(report.errors) or (args.strict_warnings
                                     and bool(report.warnings))
    if args.graph and graph is not None:
        print(graph.to_dot())
        if report.findings:
            print(report.render(), file=sys.stderr)
    elif args.format == "json":
        print(json.dumps({"findings": report.as_dicts(),
                          "errors": len(report.errors),
                          "warnings": len(report.warnings)}, indent=2))
    elif report.findings or not args.quiet:
        print(report.render())
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
