"""Whole-program async-safety pass — the GSN9xx rules.

The deadlock pass (GSN5xx) proves lock *ordering*, the race pass
(GSN8xx) proves shared state is *guarded*; this pass proves that an
event loop stays *live and owned* next to the threaded runtime.  It
runs over the same :class:`repro.analysis.callgraph.ProgramIndex` and
judges five failure modes of mixing asyncio with threads:

- **GSN901** blocking call reachable from a coroutine.  The
  *coroutine-reachable* set is computed interprocedurally: every
  ``async def`` plus every callback handed to a loop-bound scheduler
  (``call_soon``/``call_later``/``call_at``/``add_done_callback``)
  seeds a BFS through resolved calls.  Inside that set, any
  synchronous blocking operation — ``time.sleep``, socket I/O,
  sync-queue ``get``/``put`` (bounded or not: a timeout still stalls
  the loop), thread ``join``, database ``commit``, bare ``open``,
  ``Lock.acquire`` and ``with <sync lock>:`` — freezes every pending
  task on the loop;
- **GSN902** synchronous lock held across an ``await``.  The await
  suspends the coroutine *with the lock held*; any other task (or
  thread) needing the lock deadlocks against a parked frame.  Judged
  from the scanner's :class:`~repro.analysis.callgraph.Await` events
  joined with the locally held lock set and ``# requires-lock:``
  annotations;
- **GSN903** unawaited coroutine / fire-and-forget task.  A bare
  expression statement calling an ``async def`` never runs; a bare
  ``create_task``/``ensure_future``/``run_coroutine_threadsafe``
  drops the only reference — its exception disappears exactly like
  the GSN602 dying-thread case (keep the task and attach a done
  callback that routes to the crash witness or a log);
- **GSN904** event-loop thread-affinity violation.  Loop-bound APIs
  (``call_soon``, ``call_later``, ``create_task``, ``stop``, ...)
  invoked on a ``loop`` receiver from code that is neither
  coroutine-reachable nor the loop's bootstrap thread (the function
  that calls ``run_until_complete``/``run_forever``/``asyncio.run``)
  must go through ``call_soon_threadsafe``.  The same domain covers
  state: attributes declared ``# owned-by: loop`` may be *written*
  only from loop context (reads from other threads stay benign under
  the GIL, mirroring the GSN8xx read policy — and the race pass
  exempts loop-owned attributes in exchange);
- **GSN905** unbounded ``asyncio.Queue()`` — no ``maxsize`` means no
  backpressure: a fast producer grows the queue without limit and the
  shed policy can never trigger.

Findings are suppressed by a trailing ``# gsn-lint: disable=GSN90x``
on the offending line.  The runtime counterpart is
:mod:`repro.analysis.loopwitness`, which asserts an event-loop stall
ceiling while the suite runs.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.analysis.callgraph import (
    Access, Acquire, Await, Call, FunctionInfo, ProgramIndex,
    _call_has_bound, receiver_chain,
)
from repro.analysis.flowgraph import _Resolver, _walk_scope
from repro.analysis.lockgraph import expand_paths
from repro.analysis.rules import Report

#: Terminal call names that block the calling thread unconditionally.
_BLOCKING_ALWAYS = frozenset({
    "sleep", "urlopen", "getresponse", "accept", "recv", "recvfrom",
    "sendall", "connect", "select",
})
#: Receivers that look like threads (``<thread>.join()`` stalls).
_THREADISH = re.compile(r"thread|proc|worker|pool", re.IGNORECASE)
#: Receivers that look like synchronous queues.
_QUEUEISH = re.compile(r"queue", re.IGNORECASE)
#: Receivers that look like database connections.
_CONNECTIONISH = re.compile(r"conn|db\b|database", re.IGNORECASE)

#: Loop APIs that must run on the loop's own thread.
_LOOP_BOUND = frozenset({
    "call_soon", "call_later", "call_at", "create_task", "ensure_future",
    "stop", "close", "run_until_complete", "run_forever",
})
#: Loop APIs that are explicitly safe from foreign threads.
_THREADSAFE = frozenset({"call_soon_threadsafe", "run_coroutine_threadsafe"})

#: ``loop.<registrar>(callback, ...)`` — the callback runs on the loop.
_CALLBACK_ARG = {
    "call_soon": 0,
    "call_soon_threadsafe": 0,
    "add_done_callback": 0,
    "call_later": 1,
    "call_at": 1,
}

#: Attribute writes that count for the owned-by-loop domain.
_WRITEISH = frozenset({"write", "rmw", "mutate"})


@dataclass(frozen=True)
class BlockSite:
    """One synchronous blocking operation in a function body."""

    desc: str
    detail: str
    line: int


def _is_asyncio_chain(chain: str) -> bool:
    return chain == "asyncio" or chain.startswith("asyncio.")


class AsyncAnalysis:
    """One run of the GSN9xx pass over an index."""

    def __init__(self, index: ProgramIndex) -> None:
        self.index = index
        #: Coroutine/loop-callback roots: qualname -> kind.
        self.roots: Dict[str, str] = {}
        #: Functions that bootstrap a loop (run_until_complete et al.).
        self.bootstrap: Set[str] = set()
        #: qualname -> root qualnames whose coroutine context reaches it.
        self.reaching: Dict[str, Set[str]] = {}
        self.suppressed_count = 0
        self._resolvers: Dict[str, _Resolver] = {}
        self._emitted: Set[Tuple[str, str, int]] = set()

    # -- plumbing ----------------------------------------------------------

    def _resolver(self, qualname: str) -> _Resolver:
        resolver = self._resolvers.get(qualname)
        if resolver is None:
            resolver = _Resolver(self.index, self.index.functions[qualname])
            self._resolvers[qualname] = resolver
        return resolver

    def _suppressed(self, rule: str, path: str, line: int) -> bool:
        rules = self.index.suppressions.get(path, {}).get(line)
        return rules is not None and rule in rules

    def _emit(self, report: Report, rule: str, message: str,
              function: str, path: str, line: int) -> None:
        key = (rule, path, line)
        if key in self._emitted:
            return
        self._emitted.add(key)
        if self._suppressed(rule, path, line):
            self.suppressed_count += 1
            return
        report.add(rule, message, location=f"{function}:{line}",
                   source=path)

    # -- root discovery and reachability -----------------------------------

    def discover(self) -> None:
        for qualname in sorted(self.index.functions):
            info = self.index.functions[qualname]
            if info.is_async:
                self.roots.setdefault(qualname, "coroutine")
            for node in _walk_scope(info.node):
                if not isinstance(node, ast.Call):
                    continue
                func = node.func
                if not isinstance(func, ast.Attribute):
                    continue
                name = func.attr
                chain = receiver_chain(func.value)
                arg_index = _CALLBACK_ARG.get(name)
                if arg_index is not None and (
                        "loop" in chain.lower() or name == "add_done_callback"
                        or _is_asyncio_chain(chain)):
                    candidates = list(node.args[arg_index:arg_index + 1]) + [
                        kw.value for kw in node.keywords
                        if kw.arg in ("callback", "func")
                    ]
                    resolver = self._resolver(qualname)
                    for candidate in candidates:
                        for target in resolver.entry_targets(candidate):
                            self.roots.setdefault(target, "loop-callback")
                if name in ("run_until_complete", "run_forever") \
                        and "loop" in chain.lower():
                    self.bootstrap.add(qualname)
                if name == "run" and _is_asyncio_chain(chain):
                    self.bootstrap.add(qualname)

    def solve(self) -> None:
        if not self.roots:
            self.discover()
        edges: Dict[str, Set[str]] = {}
        for qualname, info in self.index.functions.items():
            targets: Set[str] = set()
            for event in info.events:
                if isinstance(event, Call):
                    targets.update(t for t in event.targets
                                   if t in self.index.functions)
            edges[qualname] = targets
        for root in sorted(self.roots):
            if root not in self.index.functions:
                continue
            seen = self.reaching.setdefault(root, set())
            if root in seen:
                continue
            seen.add(root)
            queue = [root]
            while queue:
                current = queue.pop()
                for callee in edges.get(current, ()):
                    reached = self.reaching.setdefault(callee, set())
                    if root not in reached:
                        reached.add(root)
                        queue.append(callee)

    @property
    def loop_context(self) -> Set[str]:
        """Functions that can run on an event-loop thread."""
        return set(self.reaching)

    # -- GSN901: blocking calls in coroutine context -----------------------

    def _blocking_reason(self, name: str, chain: str,
                         node: ast.Call) -> Optional[str]:
        if _is_asyncio_chain(chain):
            return None
        if name in _BLOCKING_ALWAYS:
            return f"{name}() blocks the calling thread"
        if name == "open" and not chain:
            return "synchronous file I/O"
        if name == "join" and _THREADISH.search(chain):
            return "join() on a thread (bounded or not, it stalls the loop)"
        if name in ("get", "put") and _QUEUEISH.search(chain):
            return (f"synchronous queue {name}() — even a timeout parks "
                    f"every task on the loop")
        if name == "wait" and not _call_has_bound(node):
            return "wait() without a timeout"
        if name == "acquire":
            return "synchronous lock acquire"
        if name == "commit" and _CONNECTIONISH.search(chain):
            return "commit on a shared database connection"
        return None

    def _blocking_sites(self, info: FunctionInfo) -> List[BlockSite]:
        sites: List[BlockSite] = []
        awaited: Set[int] = set()
        for node in _walk_scope(info.node):
            if isinstance(node, ast.Await) \
                    and isinstance(node.value, ast.Call):
                awaited.add(id(node.value))
        for node in _walk_scope(info.node):
            if not isinstance(node, ast.Call) or id(node) in awaited:
                continue
            func = node.func
            if isinstance(func, ast.Attribute):
                name, chain = func.attr, receiver_chain(func.value)
            elif isinstance(func, ast.Name):
                name, chain = func.id, ""
            else:
                continue
            reason = self._blocking_reason(name, chain, node)
            if reason is not None:
                desc = f"{chain}.{name}" if chain else name
                sites.append(BlockSite(desc, reason, node.lineno))
        for event in info.events:
            if isinstance(event, Acquire):
                sites.append(BlockSite(
                    f"with {event.lock}",
                    f"acquires sync lock {event.lock!r}", event.line))
        return sites

    def _judge_blocking(self, report: Report) -> None:
        for qualname in sorted(self.reaching):
            info = self.index.functions.get(qualname)
            if info is None:
                continue
            roots = self.reaching[qualname]
            root = sorted(roots)[0]
            via = "" if qualname == root else f" (via coroutine {root})"
            for site in self._blocking_sites(info):
                self._emit(
                    report, "GSN901",
                    f"{qualname} runs on the event loop{via} but "
                    f"{site.desc} — {site.detail}; every task on the "
                    f"loop stalls behind it",
                    qualname, info.path, site.line,
                )

    # -- GSN902: sync lock held across await -------------------------------

    def _judge_awaits(self, report: Report) -> None:
        for qualname in sorted(self.index.functions):
            info = self.index.functions[qualname]
            if not info.is_async:
                continue
            requires = tuple(info.requires)
            for event in info.events:
                if not isinstance(event, Await):
                    continue
                held = tuple(dict.fromkeys(event.held + requires))
                if not held:
                    continue
                locks = ", ".join(held)
                self._emit(
                    report, "GSN902",
                    f"{qualname} awaits while holding sync lock(s) "
                    f"{locks} — the coroutine parks with the lock held "
                    f"and anything else needing it deadlocks; release "
                    f"before awaiting (or hand off through a queue)",
                    qualname, info.path, event.line,
                )

    # -- GSN903: unawaited coroutines / dropped tasks ----------------------

    def _judge_fire_and_forget(self, report: Report) -> None:
        for qualname in sorted(self.index.functions):
            info = self.index.functions[qualname]
            resolver: Optional[_Resolver] = None
            for node in _walk_scope(info.node):
                if not isinstance(node, ast.Expr) \
                        or not isinstance(node.value, ast.Call):
                    continue
                call = node.value
                func = call.func
                name = func.attr if isinstance(func, ast.Attribute) else (
                    func.id if isinstance(func, ast.Name) else None
                )
                if name in ("create_task", "ensure_future",
                            "run_coroutine_threadsafe"):
                    self._emit(
                        report, "GSN903",
                        f"{qualname} fires and forgets a task "
                        f"({name}(...) result dropped) — its exception "
                        f"vanishes like a dying thread; keep the task "
                        f"and add a done callback that logs/witnesses "
                        f"the failure",
                        qualname, info.path, node.lineno,
                    )
                    continue
                if resolver is None:
                    resolver = self._resolver(qualname)
                targets = resolver.targets_of(call)
                async_targets = [
                    t for t in targets
                    if self.index.functions[t].is_async
                ]
                if async_targets:
                    self._emit(
                        report, "GSN903",
                        f"{qualname} calls coroutine "
                        f"{async_targets[0]}() without awaiting it — "
                        f"the coroutine object is created and dropped, "
                        f"the body never runs",
                        qualname, info.path, node.lineno,
                    )

    # -- GSN904: loop thread affinity --------------------------------------

    def _loop_owned(self, cls: str, attr: str) -> bool:
        return any(attr in info.loop_owned
                   for info in self.index._mro(cls))

    def _judge_affinity(self, report: Report) -> None:
        allowed = self.loop_context | self.bootstrap
        for qualname in sorted(self.index.functions):
            if qualname in allowed:
                continue
            info = self.index.functions[qualname]
            for node in _walk_scope(info.node):
                if not isinstance(node, ast.Call) \
                        or not isinstance(node.func, ast.Attribute):
                    continue
                name = node.func.attr
                chain = receiver_chain(node.func.value)
                if name in _THREADSAFE:
                    continue
                if name in _LOOP_BOUND and "loop" in chain.lower():
                    self._emit(
                        report, "GSN904",
                        f"{qualname} calls {chain}.{name}() from a "
                        f"foreign thread — loop APIs are bound to the "
                        f"loop's own thread; use "
                        f"call_soon_threadsafe/run_coroutine_threadsafe",
                        qualname, info.path, node.lineno,
                    )
            in_init = info.name == "__init__"
            for event in info.events:
                if not isinstance(event, Access) \
                        or event.kind not in _WRITEISH:
                    continue
                if in_init and info.class_name == event.cls:
                    continue
                if self._loop_owned(event.cls, event.attr):
                    self._emit(
                        report, "GSN904",
                        f"{qualname} writes loop-owned state "
                        f"{event.cls}.{event.attr} from a foreign "
                        f"thread — '# owned-by: loop' attributes mutate "
                        f"only on the loop (route through "
                        f"call_soon_threadsafe or a hand-off queue)",
                        qualname, info.path, event.line,
                    )

    # -- GSN905: unbounded asyncio queues ----------------------------------

    @staticmethod
    def _queue_bounded(node: ast.Call) -> bool:
        bounds: List[ast.AST] = list(node.args[:1]) + [
            kw.value for kw in node.keywords if kw.arg == "maxsize"
        ]
        if not bounds:
            return False
        bound = bounds[0]
        if isinstance(bound, ast.Constant) and bound.value in (0, None):
            return False
        return True

    def _judge_queues(self, report: Report) -> None:
        for qualname in sorted(self.index.functions):
            info = self.index.functions[qualname]
            for node in _walk_scope(info.node):
                if not isinstance(node, ast.Call) \
                        or not isinstance(node.func, ast.Attribute):
                    continue
                if node.func.attr != "Queue" \
                        or not _is_asyncio_chain(
                            receiver_chain(node.func.value)):
                    continue
                if self._queue_bounded(node):
                    continue
                self._emit(
                    report, "GSN905",
                    f"{qualname} creates an unbounded asyncio.Queue() — "
                    f"without a maxsize there is no backpressure and no "
                    f"shed point; pass maxsize and handle QueueFull "
                    f"explicitly",
                    qualname, info.path, node.lineno,
                )

    # -- entry point -------------------------------------------------------

    def run(self, report: Optional[Report] = None,
            include_parse_errors: bool = False) -> Report:
        if report is None:
            report = Report()
        if include_parse_errors:
            for path, error in self.index.parse_errors:
                report.add("GSN100", f"cannot parse python source: {error}",
                           location=path, source=path)
        self.solve()
        self._judge_blocking(report)
        self._judge_awaits(report)
        self._judge_fire_and_forget(report)
        self._judge_affinity(report)
        self._judge_queues(report)
        return report


def analyze_async(paths: Sequence[str],
                  report: Optional[Report] = None,
                  index: Optional[ProgramIndex] = None,
                  include_parse_errors: bool = True,
                  ) -> Tuple[Report, AsyncAnalysis]:
    """Run the full GSN9xx pass over ``paths`` (files or directories).

    Pass a pre-built ``index`` to share parsing with the other
    interprocedural passes (and set ``include_parse_errors=False`` when
    one of them already reported parse failures).
    """
    if index is None:
        index = ProgramIndex.build(expand_paths(paths))
    analysis = AsyncAnalysis(index)
    report = analysis.run(report, include_parse_errors=include_parse_errors)
    return report, analysis
