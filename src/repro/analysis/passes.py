"""The descriptor-level analysis passes of gsn-lint.

Three passes over one *deployment set* (any number of virtual-sensor
descriptors analyzed together):

1. **Schema pass** — derives each wrapper's output schema from the
   registry, propagates it through the source-query ASTs into the
   stream relations and the output query, and checks the result against
   the declared ``<output-structure>`` (rules GSN1xx).
2. **Graph pass** — builds the cross-virtual-sensor dependency graph
   from remote/logical-addressing sources and flags cycles, dangling
   producers, and unsatisfiable predicates (rules GSN2xx).
3. **Resource pass** — bounds per-source window memory (count- and
   time-based windows × sampling rate) and warns on unbounded-growth
   configurations (rules GSN3xx).

Everything is reported as :class:`~repro.analysis.rules.Finding`;
structurally-valid descriptors never make the analyzer raise.
"""

from __future__ import annotations

import math
from dataclasses import replace
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.datatypes import DataType
from repro.descriptors.model import (
    StreamSourceSpec, VirtualSensorDescriptor,
)
from repro.descriptors.validation import validate_descriptor
from repro.exceptions import GSNError, SQLError, ValidationError
from repro.gsntime.duration import parse_window_spec
from repro.sqlengine.ast_nodes import SelectStatement
from repro.sqlengine.parser import parse_select
from repro.sqlengine.planner import plan_select
from repro.sqlengine.rewriter import WRAPPER_TABLE, statement_tables
from repro.streams.schema import TIMED_FIELD, StreamSchema
from repro.wrappers.registry import WrapperRegistry

from repro.analysis.rules import Report
from repro.analysis.schema_infer import (
    RelSchema, infer_output_schema, wrapper_relation_schema,
)

#: Default per-source window memory budget: 64 MiB.
DEFAULT_MEMORY_BUDGET = 64 * 1024 * 1024

#: Count windows above this size are flagged as suspicious outright.
HUGE_COUNT_WINDOW = 1_000_000

#: Estimated per-element Python object overhead (StreamElement + refs).
_ELEMENT_OVERHEAD = 96

_FIELD_BYTES = {
    DataType.INTEGER: 8,
    DataType.DOUBLE: 8,
    DataType.TIMESTAMP: 8,
    DataType.BOOLEAN: 8,
    DataType.VARCHAR: 64,
    DataType.BINARY: 1024,
}

#: Resolves a remote source's predicates to the producing sensor's output
#: schema (None when not statically resolvable).
RemoteResolver = Callable[[Dict[str, str]], Optional[StreamSchema]]


def analyze(descriptors: Sequence[VirtualSensorDescriptor],
            registry: Optional[WrapperRegistry] = None,
            sources: Optional[Sequence[str]] = None,
            memory_budget: int = DEFAULT_MEMORY_BUDGET,
            external_producers: bool = False,
            plan: bool = False) -> Report:
    """Run all descriptor passes over a deployment set.

    ``sources`` optionally names the file each descriptor came from (for
    findings output). ``external_producers`` suppresses dangling-producer
    findings (GSN202/GSN203) — the right mode when the set is deployed
    into a peer network where producers may live on other nodes.
    ``plan`` additionally runs the deploy-time query-plan pass
    (:mod:`repro.analysis.planpass`, rules GSN7xx); it is opt-in because
    GSN701 warns on *any* source query off the incremental fast path.
    """
    report = Report()
    files = list(sources) if sources is not None else [""] * len(descriptors)
    if len(files) != len(descriptors):
        raise ValueError("sources must align with descriptors")

    producers: Dict[str, VirtualSensorDescriptor] = {}
    for descriptor, source in zip(descriptors, files):
        if descriptor.name in producers:
            report.add("GSN205",
                       f"virtual sensor {descriptor.name!r} is declared "
                       f"more than once in this deployment set",
                       location=descriptor.name, source=source)
        producers.setdefault(descriptor.name, descriptor)

    resolver = _make_resolver(descriptors)
    for descriptor, source in zip(descriptors, files):
        analyze_descriptor(descriptor, registry=registry, report=report,
                           source=source, memory_budget=memory_budget,
                           remote_resolver=resolver, plan=plan)

    _graph_pass(list(zip(descriptors, files)), report,
                external_producers=external_producers)
    return report


def analyze_descriptor(descriptor: VirtualSensorDescriptor,
                       registry: Optional[WrapperRegistry] = None,
                       report: Optional[Report] = None,
                       source: str = "",
                       memory_budget: int = DEFAULT_MEMORY_BUDGET,
                       remote_resolver: Optional[RemoteResolver] = None,
                       plan: bool = False) -> Report:
    """Schema + resource passes for one descriptor (graph findings need
    the full set; use :func:`analyze` for those)."""
    if report is None:
        report = Report()
    try:
        validate_descriptor(descriptor)
    except ValidationError as exc:
        report.add("GSN100", str(exc), location=descriptor.name,
                   source=source)
        return report
    wrapper_schemas = _derive_wrapper_schemas(descriptor, registry, report,
                                              source, remote_resolver)
    _schema_pass(descriptor, wrapper_schemas, report, source)
    _resource_pass(descriptor, wrapper_schemas, report, source,
                   memory_budget)
    if plan:
        # Deferred import: planpass builds on this module's helpers.
        from repro.analysis.planpass import plan_descriptor
        plan_descriptor(descriptor, registry=registry, report=report,
                        source=source, wrapper_schemas=wrapper_schemas,
                        remote_resolver=remote_resolver)
    return report


def schema_check(descriptor: VirtualSensorDescriptor,
                 registry: Optional[WrapperRegistry],
                 report: Optional[Report] = None,
                 source: str = "",
                 remote_resolver: Optional[RemoteResolver] = None
                 ) -> Report:
    """Only the schema pass (GSN1xx rules) for one descriptor.

    Assumes the descriptor already passed basic validation; this is the
    hook ``validate_descriptor(..., registry=...)`` folds in to make
    ``SELECT *`` and column/type mistakes static errors.
    """
    if report is None:
        report = Report()
    wrapper_schemas = _derive_wrapper_schemas(descriptor, registry, report,
                                              source, remote_resolver)
    _schema_pass(descriptor, wrapper_schemas, report, source)
    return report


def _derive_wrapper_schemas(descriptor: VirtualSensorDescriptor,
                            registry: Optional[WrapperRegistry],
                            report: Report, source: str,
                            remote_resolver: Optional[RemoteResolver]
                            ) -> Dict[Tuple[str, str],
                                      Optional[StreamSchema]]:
    """(stream name, alias) -> wrapper output schema (None = unknown),
    reporting GSN108/GSN109 findings along the way."""
    schemas: Dict[Tuple[str, str], Optional[StreamSchema]] = {}
    for stream in descriptor.input_streams:
        for src in stream.sources:
            context = f"{descriptor.name}/{stream.name}/{src.alias}"
            schemas[(stream.name, src.alias)] = _wrapper_schema(
                src, registry, report, source, context, remote_resolver
            )
    return schemas


# --------------------------------------------------------------------------
# Pass 1: schema inference & type checking
# --------------------------------------------------------------------------

def _schema_pass(descriptor: VirtualSensorDescriptor,
                 wrapper_schemas: Dict[Tuple[str, str],
                                       Optional[StreamSchema]],
                 report: Report, source: str) -> None:
    declared: RelSchema = {
        f.name: f.type for f in descriptor.output_structure
    }

    for stream in descriptor.input_streams:
        alias_schemas: Dict[str, Optional[RelSchema]] = {}
        for src in stream.sources:
            context = f"{descriptor.name}/{stream.name}/{src.alias}"
            alias_schemas[src.alias] = _infer_source_query(
                src, wrapper_schemas[(stream.name, src.alias)],
                report, source, context
            )

        context = f"{descriptor.name}/{stream.name}"
        statement = _parse(stream.query, f"{context} stream query",
                           report, source)
        if statement is None:
            continue
        used = statement_tables(statement) & set(alias_schemas)
        if any(alias_schemas[alias] is None for alias in used):
            report.add("GSN108",
                       "stream query reads source(s) with statically "
                       "unknown schema; output checks skipped",
                       location=context, source=source)
            continue
        tables = {alias: schema for alias, schema in alias_schemas.items()
                  if schema is not None}
        inferred = infer_output_schema(statement, tables, report,
                                       f"{context} stream query", source)
        if inferred is not None:
            _check_output(descriptor, inferred, declared, report, source,
                          context)


def _wrapper_schema(src: StreamSourceSpec,
                    registry: Optional[WrapperRegistry],
                    report: Report, source: str, context: str,
                    remote_resolver: Optional[RemoteResolver]
                    ) -> Optional[StreamSchema]:
    """The output schema of the wrapper feeding ``src``, or ``None`` when
    it cannot be derived statically."""
    name = src.address.wrapper
    if name == "remote":
        if remote_resolver is not None:
            resolved = remote_resolver(dict(src.address.predicates))
            if resolved is not None:
                return resolved
        report.add("GSN108",
                   f"remote source schema not statically resolvable "
                   f"(predicates: {dict(src.address.predicates)})",
                   location=context, source=source)
        return None
    if registry is None:
        report.add("GSN108",
                   f"no wrapper registry supplied; schema of wrapper "
                   f"{name!r} unknown", location=context, source=source)
        return None
    if name not in registry:
        report.add("GSN109",
                   f"unknown wrapper {name!r}; known: "
                   f"{', '.join(registry.names())}",
                   location=context, source=source)
        return None
    try:
        wrapper = registry.create(name)
        wrapper.configure(src.address.predicates)
    except Exception as exc:
        report.add("GSN109",
                   f"wrapper {name!r} rejected its address predicates: "
                   f"{exc}", location=context, source=source)
        return None
    try:
        return wrapper.output_schema()
    except Exception:
        # Dynamic-schema wrappers (replay traces, scripted sources) only
        # know their schema at runtime.
        report.add("GSN108",
                   f"wrapper {name!r} has a runtime-determined schema",
                   location=context, source=source)
        return None


def _infer_source_query(src: StreamSourceSpec,
                        wrapper_schema: Optional[StreamSchema],
                        report: Report, source: str, context: str
                        ) -> Optional[RelSchema]:
    statement = _parse(src.query, f"{context} source query", report, source)
    if statement is None:
        return None
    illegal = statement_tables(statement) - {WRAPPER_TABLE}
    if illegal:
        report.add("GSN102",
                   f"source query may only read WRAPPER, found "
                   f"{sorted(illegal)}", location=context, source=source)
        return None
    if wrapper_schema is None:
        return None
    tables = {WRAPPER_TABLE: wrapper_relation_schema(wrapper_schema)}
    return infer_output_schema(statement, tables, report,
                               f"{context} source query", source)


def _parse(sql: str, context: str, report: Report,
           source: str) -> Optional[SelectStatement]:
    try:
        statement = parse_select(sql)
        plan_select(statement)  # catches planner-level errors too
        return statement
    except SQLError as exc:
        report.add("GSN100", f"{context}: {exc}", location=context,
                   source=source)
        return None


def _check_output(descriptor: VirtualSensorDescriptor,
                  inferred: RelSchema, declared: RelSchema,
                  report: Report, source: str, context: str) -> None:
    produced = {name: dtype for name, dtype in inferred.items()
                if name != TIMED_FIELD}
    for name, declared_type in declared.items():
        if name not in produced:
            report.add("GSN105",
                       f"declared output field {name!r} is never produced "
                       f"by the stream query (will always be NULL); "
                       f"query produces: {', '.join(produced) or '(none)'}",
                       location=context, source=source)
            continue
        produced_type = produced[name]
        if produced_type is None:
            continue
        problem = _output_mismatch(produced_type, declared_type)
        if problem:
            report.add("GSN107",
                       f"output field {name!r}: {problem}",
                       location=context, source=source)
    for name in produced:
        if name not in declared:
            report.add("GSN106",
                       f"query column {name!r} is not in the "
                       f"output-structure and will be dropped",
                       location=context, source=source)


def _output_mismatch(produced: DataType,
                     declared: DataType) -> Optional[str]:
    """A message when a produced value can never (or suspiciously) coerce
    into the declared field type; ``None`` when compatible."""
    numeric = {DataType.INTEGER, DataType.DOUBLE, DataType.TIMESTAMP,
               DataType.BOOLEAN}
    if declared is DataType.VARCHAR:
        return None  # everything renders as text
    if declared is DataType.BINARY:
        if produced in (DataType.BINARY, DataType.VARCHAR):
            return None
        return (f"query produces {produced.value}, which cannot convert "
                f"to binary")
    if declared is DataType.BOOLEAN:
        if produced in (DataType.BOOLEAN, DataType.INTEGER,
                        DataType.VARCHAR):
            return None
        return (f"query produces {produced.value}, which cannot convert "
                f"to boolean")
    # declared is numeric (integer / double / timestamp)
    if produced in numeric:
        return None
    return (f"query produces {produced.value} but the field is declared "
            f"{declared.value}")


# --------------------------------------------------------------------------
# Pass 2: dependency-graph analysis
# --------------------------------------------------------------------------

def _matches(predicates: Dict[str, str],
             producer: VirtualSensorDescriptor) -> bool:
    published = {k.lower(): str(v).lower()
                 for k, v in producer.discovery_predicates.items()}
    return all(published.get(k.lower()) == str(v).lower()
               for k, v in predicates.items())


def _make_resolver(descriptors: Sequence[VirtualSensorDescriptor]
                   ) -> RemoteResolver:
    def resolve(predicates: Dict[str, str]) -> Optional[StreamSchema]:
        matches = [d for d in descriptors if _matches(predicates, d)]
        if len(matches) == 1:
            return matches[0].output_structure
        return None
    return resolve


def _graph_pass(pairs: List[Tuple[VirtualSensorDescriptor, str]],
                report: Report, external_producers: bool) -> None:
    descriptors = [d for d, __ in pairs]
    edges: Dict[str, List[str]] = {d.name: [] for d in descriptors}

    for descriptor, source in pairs:
        for stream in descriptor.input_streams:
            for src in stream.sources:
                if src.address.wrapper != "remote":
                    continue
                context = (f"{descriptor.name}/{stream.name}/{src.alias}")
                predicates = dict(src.address.predicates)
                matches = [d for d in descriptors
                           if _matches(predicates, d)]
                for match in matches:
                    edges[descriptor.name].append(match.name)
                if len(matches) > 1 and not external_producers:
                    report.add("GSN203",
                               f"remote source matches "
                               f"{len(matches)} producers: "
                               f"{sorted(d.name for d in matches)}",
                               location=context, source=source)
                if matches or external_producers:
                    continue
                named = predicates.get("name", "").lower()
                by_name = next((d for d in descriptors
                                if d.name == named), None)
                if by_name is not None:
                    conflicting = sorted(
                        k for k, v in predicates.items()
                        if str(by_name.discovery_predicates.get(k, "")
                               ).lower() != str(v).lower()
                    )
                    report.add(
                        "GSN204",
                        f"predicates name sensor {named!r} but conflict "
                        f"with its addressing on key(s) {conflicting}",
                        location=context, source=source)
                else:
                    report.add(
                        "GSN202",
                        f"no producer in this deployment set matches "
                        f"predicates {predicates}",
                        location=context, source=source)

    sources_by_name = {d.name: s for d, s in pairs}
    for cycle in _find_cycles(edges):
        anchor = cycle[0]
        report.add("GSN201",
                   "dependency cycle: " + " -> ".join(cycle + [anchor]),
                   location=anchor,
                   source=sources_by_name.get(anchor, ""))


def _find_cycles(edges: Dict[str, List[str]]) -> List[List[str]]:
    """Elementary cycles via DFS; each cycle reported once, anchored at
    its lexicographically smallest node."""
    cycles: List[List[str]] = []
    seen_keys = set()

    def dfs(node: str, path: List[str], on_path: Dict[str, int]) -> None:
        for neighbour in edges.get(node, ()):
            if neighbour in on_path:
                cycle = path[on_path[neighbour]:]
                anchor = min(cycle)
                index = cycle.index(anchor)
                normalized = tuple(cycle[index:] + cycle[:index])
                if normalized not in seen_keys:
                    seen_keys.add(normalized)
                    cycles.append(list(normalized))
            elif neighbour not in visited:
                visited.add(neighbour)
                on_path[neighbour] = len(path)
                dfs(neighbour, path + [neighbour], on_path)
                del on_path[neighbour]

    visited: set = set()
    for start in sorted(edges):
        if start not in visited:
            visited.add(start)
            dfs(start, [start], {start: 0})
    return cycles


# --------------------------------------------------------------------------
# Pass 3: resource estimation
# --------------------------------------------------------------------------

def _row_bytes(schema: Optional[StreamSchema],
               src: StreamSourceSpec) -> int:
    if schema is None:
        return 128  # unknown schema: assume a modest row
    total = _FIELD_BYTES[DataType.TIMESTAMP]  # implicit timed
    for field in schema:
        size = _FIELD_BYTES[field.type]
        if field.type is DataType.BINARY:
            for key in ("image-size", "size", "payload-size"):
                if key in src.address.predicates:
                    try:
                        size = int(src.address.predicates[key])
                    except ValueError:
                        pass
                    break
        total += size
    return total


def _source_interval_ms(src: StreamSourceSpec) -> int:
    try:
        interval = int(src.address.predicates.get("interval", "1000"))
    except ValueError:
        return 1000
    return max(interval, 1)


def estimate_window_memory(src: StreamSourceSpec,
                           schema: Optional[StreamSchema]
                           ) -> Tuple[int, int]:
    """``(elements, bytes)`` bound for one source's window."""
    kind, amount = parse_window_spec(src.storage_size or "1")
    if kind == "count":
        elements = amount
    else:
        per_element = _source_interval_ms(src)
        elements = max(
            1, math.ceil(amount / per_element * src.sampling_rate)
        )
    return elements, elements * (_row_bytes(schema, src)
                                 + _ELEMENT_OVERHEAD)


def _format_bytes(size: int) -> str:
    value = float(size)
    for unit in ("B", "KiB", "MiB", "GiB"):
        if value < 1024 or unit == "GiB":
            return f"{value:.1f}{unit}" if unit != "B" else f"{int(value)}B"
        value /= 1024
    return f"{value:.1f}GiB"


def _resource_pass(descriptor: VirtualSensorDescriptor,
                   wrapper_schemas: Dict[Tuple[str, str],
                                         Optional[StreamSchema]],
                   report: Report, source: str,
                   memory_budget: int) -> None:
    unbounded_history = (descriptor.storage.permanent
                         and descriptor.storage.history_size is None)
    if unbounded_history:
        report.add("GSN302",
                   "permanent-storage without a size bound grows without "
                   "limit; declare <storage size=...>",
                   location=descriptor.name, source=source)

    for stream in descriptor.input_streams:
        for src in stream.sources:
            context = f"{descriptor.name}/{stream.name}/{src.alias}"
            try:
                kind, amount = parse_window_spec(src.storage_size or "1")
            except GSNError:
                continue  # validation already reported it
            if kind == "count" and amount > HUGE_COUNT_WINDOW:
                report.add("GSN304",
                           f"count window of {amount} elements is "
                           f"suspiciously large", location=context,
                           source=source)
            elements, estimate = estimate_window_memory(
                src, wrapper_schemas.get((stream.name, src.alias))
            )
            if estimate > memory_budget:
                report.add(
                    "GSN301",
                    f"window bound is ~{elements} elements "
                    f"(~{_format_bytes(estimate)}), above the "
                    f"{_format_bytes(memory_budget)} budget; shrink "
                    f"storage-size or lower sampling-rate",
                    location=context, source=source)
            if unbounded_history and src.slide is None:
                report.add(
                    "GSN303",
                    "unbounded permanent history fed at full trigger "
                    "rate; add a slide or bound the storage size",
                    location=context, source=source)
            if src.address.wrapper == "remote" \
                    and src.disconnect_buffer == 0:
                report.add(
                    "GSN305",
                    "remote source with disconnect-buffer=0 loses "
                    "elements across network outages",
                    location=context, source=source)


# --------------------------------------------------------------------------
# Line anchoring (unified JSON finding schema)
# --------------------------------------------------------------------------

def attach_descriptor_lines(report: Report,
                            line_indexes: Dict[str, Dict[tuple, int]]
                            ) -> None:
    """Anchor descriptor findings to file lines, in place.

    ``line_indexes`` maps a finding ``source`` (the descriptor file path)
    to the index built by
    :func:`repro.descriptors.xml_io.descriptor_line_index`. Findings
    whose location resolves gain a ``:<line>`` suffix, which is exactly
    what :attr:`~repro.analysis.rules.Finding.line` parses — after this,
    descriptor findings carry the same ``path``/``line``/``suppression``
    JSON fields as the Python-source passes (GSN4xx–GSN6xx).
    """
    for position, finding in enumerate(report.findings):
        index = line_indexes.get(finding.source)
        if not index or not finding.location or finding.line:
            continue
        line = _descriptor_line(finding.location, index)
        if line:
            report.findings[position] = replace(
                finding, location=f"{finding.location}:{line}"
            )


def _descriptor_line(location: str, index: Dict[tuple, int]) -> int:
    """Resolve a finding location (``name[/stream[/alias]]`` plus an
    optional `` source query``/`` stream query`` suffix) to a line."""
    text = location
    suffix = None
    for tail, kind in ((" source query", "source-query"),
                       (" stream query", "stream-query")):
        if text.endswith(tail):
            text = text[: -len(tail)]
            suffix = kind
            break
    parts = text.split("/")
    candidates: List[tuple] = []
    if len(parts) == 3:
        if suffix == "source-query":
            candidates.append(("source-query", parts[1], parts[2]))
        candidates.append(("stream-source", parts[1], parts[2]))
    elif len(parts) == 2:
        if suffix == "stream-query":
            candidates.append(("stream-query", parts[1]))
        candidates.append(("input-stream", parts[1]))
    elif len(parts) == 1:
        candidates.append(("virtual-sensor",))
    for key in candidates:
        line = index.get(key, 0)
        if line:
            return line
    return 0
