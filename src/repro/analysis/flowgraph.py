"""Interprocedural exception-flow & resource-lifecycle pass — GSN6xx.

Runs over the :class:`repro.analysis.callgraph.ProgramIndex` the
deadlock pass already builds and answers the question the life-cycle
manager cares about: *can this deployment die silently?*

1. every function gets a summary — the set of exception type names its
   body can let escape.  ``raise X`` contributes ``X``; a bare ``raise``
   re-raises what the enclosing handler caught; ``raise X from e``
   contributes ``X`` only; ``assert`` contributes ``AssertionError``;
   resolved calls contribute their callee's summary.  ``try`` blocks
   subtract what their handlers catch — matching is hierarchy-aware over
   both the builtin exception tree and classes in the index, so a
   handler narrower than the raised type lets it through — and a
   ``finally`` that exits via ``return``/``break``/``continue``
   swallows everything in flight;
2. summaries are propagated through resolved calls to a fixed point
   (the lattice is sets of type names: finite and monotone, so the
   iteration terminates);
3. rules are judged against the stable summaries:

   - **GSN601** a broad handler (bare ``except``, ``Exception``,
     ``BaseException``) whose body neither re-raises nor routes the
     error anywhere observable (logger, metric/counter, report,
     witness, error-as-value return);
   - **GSN602** a thread entry point (``Thread(target=...)`` or a
     ``run()`` override on a Thread subclass) whose summary is
     non-empty: one such exception and the worker dies silently;
   - **GSN603** a resource acquired into a local (``open``,
     ``.cursor()``, ``.connect()``, ``socket``, ``urlopen``, ``Popen``)
     that is neither ``with``-managed, closed in a ``finally``, nor
     handed off (returned / stored / passed on);
   - **GSN604** a blocking call without a timeout reachable from a
     thread entry point — an un-interruptible worker cannot be stopped
     or supervised;
   - **GSN605** a non-daemon thread started without any visible
     ``join()`` path — it outlives the component that spawned it.

Opaque (unresolved) calls contribute nothing to exception summaries:
the pass under-approximates by design, the same trade the lock pass
makes — it exists to catch the silent-death bug class cheaply, not to
prove the program exception-free.  Findings are suppressed by a
trailing ``# gsn-lint: disable=GSN60x`` on the offending line.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass
from typing import (
    Dict, FrozenSet, Iterator, List, Optional, Sequence, Set, Tuple,
)

from repro.analysis.callgraph import (
    BLOCKING, FunctionInfo, Opaque, ProgramIndex, receiver_chain,
)
from repro.analysis.rules import Report

#: The builtin exception hierarchy, child -> parent, as far as the
#: rules need it.  Unknown names are assumed to be Exception
#: subclasses (the common case for third-party errors).
_BUILTIN_PARENTS: Dict[str, str] = {
    "BaseException": "",
    "Exception": "BaseException",
    "KeyboardInterrupt": "BaseException",
    "SystemExit": "BaseException",
    "GeneratorExit": "BaseException",
    "ArithmeticError": "Exception",
    "ZeroDivisionError": "ArithmeticError",
    "OverflowError": "ArithmeticError",
    "FloatingPointError": "ArithmeticError",
    "LookupError": "Exception",
    "KeyError": "LookupError",
    "IndexError": "LookupError",
    "OSError": "Exception",
    "IOError": "OSError",
    "FileNotFoundError": "OSError",
    "FileExistsError": "OSError",
    "PermissionError": "OSError",
    "ConnectionError": "OSError",
    "ConnectionResetError": "ConnectionError",
    "ConnectionRefusedError": "ConnectionError",
    "BrokenPipeError": "ConnectionError",
    "TimeoutError": "OSError",
    "ValueError": "Exception",
    "UnicodeError": "ValueError",
    "UnicodeDecodeError": "UnicodeError",
    "UnicodeEncodeError": "UnicodeError",
    "TypeError": "Exception",
    "AttributeError": "Exception",
    "NameError": "Exception",
    "UnboundLocalError": "NameError",
    "RuntimeError": "Exception",
    "NotImplementedError": "RuntimeError",
    "RecursionError": "RuntimeError",
    "StopIteration": "Exception",
    "StopAsyncIteration": "Exception",
    "AssertionError": "Exception",
    "ImportError": "Exception",
    "ModuleNotFoundError": "ImportError",
    "MemoryError": "Exception",
    "BufferError": "Exception",
    "EOFError": "Exception",
    "Empty": "Exception",   # queue.Empty
    "Full": "Exception",    # queue.Full
}

#: Escapes a thread entry point is allowed: these are control-flow
#: signals, not silent deaths.
ALLOWED_THREAD_ESCAPES = frozenset({
    "SystemExit", "KeyboardInterrupt", "GeneratorExit", "StopIteration",
})

#: Handler types broad enough that swallowing under them hides
#: *unexpected* errors (narrow handlers express intent).
_BROAD_HANDLERS = frozenset({"Exception", "BaseException"})

#: Logger-protocol method names: a call to one inside a handler is an
#: observable sink.
_LOG_METHODS = frozenset({
    "debug", "info", "warning", "warn", "error", "exception", "critical",
    "fatal", "log",
})

#: Name fragments (callee, receiver chain, or assignment target) that
#: mark a handler body as routing the error somewhere observable.
_SINKISH = re.compile(
    r"(log|metric|counter|stat\b|stats|record|report|emit|error|fail|"
    r"crash|witness|poison|degrade|notif|drop|skip|abort|reject)",
    re.IGNORECASE,
)

#: Bare-name calls that acquire an external resource.
_ACQUIRE_NAMES = frozenset({"open", "urlopen", "Popen", "socket"})
#: ``<receiver>.name()`` calls that acquire an external resource.
_ACQUIRE_ATTRS = frozenset({
    "cursor", "connect", "socket", "urlopen", "Popen", "popen", "open",
})
#: Blocking opaque details that carry their own bound (GSN604 is about
#: *indefinite* blocking a supervisor cannot interrupt).
_BOUNDED_BLOCKING = re.compile(r"sleep|commit", re.IGNORECASE)


# --------------------------------------------------------------------------
# small AST helpers
# --------------------------------------------------------------------------

_SCOPE_NODES = (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda,
                ast.ClassDef)


def _walk_scope(node: ast.AST) -> Iterator[ast.AST]:
    """``ast.walk`` that does not descend into nested defs/lambdas —
    those are separate analysis roots with their own summaries."""
    stack: List[ast.AST] = list(ast.iter_child_nodes(node))
    while stack:
        child = stack.pop()
        if isinstance(child, _SCOPE_NODES):
            continue
        yield child
        stack.extend(ast.iter_child_nodes(child))


def _calls_in(node: ast.AST) -> List[ast.Call]:
    out = [n for n in _walk_scope(node) if isinstance(n, ast.Call)]
    if isinstance(node, ast.Call):
        out.append(node)
    return out


def _names_in(node: ast.AST) -> Set[str]:
    return {n.id for n in _walk_scope(node) if isinstance(n, ast.Name)} | (
        {node.id} if isinstance(node, ast.Name) else set()
    )


def _is_the_name(node: ast.AST, name: str) -> bool:
    """``node`` is the bare name (or a tuple/list directly holding it)."""
    if isinstance(node, ast.Name):
        return node.id == name
    if isinstance(node, (ast.Tuple, ast.List)):
        return any(isinstance(elt, ast.Name) and elt.id == name
                   for elt in node.elts)
    return False


def _try_nodes() -> Tuple[type, ...]:
    star = getattr(ast, "TryStar", None)
    return (ast.Try, star) if star is not None else (ast.Try,)


_TRY_NODES = _try_nodes()


# --------------------------------------------------------------------------
# call resolution (flow-insensitive mirror of the lock-pass scanner)
# --------------------------------------------------------------------------

class _Resolver:
    """Resolves calls in one function to indexed callee qualnames."""

    def __init__(self, index: ProgramIndex, info: FunctionInfo) -> None:
        self.index = index
        self.info = info
        self.locals: Dict[str, str] = dict(info.params)
        self._cache: Dict[int, Tuple[str, ...]] = {}
        # Two rounds so one level of local aliasing resolves
        # regardless of statement order (the index does the same for
        # attributes).
        for _ in range(2):
            for node in _walk_scope(info.node):
                if isinstance(node, ast.Assign) and len(node.targets) == 1 \
                        and isinstance(node.targets[0], ast.Name):
                    inferred = self.type_of(node.value)
                    if inferred is not None:
                        self.locals[node.targets[0].id] = inferred
                elif isinstance(node, ast.AnnAssign) \
                        and isinstance(node.target, ast.Name):
                    from repro.analysis.callgraph import annotation_class
                    declared = annotation_class(node.annotation)
                    if declared:
                        self.locals[node.target.id] = declared

    def type_of(self, expr: ast.AST) -> Optional[str]:
        if isinstance(expr, ast.Name):
            if expr.id == "self":
                return self.info.class_name
            return self.locals.get(expr.id)
        if isinstance(expr, ast.Attribute):
            base = self.type_of(expr.value)
            if base is not None:
                return self.index.attr_type(base, expr.attr)
            return None
        if isinstance(expr, ast.Call):
            func = expr.func
            if isinstance(func, ast.Name) and func.id in self.index.classes:
                return func.id
            targets = self.targets_of(expr)
            if targets:
                returns = self.index.functions[targets[0]].returns
                if returns in self.index.classes:
                    return returns
        return None

    def targets_of(self, call: ast.Call) -> Tuple[str, ...]:
        cached = self._cache.get(id(call))
        if cached is not None:
            return cached
        targets = tuple(self._resolve(call))
        self._cache[id(call)] = targets
        return targets

    def _resolve(self, call: ast.Call) -> List[str]:
        func = call.func
        if isinstance(func, ast.Name):
            nested = f"{self.info.qualname}.{func.id}"
            if nested in self.index.functions:
                return [nested]
            if func.id in self.locals:
                return []  # a callable local: opaque
            if func.id in self.index.classes:
                init = self.index.classes[func.id].methods.get("__init__")
                return [init] if init else []
            qualname = self.index.module_functions.get(
                (self.info.module, func.id)
            )
            if qualname and qualname in self.index.functions:
                return [qualname]
            return []
        if isinstance(func, ast.Attribute):
            owner = self.type_of(func.value)
            if owner is not None:
                return [t for t in
                        self.index.resolve_method(owner, func.attr)
                        if t in self.index.functions]
        return []

    def entry_targets(self, expr: ast.AST) -> Tuple[str, ...]:
        """Resolve a ``Thread(target=<expr>)`` expression to qualnames."""
        if isinstance(expr, ast.Name):
            nested = f"{self.info.qualname}.{expr.id}"
            if nested in self.index.functions:
                return (nested,)
            qualname = self.index.module_functions.get(
                (self.info.module, expr.id)
            )
            if qualname and qualname in self.index.functions:
                return (qualname,)
            return ()
        if isinstance(expr, ast.Attribute):
            owner = self.type_of(expr.value)
            if owner is not None:
                return tuple(t for t in
                             self.index.resolve_method(owner, expr.attr)
                             if t in self.index.functions)
        return ()


# --------------------------------------------------------------------------
# exception-set evaluation
# --------------------------------------------------------------------------

class _ExcEnv:
    """Handler context while walking a function body."""

    def __init__(self) -> None:
        # Innermost-last stack of caught-type sets (for bare ``raise``).
        self.caught_stack: List[Set[str]] = []
        # ``except X as e`` binding -> the set ``e`` can hold.
        self.handler_vars: Dict[str, Set[str]] = {}


class FlowAnalysis:
    """One run of the GSN6xx pass over an index."""

    def __init__(self, index: ProgramIndex) -> None:
        self.index = index
        self.summaries: Dict[str, FrozenSet[str]] = {
            qualname: frozenset() for qualname in index.functions
        }
        self._resolvers: Dict[str, _Resolver] = {}
        self._callers: Dict[str, Set[str]] = {}
        self._callees: Dict[str, Set[str]] = {}
        self.thread_sites: List[ThreadSite] = []
        self.suppressed_count = 0
        self._emitted: Set[Tuple[str, str, int]] = set()
        self._ancestor_cache: Dict[str, FrozenSet[str]] = {}

    # -- plumbing ----------------------------------------------------------

    def resolver(self, qualname: str) -> _Resolver:
        resolver = self._resolvers.get(qualname)
        if resolver is None:
            resolver = _Resolver(self.index, self.index.functions[qualname])
            self._resolvers[qualname] = resolver
        return resolver

    def _suppressed(self, rule: str, path: str, line: int) -> bool:
        rules = self.index.suppressions.get(path, {}).get(line)
        return rules is not None and rule in rules

    def _emit(self, report: Report, rule: str, message: str,
              function: str, path: str, line: int) -> None:
        key = (rule, path, line)
        if key in self._emitted:
            return
        self._emitted.add(key)
        if self._suppressed(rule, path, line):
            self.suppressed_count += 1
            return
        report.add(rule, message, location=f"{function}:{line}",
                   source=path)

    # -- the exception hierarchy -------------------------------------------

    def ancestors(self, name: str) -> FrozenSet[str]:
        """``name`` plus every (known) base class above it."""
        cached = self._ancestor_cache.get(name)
        if cached is not None:
            return cached
        out: Set[str] = set()
        queue = [name]
        while queue:
            current = queue.pop()
            if not current or current in out:
                continue
            out.add(current)
            info = self.index.classes.get(current)
            if info is not None and info.bases:
                queue.extend(info.bases)
            elif current in _BUILTIN_PARENTS:
                queue.append(_BUILTIN_PARENTS[current])
            elif current != "Exception":
                # Unknown type: assume an Exception subclass.
                queue.append("Exception")
        frozen = frozenset(out)
        self._ancestor_cache[name] = frozen
        return frozen

    def catches(self, handler_type: str, raised: str) -> bool:
        return handler_type in self.ancestors(raised)

    # -- per-function evaluation -------------------------------------------

    def _escapes(self, qualname: str) -> FrozenSet[str]:
        info = self.index.functions[qualname]
        node = info.node
        assert isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
        self._current = self.resolver(qualname)
        return frozenset(self._block(node.body, _ExcEnv()))

    def _block(self, stmts: Sequence[ast.stmt], env: _ExcEnv) -> Set[str]:
        out: Set[str] = set()
        for stmt in stmts:
            out |= self._stmt(stmt, env)
        return out

    def _stmt(self, stmt: ast.stmt, env: _ExcEnv) -> Set[str]:
        if isinstance(stmt, _SCOPE_NODES):
            return set()  # nested defs are their own analysis roots
        if isinstance(stmt, ast.Raise):
            return self._raise(stmt, env)
        if isinstance(stmt, _TRY_NODES):
            return self._try(stmt, env)
        if isinstance(stmt, ast.Assert):
            out = self._expr(stmt.test, env)
            if stmt.msg is not None:
                out |= self._expr(stmt.msg, env)
            out.add("AssertionError")
            return out
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            out = set()
            for item in stmt.items:
                out |= self._expr(item.context_expr, env)
            return out | self._block(stmt.body, env)
        if isinstance(stmt, (ast.For, ast.AsyncFor)):
            return (self._expr(stmt.iter, env)
                    | self._block(stmt.body, env)
                    | self._block(stmt.orelse, env))
        if isinstance(stmt, ast.While):
            return (self._expr(stmt.test, env)
                    | self._block(stmt.body, env)
                    | self._block(stmt.orelse, env))
        if isinstance(stmt, ast.If):
            return (self._expr(stmt.test, env)
                    | self._block(stmt.body, env)
                    | self._block(stmt.orelse, env))
        return self._expr(stmt, env)

    def _expr(self, node: ast.AST, env: _ExcEnv) -> Set[str]:
        out: Set[str] = set()
        for call in _calls_in(node):
            for target in self._current.targets_of(call):
                out |= self.summaries[target]
        return out

    def _raise(self, stmt: ast.Raise, env: _ExcEnv) -> Set[str]:
        if stmt.exc is None:
            # Bare re-raise: what the innermost handler caught.
            return set(env.caught_stack[-1]) if env.caught_stack else set()
        out = self._expr(stmt.exc, env)
        exc = stmt.exc
        if isinstance(exc, ast.Call):
            exc = exc.func
        if isinstance(exc, ast.Name):
            if exc.id in env.handler_vars:
                out |= env.handler_vars[exc.id]  # ``raise e`` re-raise
            else:
                out.add(exc.id)
        elif isinstance(exc, ast.Attribute):
            out.add(exc.attr)
        else:
            # ``raise something_dynamic`` — explicit intent to throw.
            out.add("Exception")
        return out

    def _handler_types(self, handler: ast.excepthandler) -> List[str]:
        node = handler.type
        if node is None:
            return ["BaseException"]  # bare ``except:``
        elts = node.elts if isinstance(node, ast.Tuple) else [node]
        out: List[str] = []
        for elt in elts:
            if isinstance(elt, ast.Name):
                out.append(elt.id)
            elif isinstance(elt, ast.Attribute):
                out.append(elt.attr)
        return out or ["BaseException"]

    def _try(self, stmt: ast.stmt, env: _ExcEnv) -> Set[str]:
        body = self._block(stmt.body, env)
        remaining = set(body)
        handler_escapes: Set[str] = set()
        for handler in stmt.handlers:
            htypes = self._handler_types(handler)
            caught = {t for t in remaining
                      if any(self.catches(h, t) for h in htypes)}
            remaining -= caught
            env.caught_stack.append(caught)
            shadowed: Optional[Set[str]] = None
            if handler.name:
                shadowed = env.handler_vars.get(handler.name)
                env.handler_vars[handler.name] = caught
            try:
                handler_escapes |= self._block(handler.body, env)
            finally:
                env.caught_stack.pop()
                if handler.name:
                    if shadowed is None:
                        env.handler_vars.pop(handler.name, None)
                    else:
                        env.handler_vars[handler.name] = shadowed
        pending = remaining | handler_escapes | self._block(stmt.orelse, env)
        final = self._block(stmt.finalbody, env)
        if _finally_swallows(stmt.finalbody):
            return final
        return pending | final

    # -- fixed point -------------------------------------------------------

    def _link_calls(self) -> None:
        for qualname, info in self.index.functions.items():
            resolver = self.resolver(qualname)
            callees = self._callees.setdefault(qualname, set())
            for call in _calls_in(info.node):
                for target in resolver.targets_of(call):
                    callees.add(target)
                    self._callers.setdefault(target, set()).add(qualname)

    def solve(self) -> None:
        """Iterate summaries to the (monotone, finite) fixed point."""
        self._link_calls()
        worklist = sorted(self.index.functions)
        queued = set(worklist)
        while worklist:
            qualname = worklist.pop()
            queued.discard(qualname)
            new = self._escapes(qualname)
            if new != self.summaries[qualname]:
                self.summaries[qualname] = new
                for caller in sorted(self._callers.get(qualname, ())):
                    if caller not in queued:
                        queued.add(caller)
                        worklist.append(caller)

    # -- rule judging ------------------------------------------------------

    def run(self, report: Optional[Report] = None,
            include_parse_errors: bool = False) -> Report:
        if report is None:
            report = Report()
        if include_parse_errors:
            for path, error in self.index.parse_errors:
                report.add("GSN100", f"cannot parse python source: {error}",
                           location=path, source=path)
        self.solve()
        for qualname in sorted(self.index.functions):
            info = self.index.functions[qualname]
            self._judge_handlers(report, info)
            self._judge_resources(report, info)
            self._collect_threads(info)
        self._judge_threads(report)
        self._judge_blocking(report)
        return report

    # GSN601 ---------------------------------------------------------------

    def _judge_handlers(self, report: Report, info: FunctionInfo) -> None:
        for node in _walk_scope(info.node):
            if not isinstance(node, _TRY_NODES):
                continue
            for handler in node.handlers:
                htypes = self._handler_types(handler)
                if not any(h in _BROAD_HANDLERS for h in htypes):
                    continue
                if self._handler_has_sink(handler):
                    continue
                label = ", ".join(htypes)
                self._emit(
                    report, "GSN601",
                    f"broad 'except {label}' swallows the error: "
                    f"re-raise it, or route it through a logger or "
                    f"error counter before continuing",
                    info.qualname, info.path, handler.lineno,
                )

    def _handler_has_sink(self, handler: ast.excepthandler) -> bool:
        bound = handler.name
        for node in handler.body:
            for child in [node] + list(_walk_scope(node)):
                if isinstance(child, ast.Raise):
                    return True
                if isinstance(child, ast.Call):
                    if self._call_is_sink(child):
                        return True
                if isinstance(child, (ast.Return, ast.Yield)) and bound:
                    value = getattr(child, "value", None)
                    if value is not None and bound in _names_in(value):
                        return True  # error-as-value handoff
                if isinstance(child, (ast.Assign, ast.AugAssign)):
                    targets = child.targets if isinstance(child, ast.Assign) \
                        else [child.target]
                    for target in targets:
                        if _SINKISH.search(receiver_chain(target) or ""):
                            return True
        return False

    def _call_is_sink(self, call: ast.Call) -> bool:
        func = call.func
        if isinstance(func, ast.Attribute):
            chain = receiver_chain(func.value)
            if func.attr in _LOG_METHODS:
                return True
            if _SINKISH.search(func.attr) or _SINKISH.search(chain or ""):
                return True
        elif isinstance(func, ast.Name):
            if _SINKISH.search(func.id):
                return True
        return False

    # GSN603 ---------------------------------------------------------------

    def _judge_resources(self, report: Report, info: FunctionInfo) -> None:
        node = info.node
        acquisitions: List[Tuple[str, ast.Call, int]] = []
        for child in _walk_scope(node):
            if isinstance(child, ast.Assign) and len(child.targets) == 1 \
                    and isinstance(child.targets[0], ast.Name) \
                    and isinstance(child.value, ast.Call):
                kind = _acquisition_kind(child.value)
                if kind is not None:
                    acquisitions.append(
                        (child.targets[0].id, child.value, child.lineno)
                    )
        if not acquisitions:
            return
        for name, call, line in acquisitions:
            if self._resource_is_managed(node, name, line):
                continue
            desc = receiver_chain(call.func) or "acquisition"
            self._emit(
                report, "GSN603",
                f"resource from {desc}() is not released on every path: "
                f"use 'with', or close it in a 'finally'",
                info.qualname, info.path, line,
            )

    def _resource_is_managed(self, fn: ast.AST, name: str,
                             line: int) -> bool:
        for child in _walk_scope(fn):
            # ``with name:`` / ``with contextlib.closing(name):``
            if isinstance(child, (ast.With, ast.AsyncWith)):
                for item in child.items:
                    if name in _names_in(item.context_expr):
                        return True
            # handed off: returned, yielded, stored on an object, or
            # passed to another call — ownership moved, not leaked here.
            # Only the name *itself* counts (``return cur``), not a mere
            # mention (``return cur.fetchall()`` still leaks the cursor).
            if isinstance(child, (ast.Return, ast.Yield, ast.YieldFrom)):
                value = getattr(child, "value", None)
                if value is not None and _is_the_name(value, name):
                    return True
            if isinstance(child, ast.Assign):
                if not all(isinstance(t, ast.Name) for t in child.targets) \
                        and name in _names_in(child.value):
                    return True
            if isinstance(child, ast.Call):
                for arg in list(child.args) + [kw.value
                                               for kw in child.keywords]:
                    if _is_the_name(arg, name):
                        return True
            # closed in a ``finally``
            if isinstance(child, _TRY_NODES):
                for stmt in child.finalbody:
                    for call in _calls_in(stmt):
                        func = call.func
                        if isinstance(func, ast.Attribute) \
                                and func.attr in ("close", "release",
                                                  "shutdown", "terminate") \
                                and name in _names_in(func.value):
                            return True
        return False

    # GSN602 / GSN604 / GSN605 ---------------------------------------------

    def _collect_threads(self, info: FunctionInfo) -> None:
        resolver = self.resolver(info.qualname)
        node = info.node
        for child in _walk_scope(node):
            if not isinstance(child, ast.Call):
                continue
            func = child.func
            callee = func.attr if isinstance(func, ast.Attribute) else (
                func.id if isinstance(func, ast.Name) else None
            )
            if callee != "Thread":
                continue
            targets: Tuple[str, ...] = ()
            daemon: Optional[bool] = None
            for kw in child.keywords:
                if kw.arg == "target":
                    targets = resolver.entry_targets(kw.value)
                elif kw.arg == "daemon" \
                        and isinstance(kw.value, ast.Constant):
                    daemon = bool(kw.value.value)
            stored = _assignment_target_for(node, child)
            self.thread_sites.append(ThreadSite(
                entries=targets, function=info.qualname, path=info.path,
                line=child.lineno, daemon=daemon, stored=stored,
                class_name=info.class_name,
            ))
        # ``class Worker(Thread): def run(self)`` — run() is an entry.
        if info.name == "run" and info.class_name is not None:
            cls = self.index.classes.get(info.class_name)
            if cls is not None and any("Thread" in base
                                       for base in cls.bases):
                self.thread_sites.append(ThreadSite(
                    entries=(info.qualname,), function=info.qualname,
                    path=info.path, line=info.lineno, daemon=None,
                    stored=None, class_name=info.class_name,
                    subclass_run=True,
                ))

    def _judge_threads(self, report: Report) -> None:
        for site in self.thread_sites:
            for entry in site.entries:
                escapes = sorted(self.summaries.get(entry, frozenset())
                                 - ALLOWED_THREAD_ESCAPES)
                if escapes:
                    self._emit(
                        report, "GSN602",
                        f"thread entry point {entry}() can die on "
                        f"{', '.join(escapes)} — catch at the top of the "
                        f"loop and report, restart, or degrade",
                        site.function, site.path, site.line,
                    )
            if site.subclass_run or site.daemon is True:
                continue
            if not self._has_join_path(site):
                target = site.stored or "<unnamed>"
                self._emit(
                    report, "GSN605",
                    f"non-daemon thread ({target}) is started without a "
                    f"join()/stop path — it outlives its owner; pass "
                    f"daemon=True or keep a handle and join it",
                    site.function, site.path, site.line,
                )

    def _has_join_path(self, site: ThreadSite) -> bool:
        if site.stored is None:
            return False
        scopes: List[ast.AST] = []
        if site.stored.startswith("self.") and site.class_name:
            cls = self.index.classes.get(site.class_name)
            if cls is not None:
                for qualname in cls.methods.values():
                    method = self.index.functions.get(qualname)
                    if method is not None:
                        scopes.append(method.node)
        else:
            owner = self.index.functions.get(site.function)
            if owner is not None:
                scopes.append(owner.node)
        for scope in scopes:
            for call in _calls_in(scope):
                func = call.func
                if isinstance(func, ast.Attribute) and func.attr == "join":
                    chain = receiver_chain(func.value)
                    tail = site.stored.split(".")[-1]
                    if chain and tail in chain.split("."):
                        return True
        return False

    def _judge_blocking(self, report: Report) -> None:
        entries: Dict[str, str] = {}
        for site in self.thread_sites:
            for entry in site.entries:
                entries.setdefault(entry, entry)
        # BFS over resolved call edges: everything a worker thread can
        # reach must stay interruptible.
        reached: Dict[str, str] = dict(entries)
        queue = sorted(entries)
        while queue:
            current = queue.pop()
            for callee in sorted(self._callees.get(current, ())):
                if callee not in reached:
                    reached[callee] = reached[current]
                    queue.append(callee)
        for qualname in sorted(reached):
            info = self.index.functions.get(qualname)
            if info is None:
                continue
            for event in info.events:
                if not isinstance(event, Opaque) or event.kind != BLOCKING:
                    continue
                if _BOUNDED_BLOCKING.search(event.detail):
                    continue
                self._emit(
                    report, "GSN604",
                    f"blocking {event.desc}() without a timeout is "
                    f"reachable from thread entry {reached[qualname]}() "
                    f"({event.detail}) — a stuck call here makes the "
                    f"worker unsupervisable",
                    info.qualname, info.path, event.line,
                )


@dataclass(frozen=True)
class ThreadSite:
    """One ``Thread(...)`` construction (or Thread-subclass ``run``)."""

    entries: Tuple[str, ...]
    function: str
    path: str
    line: int
    daemon: Optional[bool]
    stored: Optional[str]   # "self.x" / local name the thread is kept in
    class_name: Optional[str]
    subclass_run: bool = False


def _assignment_target_for(fn: ast.AST,
                           call: ast.Call) -> Optional[str]:
    """``t = Thread(...)`` / ``self.t = Thread(...)`` target, if any."""
    for child in _walk_scope(fn):
        if isinstance(child, ast.Assign) and child.value is call \
                and len(child.targets) == 1:
            return receiver_chain(child.targets[0]) or None
    return None


def _acquisition_kind(call: ast.Call) -> Optional[str]:
    func = call.func
    if isinstance(func, ast.Name) and func.id in _ACQUIRE_NAMES:
        return func.id
    if isinstance(func, ast.Attribute) and func.attr in _ACQUIRE_ATTRS:
        return func.attr
    return None


def _finally_swallows(stmts: Sequence[ast.stmt],
                      in_loop: bool = False) -> bool:
    """A ``finally`` that exits via return/break/continue discards the
    in-flight exception (break/continue only when the loop is outside
    the finally)."""
    for stmt in stmts:
        if isinstance(stmt, ast.Return):
            return True
        if isinstance(stmt, (ast.Break, ast.Continue)) and not in_loop:
            return True
        if isinstance(stmt, _SCOPE_NODES):
            continue
        if isinstance(stmt, (ast.For, ast.AsyncFor, ast.While)):
            if _finally_swallows(stmt.body, True) \
                    or _finally_swallows(stmt.orelse, in_loop):
                return True
        elif isinstance(stmt, ast.If):
            if _finally_swallows(stmt.body, in_loop) \
                    or _finally_swallows(stmt.orelse, in_loop):
                return True
        elif isinstance(stmt, (ast.With, ast.AsyncWith)):
            if _finally_swallows(stmt.body, in_loop):
                return True
        elif isinstance(stmt, _TRY_NODES):
            if _finally_swallows(stmt.body, in_loop) \
                    or _finally_swallows(stmt.orelse, in_loop) \
                    or _finally_swallows(stmt.finalbody, in_loop) \
                    or any(_finally_swallows(h.body, in_loop)
                           for h in stmt.handlers):
                return True
    return False


# --------------------------------------------------------------------------
# entry point
# --------------------------------------------------------------------------

def analyze_flow(paths: Sequence[str],
                 report: Optional[Report] = None,
                 index: Optional[ProgramIndex] = None,
                 include_parse_errors: bool = True,
                 ) -> Tuple[Report, "FlowAnalysis"]:
    """Run the full GSN6xx pass over ``paths`` (files or directories).

    Pass a pre-built ``index`` to share parsing with the deadlock pass
    (and set ``include_parse_errors=False`` if that pass already
    reported them).
    """
    from repro.analysis.lockgraph import expand_paths
    if index is None:
        index = ProgramIndex.build(expand_paths(paths))
    analysis = FlowAnalysis(index)
    report = analysis.run(report, include_parse_errors=include_parse_errors)
    return report, analysis
