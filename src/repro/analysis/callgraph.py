"""Whole-program index and call graph for the GSN5xx deadlock pass.

:class:`ProgramIndex` parses a set of Python sources once and answers
the questions the lock-graph analysis needs:

- which classes/functions exist, and who overrides what (so a call
  through an abstract base like ``SlidingWindow.append`` fans out to
  every concrete implementation);
- the inferred class of ``self.<attr>`` receivers — from ``AnnAssign``
  annotations, constructor calls in ``__init__``, annotated parameters
  assigned to attributes, and factory calls with return annotations
  (``make_window() -> SlidingWindow``);
- where locks live.  A lock is an attribute or module global assigned
  ``threading.Lock()``/``RLock()`` or
  :func:`repro.concurrency.new_lock`.  Locks get stable class-qualified
  names (``"SourceRuntime._lock"``, ``"FlightRecorder._lock"``) — the same
  names the runtime witness uses, so the static and observed
  acquisition graphs are directly comparable.

Per function, :func:`ProgramIndex.events` extracts a linear summary of
what matters for deadlock analysis: lock acquisitions (``with``
statements over resolvable lock expressions), resolved calls (with the
locally held lock set), and *opaque* calls — calls whose target is not
in the index, classified by heuristics as potentially blocking
(``GSN502``) or as callback dispatch (``GSN503``).  The interprocedural
propagation over these summaries lives in
:mod:`repro.analysis.lockgraph`.

The index is deliberately flow-insensitive about types and syntactic
about locks: it exists to catch the lock-ordering bug class cheaply at
lint time, not to prove the program deadlock-free.
"""

from __future__ import annotations

import ast
import os
import re
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

LOCK_ORDER_COMMENT = re.compile(
    r"#\s*lock-order:\s*([A-Za-z_][\w.]*)\s*<\s*([A-Za-z_][\w.]*)"
)
SUPPRESS_COMMENT = re.compile(r"#\s*gsn-lint:\s*disable=([A-Z0-9,\s]+)")
REQUIRES_LOCK_COMMENT = re.compile(
    r"#\s*requires-lock:\s*([A-Za-z_][\w.]*)"
)
GUARDED_BY_COMMENT = re.compile(
    r"#\s*guarded-by:\s*([A-Za-z_][\w.]*)"
)
OWNED_BY_COMMENT = re.compile(
    r"#\s*owned-by:\s*([A-Za-z_][\w-]*)"
)

#: Attribute/global names that are treated as locks even without a
#: recognizable ``Lock()`` initializer (covers locks handed in through
#: constructor parameters, like ``SQLiteStreamTable._lock``).
_LOCKISH_NAME = re.compile(r"(^|_)(lock|mutex)$")

#: Terminal call names that block unconditionally.
_BLOCKING_ALWAYS = frozenset({
    "sleep", "urlopen", "getresponse", "accept", "recv", "recvfrom",
    "sendall", "connect", "select",
})
#: ``<receiver>.join()`` blocks when the receiver looks like a thread
#: (string ``", ".join`` and ``os.path.join`` receivers do not match).
_THREADISH = re.compile(r"thread|proc|worker|pool", re.IGNORECASE)
#: ``<queue>.get()`` / ``<queue>.put()`` block when unbounded.
_QUEUEISH = re.compile(r"queue", re.IGNORECASE)
#: ``<connection>.commit()`` is durable I/O on a shared handle.
_CONNECTIONISH = re.compile(r"conn|db\b|database", re.IGNORECASE)
#: Receivers/callees that look like user-supplied callbacks.
_DISPATCHY = re.compile(
    r"listener|callback|hook|observer|subscriber|handler|channel|notify",
    re.IGNORECASE,
)
#: Plain container/bookkeeping methods: mutating ``self._listeners`` (a
#: list of callbacks) is registry maintenance, not callback invocation.
_CONTAINER_METHODS = frozenset({
    "append", "remove", "pop", "popleft", "appendleft", "get", "add",
    "discard", "clear", "extend", "insert", "update", "setdefault",
    "keys", "values", "items", "index", "count", "copy", "sort",
})

#: ``<attr>.name()`` calls that mutate the receiver in place — these are
#: the collection writes the race pass (GSN8xx) cares about.
_MUTATOR_METHODS = frozenset({
    "append", "appendleft", "add", "extend", "extendleft", "insert",
    "remove", "discard", "clear", "update", "setdefault", "pop",
    "popleft", "popitem", "sort", "reverse", "rotate",
})

BLOCKING = "blocking"
DISPATCH = "dispatch"

# Access kinds (see :class:`Access`).
READ = "read"
WRITE = "write"
RMW = "rmw"          # read-modify-write: ``self.x += 1``
MUTATE = "mutate"    # in-place collection write: ``self.x[k] = v``
ITERATE = "iterate"  # ``for ... in self.x``


# --------------------------------------------------------------------------
# summary events
# --------------------------------------------------------------------------

@dataclass(frozen=True)
class Acquire:
    """``with <lock>:`` over a resolvable lock expression."""

    lock: str
    reentrant: bool
    held: Tuple[str, ...]  # locks already held locally at this point
    line: int


@dataclass(frozen=True)
class Call:
    """A call whose target(s) resolved to indexed functions."""

    targets: Tuple[str, ...]  # callee qualnames
    held: Tuple[str, ...]
    line: int


@dataclass(frozen=True)
class Opaque:
    """A call the index cannot resolve; judged by name heuristics."""

    desc: str          # rendered call text for messages
    kind: Optional[str]  # BLOCKING, DISPATCH, or None (inert)
    detail: str        # why the heuristic fired
    held: Tuple[str, ...]
    line: int


@dataclass(frozen=True)
class Await:
    """One ``await`` expression inside an async function.

    ``held`` is the locally held *sync* lock set at the await point —
    the input to the GSN902 (lock-held-across-await) judgement.
    """

    held: Tuple[str, ...]
    line: int


@dataclass(frozen=True)
class Access:
    """One read/write of an attribute on an indexed class.

    ``cls`` is the class *owning* the attribute (the receiver's static
    type), not the attribute's own type.  ``held`` is the locally held
    lock set — the race pass joins it with the interprocedurally
    propagated contexts to get the full held set at this point.
    """

    cls: str
    attr: str
    kind: str  # READ | WRITE | RMW | MUTATE | ITERATE
    held: Tuple[str, ...]
    line: int


Event = object  # Acquire | Call | Opaque | Access


@dataclass
class LockDecl:
    name: str       # class-qualified ("Pool._lock") or module ("m._lock")
    reentrant: bool
    path: str
    line: int


@dataclass
class FunctionInfo:
    qualname: str
    name: str
    module: str            # dotted module key ("vsensor.pool")
    path: str
    class_name: Optional[str]
    node: ast.AST
    lineno: int
    params: Dict[str, str] = field(default_factory=dict)
    returns: Optional[str] = None
    requires_attr: Optional[str] = None  # raw ``# requires-lock:`` name
    requires: Tuple[str, ...] = ()   # qualified lock names
    is_async: bool = False           # ``async def``
    events: List[Event] = field(default_factory=list)


@dataclass
class ClassInfo:
    name: str
    module: str
    path: str
    lineno: int
    bases: Tuple[str, ...] = ()
    methods: Dict[str, str] = field(default_factory=dict)  # name -> qualname
    attr_types: Dict[str, str] = field(default_factory=dict)
    locks: Dict[str, LockDecl] = field(default_factory=dict)  # attr -> decl
    assigned: Set[str] = field(default_factory=set)
    # attr -> (declared guard name, line) from ``# guarded-by:`` comments.
    guards: Dict[str, Tuple[str, int]] = field(default_factory=dict)
    # Attributes declared ``# owned-by: loop`` — single-owner event-loop
    # state: the async pass (GSN904) enforces that only loop-context
    # code writes them, and the race pass exempts them in exchange.
    loop_owned: Set[str] = field(default_factory=set)


@dataclass
class DeclaredEdge:
    """``# lock-order: A < B`` — A must be acquired before B."""

    before: str
    after: str
    path: str
    line: int


# --------------------------------------------------------------------------
# small AST helpers
# --------------------------------------------------------------------------

def annotation_class(node: Optional[ast.AST]) -> Optional[str]:
    """Best-effort class name out of a type annotation.

    ``Optional["SlidingWindow"]`` → ``"SlidingWindow"``; containers
    (``List[...]``, ``Dict[...]``) yield ``None`` — element types are
    deliberately not propagated (see module docstring).
    """
    if node is None:
        return None
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value.split("[")[0].split(".")[-1].strip() or None
    if isinstance(node, ast.Subscript):
        head = annotation_class(node.value)
        if head == "Optional":
            return annotation_class(node.slice)
        return None
    return None


def receiver_chain(node: ast.AST) -> str:
    """Dotted receiver text for heuristics (``self.network.bus``)."""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        base = receiver_chain(node.value)
        return f"{base}.{node.attr}" if base else node.attr
    if isinstance(node, ast.Call):
        base = receiver_chain(node.func)
        return f"{base}()" if base else ""
    return ""


def _call_has_bound(call: ast.Call) -> bool:
    """Whether a join/get/put/wait call carries a timeout-ish argument."""
    if call.args:
        return True
    return any(kw.arg in ("timeout", "block") for kw in call.keywords)


def _self_attr(node: ast.AST) -> Optional[str]:
    if isinstance(node, ast.Attribute) and \
            isinstance(node.value, ast.Name) and node.value.id == "self":
        return node.attr
    return None


def _lock_factory(value: ast.AST) -> Optional[Tuple[Optional[str], bool]]:
    """Recognize a lock-constructing expression.

    Returns ``(explicit_name, reentrant)`` — the name is non-None only
    for ``new_lock("...")`` calls, whose string argument is
    authoritative.
    """
    if not isinstance(value, ast.Call):
        return None
    func = value.func
    callee = func.attr if isinstance(func, ast.Attribute) else (
        func.id if isinstance(func, ast.Name) else None
    )
    if callee in ("Lock", "RLock"):
        # ``asyncio.Lock()`` is a coroutine-world primitive, not a
        # thread lock — registering it would pollute the lock graph
        # and the runtime witness naming.
        if isinstance(func, ast.Attribute) \
                and receiver_chain(func.value) == "asyncio":
            return None
        return None, callee == "RLock"
    if callee == "new_lock":
        name = None
        if value.args and isinstance(value.args[0], ast.Constant) \
                and isinstance(value.args[0].value, str):
            name = value.args[0].value
        reentrant = any(
            kw.arg == "reentrant" and isinstance(kw.value, ast.Constant)
            and bool(kw.value.value)
            for kw in value.keywords
        )
        return name, reentrant
    return None


def _comment_tokens(lines: List[str]) -> List[Tuple[int, str]]:
    """(line number, text) of every comment token in the source."""
    import io
    import tokenize
    reader = io.StringIO("\n".join(lines) + "\n").readline
    out: List[Tuple[int, str]] = []
    try:
        for token in tokenize.generate_tokens(reader):
            if token.type == tokenize.COMMENT:
                out.append((token.start[0], token.string))
    except (tokenize.TokenError, IndentationError):
        pass  # the AST parse reports the syntax error properly
    return out


def module_key(path: str) -> str:
    """Dotted module key: package-relative under ``repro``, else stem."""
    parts = os.path.normpath(path).split(os.sep)
    if "repro" in parts:
        stem = [p for p in parts[parts.index("repro") + 1:] if p]
        if stem and stem[-1].endswith(".py"):
            stem[-1] = stem[-1][:-3]
        if stem:
            return ".".join(stem)
    return os.path.splitext(os.path.basename(path))[0]


# --------------------------------------------------------------------------
# the index
# --------------------------------------------------------------------------

class ProgramIndex:
    """Classes, functions, locks, and annotations of a set of sources."""

    def __init__(self) -> None:
        self.classes: Dict[str, ClassInfo] = {}
        self.functions: Dict[str, FunctionInfo] = {}
        # (module, local name) -> function qualname, for bare-name calls.
        self.module_functions: Dict[Tuple[str, str], str] = {}
        # (module, global name) -> module-level lock.
        self.module_locks: Dict[Tuple[str, str], LockDecl] = {}
        self.subclasses: Dict[str, List[str]] = {}
        self.declared_order: List[DeclaredEdge] = []
        # path -> line -> suppressed rule ids.
        self.suppressions: Dict[str, Dict[int, Set[str]]] = {}
        # path -> line -> declared guard name (``# guarded-by:``).
        self.guard_comments: Dict[str, Dict[int, str]] = {}
        # path -> line -> owner domain (``# owned-by: loop``).
        self.owned_comments: Dict[str, Dict[int, str]] = {}
        self.parse_errors: List[Tuple[str, str]] = []

    # -- construction ------------------------------------------------------

    @classmethod
    def build(cls, paths: Sequence[str]) -> "ProgramIndex":
        index = cls()
        parsed: List[Tuple[str, str, ast.Module, List[str]]] = []
        for path in paths:
            with open(path, "r", encoding="utf-8") as handle:
                source = handle.read()
            try:
                tree = ast.parse(source)
            except SyntaxError as exc:
                index.parse_errors.append((path, str(exc)))
                continue
            lines = source.splitlines()
            parsed.append((path, module_key(path), tree, lines))
            index._collect_comments(path, lines)
        for path, module, tree, lines in parsed:
            index._collect_module(path, module, tree, lines)
        index._infer_attr_types()
        for name, info in index.classes.items():
            for base in info.bases:
                index.subclasses.setdefault(base, []).append(name)
        index._resolve_requires()
        for path, module, tree, lines in parsed:
            index._scan_bodies(path)
        return index

    def _resolve_requires(self) -> None:
        # Resolved after lock inference so annotations naming a lock
        # declared in a base class pick up the declaring class's name.
        # Annotations may use the bare attribute (``_lock``) or the
        # registry-qualified name (``WorkerPool._lock``) — either way the
        # tail is the attribute the lock lives in.
        for info in self.functions.values():
            attr = info.requires_attr
            if attr is None:
                continue
            tail = attr.rsplit(".", 1)[-1]
            if info.class_name is not None:
                decl = self.lock_for_attr(info.class_name, tail)
                info.requires = (decl.name,) if decl is not None \
                    else (f"{info.class_name}.{tail}",)
            else:
                decl_m = self.module_locks.get((info.module, tail))
                if decl_m is not None:
                    info.requires = (decl_m.name,)

    def _collect_comments(self, path: str, lines: List[str]) -> None:
        # Real COMMENT tokens only — the annotation vocabulary shows up
        # verbatim inside docstrings (not least this package's own), and
        # those must not declare edges or suppress findings.
        for lineno, text in _comment_tokens(lines):
            order = LOCK_ORDER_COMMENT.search(text)
            if order:
                self.declared_order.append(
                    DeclaredEdge(order.group(1), order.group(2), path, lineno)
                )
            suppress = SUPPRESS_COMMENT.search(text)
            if suppress:
                rules = {r.strip() for r in suppress.group(1).split(",")
                         if r.strip()}
                self.suppressions.setdefault(path, {}) \
                    .setdefault(lineno, set()).update(rules)
            guard = GUARDED_BY_COMMENT.search(text)
            if guard:
                self.guard_comments.setdefault(path, {})[lineno] = \
                    guard.group(1)
            owned = OWNED_BY_COMMENT.search(text)
            if owned:
                self.owned_comments.setdefault(path, {})[lineno] = \
                    owned.group(1)

    def _collect_module(self, path: str, module: str, tree: ast.Module,
                        lines: List[str]) -> None:
        short = module.split(".")[-1]
        for node in tree.body:
            if isinstance(node, ast.ClassDef):
                info = ClassInfo(node.name, module, path, node.lineno,
                                 bases=tuple(
                                     b.id if isinstance(b, ast.Name) else b.attr
                                     for b in node.bases
                                     if isinstance(b, (ast.Name, ast.Attribute))
                                 ))
                self.classes[node.name] = info
                for item in node.body:
                    if isinstance(item, (ast.FunctionDef,
                                         ast.AsyncFunctionDef)):
                        qualname = f"{node.name}.{item.name}"
                        info.methods[item.name] = qualname
                        self._register_function(qualname, item, module,
                                                path, node.name, lines)
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qualname = f"{module}.{node.name}"
                self._register_function(qualname, node, module, path,
                                        None, lines)
                self.module_functions[(module, node.name)] = qualname
            elif isinstance(node, ast.Assign) and len(node.targets) == 1 \
                    and isinstance(node.targets[0], ast.Name):
                target = node.targets[0].id
                factory = _lock_factory(node.value)
                if factory is not None:
                    explicit, reentrant = factory
                    name = explicit or f"{short}.{target}"
                    self.module_locks[(module, target)] = LockDecl(
                        name, reentrant, path, node.lineno
                    )
            elif isinstance(node, ast.ImportFrom) and node.module \
                    and node.module.startswith("repro"):
                source_module = node.module[len("repro"):].lstrip(".")
                for alias in node.names:
                    local = alias.asname or alias.name
                    self.module_functions.setdefault(
                        (module, local),
                        f"{source_module}.{alias.name}"
                    )

    def _register_function(self, qualname: str, node: ast.AST, module: str,
                           path: str, class_name: Optional[str],
                           lines: List[str]) -> None:
        assert isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
        info = FunctionInfo(qualname, node.name, module, path, class_name,
                            node, node.lineno,
                            is_async=isinstance(node, ast.AsyncFunctionDef))
        for arg in list(node.args.args) + list(node.args.kwonlyargs):
            declared = annotation_class(arg.annotation)
            if declared:
                info.params[arg.arg] = declared
        info.returns = annotation_class(node.returns)
        if 1 <= node.lineno <= len(lines):
            match = REQUIRES_LOCK_COMMENT.search(lines[node.lineno - 1])
            if match:
                info.requires_attr = match.group(1)
        self.functions[qualname] = info

    # -- attribute types and locks ----------------------------------------

    def _infer_attr_types(self) -> None:
        # Two rounds so one level of aliasing (``self.a = self.b``)
        # resolves regardless of declaration order.
        for _round in range(2):
            for info in self.functions.values():
                if info.class_name is None:
                    continue
                cls = self.classes[info.class_name]
                self._infer_in_method(cls, info)

    def _infer_in_method(self, cls: ClassInfo, info: FunctionInfo) -> None:
        assert isinstance(info.node, (ast.FunctionDef, ast.AsyncFunctionDef))
        for node in ast.walk(info.node):
            target: Optional[ast.AST] = None
            value: Optional[ast.AST] = None
            declared: Optional[str] = None
            if isinstance(node, ast.Assign) and len(node.targets) == 1:
                target, value = node.targets[0], node.value
            elif isinstance(node, ast.AnnAssign):
                target, value = node.target, node.value
                declared = annotation_class(node.annotation)
            else:
                continue
            attr = _self_attr(target)
            if attr is None:
                continue
            cls.assigned.add(attr)
            guard = self.guard_comments.get(info.path, {}).get(node.lineno)
            if guard is not None:
                cls.guards.setdefault(attr, (guard, node.lineno))
            owned = self.owned_comments.get(info.path, {}).get(node.lineno)
            if owned == "loop":
                cls.loop_owned.add(attr)
            if declared:
                cls.attr_types.setdefault(attr, declared)
            if value is not None:
                factory = _lock_factory(value)
                if factory is not None:
                    explicit, reentrant = factory
                    name = explicit or f"{cls.name}.{attr}"
                    cls.locks.setdefault(attr, LockDecl(
                        name, reentrant, info.path, node.lineno
                    ))
                    continue
                inferred = self._infer_value_type(value, cls, info)
                if inferred:
                    cls.attr_types.setdefault(attr, inferred)

    def _infer_value_type(self, value: ast.AST, cls: ClassInfo,
                          info: FunctionInfo) -> Optional[str]:
        if isinstance(value, ast.Call):
            func = value.func
            if isinstance(func, ast.Name) and func.id in self.classes:
                return func.id
            resolved = self._function_for_call(func, info)
            if resolved is not None and resolved.returns in self.classes:
                return resolved.returns
            return None
        if isinstance(value, ast.Name):
            return info.params.get(value.id)
        attr = _self_attr(value)
        if attr is not None:
            return self.attr_type(cls.name, attr)
        return None

    def _function_for_call(self, func: ast.AST,
                           info: FunctionInfo) -> Optional[FunctionInfo]:
        """Resolve a call's *func* expression to one indexed function."""
        if isinstance(func, ast.Name):
            qualname = self.module_functions.get((info.module, func.id))
            return self.functions.get(qualname) if qualname else None
        if isinstance(func, ast.Attribute):
            attr = _self_attr(func)
            if attr is not None and info.class_name is not None:
                targets = self.resolve_method(info.class_name, func.attr)
                if targets:
                    return self.functions[targets[0]]
        return None

    # -- lookup ------------------------------------------------------------

    def _mro(self, class_name: str) -> List[ClassInfo]:
        """The known part of a class's MRO (C3 is overkill here)."""
        out: List[ClassInfo] = []
        seen: Set[str] = set()
        queue = [class_name]
        while queue:
            name = queue.pop(0)
            if name in seen or name not in self.classes:
                continue
            seen.add(name)
            info = self.classes[name]
            out.append(info)
            queue.extend(info.bases)
        return out

    def attr_type(self, class_name: str, attr: str) -> Optional[str]:
        for info in self._mro(class_name):
            declared = info.attr_types.get(attr)
            if declared:
                return declared
        return None

    def lock_for_attr(self, class_name: str, attr: str) -> Optional[LockDecl]:
        """The lock behind ``self.<attr>`` in ``class_name``, if any.

        Falls back to a synthesized declaration for lock-ish attribute
        names that are assigned but not recognizably constructed (locks
        injected through parameters keep their own class-qualified name
        — that aliasing is declared in ``LOCK_ORDER`` instead).
        """
        for info in self._mro(class_name):
            decl = info.locks.get(attr)
            if decl is not None:
                return decl
        if _LOCKISH_NAME.search(attr):
            for info in self._mro(class_name):
                if attr in info.assigned:
                    return LockDecl(f"{info.name}.{attr}", False,
                                    info.path, info.lineno)
        return None

    def resolve_method(self, class_name: str, method: str) -> List[str]:
        """Callee qualnames for ``<obj of class_name>.method()``.

        The defining class's implementation plus every override in the
        (transitive) subclasses of the *static* receiver type — the
        sound fan-out for calls through an abstract base.
        """
        targets: List[str] = []
        for info in self._mro(class_name):
            qualname = info.methods.get(method)
            if qualname is not None:
                targets.append(qualname)
                break
        queue = list(self.subclasses.get(class_name, ()))
        seen: Set[str] = set()
        while queue:
            sub = queue.pop(0)
            if sub in seen:
                continue
            seen.add(sub)
            sub_info = self.classes.get(sub)
            if sub_info is None:
                continue
            qualname = sub_info.methods.get(method)
            if qualname is not None and qualname not in targets:
                targets.append(qualname)
            queue.extend(self.subclasses.get(sub, ()))
        return targets

    # -- function body scanning -------------------------------------------

    def _scan_bodies(self, path: str) -> None:
        for info in list(self.functions.values()):
            if info.path != path or getattr(info, "_scanned", False):
                continue
            scanner = _Scanner(self, info)
            scanner.run()

    def events(self, qualname: str) -> List[Event]:
        info = self.functions.get(qualname)
        return info.events if info is not None else []


class _Scanner(ast.NodeVisitor):
    """Extracts one function's event summary, registering nested defs."""

    def __init__(self, index: ProgramIndex, info: FunctionInfo,
                 locals_seed: Optional[Dict[str, str]] = None) -> None:
        self.index = index
        self.info = info
        self.held: List[str] = []
        self.locals: Dict[str, str] = dict(info.params)
        if locals_seed:
            self.locals.update(locals_seed)
        self.nested: Dict[str, str] = {}
        # Attribute nodes already recorded by a structural handler
        # (call receiver, subscript base, loop iterable) — visiting them
        # again as a plain Load must not double-count.
        self._consumed: Set[int] = set()
        # Call nodes that are directly awaited: ``await x.wait()``
        # suspends the coroutine, it does not block the thread, so the
        # blocking heuristics must not fire on them.
        self._awaited: Set[int] = set()

    def run(self) -> None:
        setattr(self.info, "_scanned", True)
        node = self.info.node
        assert isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
        for statement in node.body:
            self.visit(statement)

    # -- type/lock resolution ----------------------------------------------

    def _type_of(self, expr: ast.AST) -> Optional[str]:
        if isinstance(expr, ast.Name):
            if expr.id == "self":
                return self.info.class_name
            return self.locals.get(expr.id)
        if isinstance(expr, ast.Attribute):
            base = self._type_of(expr.value)
            if base is not None:
                return self.index.attr_type(base, expr.attr)
            return None
        if isinstance(expr, ast.Call):
            func = expr.func
            if isinstance(func, ast.Name) and func.id in self.index.classes:
                return func.id
            targets = self._call_targets(expr)
            if targets:
                returns = self.index.functions[targets[0]].returns
                if returns in self.index.classes:
                    return returns
        return None

    def _lock_of(self, expr: ast.AST) -> Optional[Tuple[str, bool]]:
        """Resolve a ``with`` context expression to a named lock."""
        if isinstance(expr, ast.Name):
            decl = self.index.module_locks.get((self.info.module, expr.id))
            if decl is not None:
                return decl.name, decl.reentrant
            return None
        if isinstance(expr, ast.Attribute):
            owner = self._type_of(expr.value)
            if owner is not None:
                decl = self.index.lock_for_attr(owner, expr.attr)
                if decl is not None:
                    return decl.name, decl.reentrant
            return None
        return None

    def _call_targets(self, call: ast.Call) -> List[str]:
        func = call.func
        if isinstance(func, ast.Name):
            if func.id in self.nested:
                return [self.nested[func.id]]
            if func.id in self.locals:
                return []  # a callable local: opaque
            if func.id in self.index.classes:
                init = self.index.classes[func.id].methods.get("__init__")
                return [init] if init else []
            qualname = self.index.module_functions.get(
                (self.info.module, func.id)
            )
            if qualname and qualname in self.index.functions:
                return [qualname]
            return []
        if isinstance(func, ast.Attribute):
            owner = self._type_of(func.value)
            if owner is not None:
                return [t for t in
                        self.index.resolve_method(owner, func.attr)
                        if t in self.index.functions]
        return []

    # -- attribute accesses (race pass input) ------------------------------

    def _attr_ref(self, expr: ast.AST) -> Optional[Tuple[str, str]]:
        """``(owning class, attr)`` when ``expr`` is data state on an
        indexed class — lock objects and bound-method references are
        not data and resolve to ``None``."""
        if not isinstance(expr, ast.Attribute):
            return None
        owner = self._type_of(expr.value)
        if owner is None or owner not in self.index.classes:
            return None
        attr = expr.attr
        if self.index.lock_for_attr(owner, attr) is not None:
            return None
        for cls in self.index._mro(owner):
            if attr in cls.methods:
                return None
        return owner, attr

    def _record(self, ref: Tuple[str, str], kind: str, line: int) -> None:
        self.info.events.append(
            Access(ref[0], ref[1], kind, tuple(self.held), line)
        )

    def _record_store(self, target: ast.AST, line: int) -> None:
        if isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                self._record_store(elt, line)
            return
        if isinstance(target, ast.Starred):
            self._record_store(target.value, line)
            return
        if isinstance(target, ast.Subscript):
            ref = self._attr_ref(target.value)
            if ref is not None:
                self._record(ref, MUTATE, line)
                self._consumed.add(id(target.value))
            return
        ref = self._attr_ref(target)
        if ref is not None:
            self._record(ref, WRITE, line)

    # -- visitors ----------------------------------------------------------

    def visit_With(self, node: ast.With) -> None:
        acquired: List[str] = []
        for item in node.items:
            lock = self._lock_of(item.context_expr)
            if lock is None:
                self.visit(item.context_expr)
                continue
            name, reentrant = lock
            self.info.events.append(
                Acquire(name, reentrant, tuple(self.held),
                        item.context_expr.lineno)
            )
            if name not in self.held:
                self.held.append(name)
                acquired.append(name)
        for statement in node.body:
            self.visit(statement)
        for name in acquired:
            self.held.remove(name)

    visit_AsyncWith = visit_With  # type: ignore[assignment]

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if isinstance(func, ast.Attribute):
            ref = self._attr_ref(func.value)
            if ref is not None:
                kind = MUTATE if func.attr in _MUTATOR_METHODS else READ
                if kind == MUTATE:
                    # ``self.sink.add(x)`` where ``add`` is a *method* of
                    # the receiver's indexed class is a call into code
                    # with its own discipline, not a raw collection
                    # mutation of the attribute.
                    recv_type = self._type_of(func.value)
                    if recv_type is not None and any(
                            func.attr in cls.methods
                            for cls in self.index._mro(recv_type)):
                        kind = READ
                self._record(ref, kind, node.lineno)
                self._consumed.add(id(func.value))
        targets = self._call_targets(node)
        if targets:
            self.info.events.append(
                Call(tuple(targets), tuple(self.held), node.lineno)
            )
        else:
            self._opaque(node)
        self.generic_visit(node)

    def _opaque(self, node: ast.Call) -> None:
        func = node.func
        if isinstance(func, ast.Attribute):
            name = func.attr
            chain = receiver_chain(func.value)
        elif isinstance(func, ast.Name):
            name, chain = func.id, ""
        else:
            return
        desc = f"{chain}.{name}" if chain else name
        kind, detail = self._classify(name, chain, node)
        if kind == BLOCKING and id(node) in self._awaited:
            kind, detail = None, ""
        self.info.events.append(
            Opaque(desc, kind, detail, tuple(self.held), node.lineno)
        )

    def _classify(self, name: str, chain: str,
                  node: ast.Call) -> Tuple[Optional[str], str]:
        if name in _BLOCKING_ALWAYS:
            return BLOCKING, f"{name}() blocks unconditionally"
        if name == "join" and _THREADISH.search(chain) \
                and not _call_has_bound(node):
            return BLOCKING, "join() on a thread without a timeout"
        if name in ("get", "put") and _QUEUEISH.search(chain) \
                and not _call_has_bound(node):
            return BLOCKING, f"unbounded queue {name}()"
        if name == "wait" and not _call_has_bound(node):
            return BLOCKING, "wait() without a timeout"
        if name == "commit" and _CONNECTIONISH.search(chain):
            return BLOCKING, "commit on a shared database connection"
        if name not in _CONTAINER_METHODS and (
                _DISPATCHY.search(name) or _DISPATCHY.search(chain)):
            return DISPATCH, "call into listener/callback code"
        return None, ""

    def visit_Await(self, node: ast.Await) -> None:
        self.info.events.append(Await(tuple(self.held), node.lineno))
        if isinstance(node.value, ast.Call):
            self._awaited.add(id(node.value))
        self.generic_visit(node)

    def visit_Assign(self, node: ast.Assign) -> None:
        if len(node.targets) == 1 and isinstance(node.targets[0], ast.Name):
            inferred = self._type_of(node.value)
            if inferred is not None:
                self.locals[node.targets[0].id] = inferred
        for target in node.targets:
            self._record_store(target, node.lineno)
        self.visit(node.value)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if isinstance(node.target, ast.Name):
            declared = annotation_class(node.annotation)
            if declared:
                self.locals[node.target.id] = declared
        if node.value is not None:
            self._record_store(node.target, node.lineno)
            self.visit(node.value)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        target = node.target
        if isinstance(target, ast.Subscript):
            ref = self._attr_ref(target.value)
            if ref is not None:
                self._record(ref, MUTATE, node.lineno)
                self._consumed.add(id(target.value))
        else:
            ref = self._attr_ref(target)
            if ref is not None:
                self._record(ref, RMW, node.lineno)
        self.visit(node.value)

    def visit_Delete(self, node: ast.Delete) -> None:
        for target in node.targets:
            if isinstance(target, ast.Subscript):
                ref = self._attr_ref(target.value)
                if ref is not None:
                    self._record(ref, MUTATE, node.lineno)
                    self._consumed.add(id(target.value))
            else:
                ref = self._attr_ref(target)
                if ref is not None:
                    self._record(ref, WRITE, node.lineno)
        self.generic_visit(node)

    def visit_For(self, node: ast.For) -> None:
        ref = self._attr_ref(node.iter)
        if ref is not None:
            self._record(ref, ITERATE, node.iter.lineno)
            self._consumed.add(id(node.iter))
        self.generic_visit(node)

    visit_AsyncFor = visit_For  # type: ignore[assignment]

    def visit_Attribute(self, node: ast.Attribute) -> None:
        if isinstance(node.ctx, ast.Load) and id(node) not in self._consumed:
            ref = self._attr_ref(node)
            if ref is not None:
                self._record(ref, READ, node.lineno)
        self.generic_visit(node)

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        # A nested def is its own analysis root: it usually escapes as a
        # callback, so it runs with whatever its *caller* holds — not
        # with the locks held at its definition site.
        qualname = f"{self.info.qualname}.{node.name}"
        nested = FunctionInfo(
            qualname, node.name, self.info.module, self.info.path,
            self.info.class_name, node, node.lineno,
            is_async=isinstance(node, ast.AsyncFunctionDef),
        )
        for arg in list(node.args.args) + list(node.args.kwonlyargs):
            declared = annotation_class(arg.annotation)
            if declared:
                nested.params[arg.arg] = declared
        self.index.functions[qualname] = nested
        self.nested[node.name] = qualname
        scanner = _Scanner(self.index, nested, locals_seed=self.locals)
        scanner.nested = self.nested
        scanner.run()

    visit_AsyncFunctionDef = visit_FunctionDef  # type: ignore[assignment]

    def visit_Lambda(self, node: ast.Lambda) -> None:
        # A lambda is a deferred closure: it runs when invoked, not where
        # it is defined, so its body is scanned with an empty held set
        # (mirroring nested ``def``s). Calls inside it still enter the
        # graph — just not under the locks of the defining scope.
        outer_held, self.held = self.held, []
        try:
            self.visit(node.body)
        finally:
            self.held = outer_held

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        return  # local classes: out of scope
