"""Runtime thread-crash witness.

The static pass (:mod:`repro.analysis.flowgraph`) proves that no
exception type *can* escape a thread entry point; this module checks
the *process*. When enabled, a :func:`threading.excepthook` sentinel
records every exception that escapes a thread — the exact failure mode
GSN602 lints against: a worker that dies and leaves its virtual sensor
deployed-but-dead.

Two reporting paths feed the same record list:

- the *hook* path — an exception reaches the top of a thread that
  nobody supervises.  The previous excepthook still runs afterwards,
  so default stderr tracebacks (and anything else chained in) are
  preserved;
- the *supervisor* path — a supervised loop (the worker pool, the HTTP
  server) catches the crash itself, reports it via :meth:`report`, and
  then restarts or degrades.  Supervised crashes never reach the hook,
  but they are still witnessed.

Components register their threads with :meth:`watch` (a thread-name
prefix mapped to an owner — typically the virtual-sensor name) so
records and the ``gsn_thread_crashes_total`` metric carry the owner
label. Intentional crashes in tests are wrapped in
:meth:`expected`; the conftest fixture fails the suite on any
*unexpected* record (opt out with ``GSN_CRASH_WITNESS=0``).

Off by default: until :func:`enable` is called this module costs
nothing and ``threading.excepthook`` is untouched.
"""

from __future__ import annotations

import threading
import time
import traceback
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterator, List, Optional, Tuple


@dataclass(frozen=True)
class ThreadCrash:
    """One exception that escaped (or would have escaped) a thread."""

    thread_name: str
    owner: str
    exc_type: str
    message: str
    expected: bool
    supervised: bool
    timestamp: float
    trace: str = field(default="", compare=False)

    def render(self) -> str:
        kind = "supervised" if self.supervised else "escaped"
        return (f"{kind} crash in thread {self.thread_name!r} "
                f"(owner {self.owner!r}): {self.exc_type}: {self.message}")


class CrashWitness:
    """Records escaped thread exceptions, with owner attribution."""

    def __init__(self) -> None:
        # A plain leaf lock, deliberately outside the lock-witness
        # graph: the hook runs at arbitrary points (including while a
        # crashing thread holds witnessed locks), so it must never
        # participate in ordering checks itself.
        self._mutex = threading.Lock()
        self._watched: List[Tuple[str, str, Optional[Callable[
            [ThreadCrash], None]]]] = []  # guarded-by: _mutex
        self._observers: List[Callable[
            [ThreadCrash], None]] = []  # guarded-by: _mutex
        self.crashes: List[ThreadCrash] = []  # guarded-by: CrashWitness._mutex
        self._expected_depth = 0  # guarded-by: CrashWitness._mutex
        self._previous_hook: Optional[Callable] = None
        self.installed = False

    # -- installation --------------------------------------------------------

    def install(self) -> None:
        if self.installed:
            return
        self._previous_hook = threading.excepthook
        threading.excepthook = self._hook
        self.installed = True

    def uninstall(self) -> None:
        if not self.installed:
            return
        threading.excepthook = self._previous_hook or threading.__excepthook__
        self._previous_hook = None
        self.installed = False

    # -- registration --------------------------------------------------------

    def watch(self, name_prefix: str, owner: str,
              on_crash: Optional[Callable[[ThreadCrash], None]] = None
              ) -> None:
        """Attribute threads whose name starts with ``name_prefix`` to
        ``owner``; ``on_crash`` (if given) runs on each of their
        crashes, outside the witness mutex."""
        with self._mutex:
            self._watched.append((name_prefix, owner, on_crash))

    def unwatch(self, name_prefix: str) -> None:
        with self._mutex:
            self._watched = [w for w in self._watched
                             if w[0] != name_prefix]

    def add_observer(self, observer: Callable[[ThreadCrash], None]) -> None:
        """Run ``observer`` on *every* recorded crash (supervised or
        escaped), outside the witness mutex. The flight recorder hooks
        in here so crash records land in the black box."""
        with self._mutex:
            self._observers.append(observer)

    def remove_observer(self, observer: Callable[[ThreadCrash], None]
                        ) -> None:
        with self._mutex:
            self._observers = [o for o in self._observers
                               if o is not observer]

    # -- reporting paths -----------------------------------------------------

    def _hook(self, args) -> None:
        try:
            name = args.thread.name if args.thread is not None else "?"
            exc_type = getattr(args.exc_type, "__name__",
                               str(args.exc_type))
            trace = "".join(traceback.format_exception(
                args.exc_type, args.exc_value, args.exc_traceback))
            self._record(name, exc_type, str(args.exc_value or ""),
                         supervised=False, trace=trace)
        finally:
            previous = self._previous_hook or threading.__excepthook__
            previous(args)

    def report(self, thread_name: str, exc: BaseException,
               owner: Optional[str] = None) -> ThreadCrash:
        """Supervisor path: a caught crash that would otherwise have
        escaped (the supervisor handles recovery, the witness keeps
        the record)."""
        trace = "".join(traceback.format_exception(
            type(exc), exc, exc.__traceback__))
        return self._record(thread_name, type(exc).__name__, str(exc),
                            supervised=True, trace=trace, owner=owner)

    def _record(self, thread_name: str, exc_type: str, message: str,
                supervised: bool, trace: str = "",
                owner: Optional[str] = None) -> ThreadCrash:
        callback: Optional[Callable[[ThreadCrash], None]] = None
        with self._mutex:
            if owner is None:
                owner = "unknown"
                best = -1
                for prefix, watched_owner, cb in self._watched:
                    if thread_name.startswith(prefix) and len(prefix) > best:
                        owner, callback, best = watched_owner, cb, len(prefix)
            else:
                for prefix, watched_owner, cb in self._watched:
                    if watched_owner == owner and cb is not None:
                        callback = cb
                        break
            crash = ThreadCrash(
                thread_name=thread_name, owner=owner, exc_type=exc_type,
                message=message, expected=self._expected_depth > 0,
                supervised=supervised, timestamp=time.time(), trace=trace,
            )
            self.crashes.append(crash)
            observers = list(self._observers)
        if callback is not None:
            try:
                callback(crash)
            except Exception:  # gsn-lint: disable=GSN601
                # A broken on_crash callback must not mask the crash
                # being recorded (and the witness cannot witness
                # itself); see docs/reliability.md.
                pass
        for notify in observers:
            try:
                notify(crash)
            except Exception:  # gsn-lint: disable=GSN601
                pass
        return crash

    # -- test support --------------------------------------------------------

    @contextmanager
    def expected(self) -> Iterator[None]:
        """Crashes recorded inside this context are intentional (tests
        exercising the supervision path) and do not fail the suite."""
        with self._mutex:
            self._expected_depth += 1
        try:
            yield
        finally:
            with self._mutex:
                self._expected_depth -= 1

    def unexpected(self) -> List[ThreadCrash]:
        with self._mutex:
            return [c for c in self.crashes if not c.expected]

    def clear(self) -> None:
        with self._mutex:
            self.crashes = []

    # -- observability -------------------------------------------------------

    def counts_by_owner(self) -> Dict[str, int]:
        with self._mutex:
            out: Dict[str, int] = {}
            for crash in self.crashes:
                out[crash.owner] = out.get(crash.owner, 0) + 1
            return out

    def status(self) -> dict:
        with self._mutex:
            crashes = list(self.crashes)
        return {
            "installed": self.installed,
            "crashes": len(crashes),
            "unexpected": sum(1 for c in crashes if not c.expected),
            "by_owner": self.counts_by_owner(),
            "last": crashes[-1].render() if crashes else None,
        }


#: The installed witness, when enabled.
_active: Optional[CrashWitness] = None


def enable() -> CrashWitness:
    """Install a witness: escaped thread exceptions are recorded from
    now on (idempotent — an already-active witness is returned)."""
    global _active
    if _active is not None:
        return _active
    witness = CrashWitness()
    witness.install()
    _active = witness
    return witness


def disable() -> None:
    """Restore the previous ``threading.excepthook``."""
    global _active
    if _active is not None:
        _active.uninstall()
    _active = None


def active() -> Optional[CrashWitness]:
    return _active
