"""Runtime event-loop lag witness.

The static pass (:mod:`repro.analysis.asyncgraph`) proves no blocking
call is *reachable* from a coroutine; this module checks the *process*:
when enabled, every event loop the runtime starts (the async ingestion
gateway arms it automatically) runs a heartbeat task that measures how
late the loop wakes it up.  A healthy loop re-schedules the heartbeat
within a scheduling jitter of its interval; a loop stalled by a
synchronous call — exactly the defect class GSN901 flags statically —
wakes it late by the stall duration.  Any wake-up later than
``max_stall_ms`` is recorded as a :class:`LoopLagViolation` and the
suite-wide conftest fixture fails the run at teardown.

The witness is deliberately lock-free on the hot path: heartbeats run
on loop threads, and taking a sync lock there would be a GSN901
violation of our own rule.  ``violations.append`` and the counters rely
on GIL atomicity; the report is read from the main thread after the
loops have stopped.

Off by default: until :func:`enable` is called, :func:`active` returns
``None`` and loop owners skip the heartbeat entirely — zero cost.
Knobs (read by the conftest fixture): ``GSN_LOOP_WITNESS=0`` opts out,
``GSN_LOOP_WITNESS_MS`` overrides the stall ceiling.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass
from typing import List, Optional

#: Default stall ceiling, generous enough for CI scheduling noise but
#: far below any real blocking call (sleep, socket accept, DB commit).
DEFAULT_MAX_STALL_MS = 250.0
#: Heartbeat interval — the measurement granularity.
DEFAULT_INTERVAL_MS = 20.0


@dataclass(frozen=True)
class LoopLagViolation:
    """One heartbeat that woke up later than the stall ceiling."""

    loop_name: str
    lag_ms: float
    limit_ms: float

    def render(self) -> str:
        return (f"event loop {self.loop_name!r} stalled for "
                f"{self.lag_ms:.1f}ms (ceiling {self.limit_ms:.0f}ms) — "
                f"a synchronous call is blocking the loop")


class LoopWitness:
    """Measures event-loop scheduling lag via a heartbeat coroutine."""

    def __init__(self, max_stall_ms: float = DEFAULT_MAX_STALL_MS,
                 interval_ms: float = DEFAULT_INTERVAL_MS) -> None:
        self.max_stall_ms = float(max_stall_ms)
        self.interval_ms = float(interval_ms)
        # Written from loop threads without a lock (GIL-atomic appends /
        # stores); read from the main thread after the loops stop.
        self.violations: List[LoopLagViolation] = []
        self.ticks = 0
        self.worst_ms = 0.0

    def record(self, loop_name: str, lag_ms: float) -> None:
        self.ticks += 1
        if lag_ms > self.worst_ms:
            self.worst_ms = lag_ms
        if lag_ms > self.max_stall_ms:
            self.violations.append(
                LoopLagViolation(loop_name, lag_ms, self.max_stall_ms)
            )

    async def heartbeat(self, loop_name: str = "loop") -> None:
        """Run forever on the loop under test; cancel to stop.

        Sleeps ``interval_ms`` and reports how much later than the
        interval the loop actually woke it — that excess *is* the time
        something else monopolized the loop.
        """
        loop = asyncio.get_running_loop()
        interval = self.interval_ms / 1000.0
        while True:
            before = loop.time()
            await asyncio.sleep(interval)
            lag_ms = (loop.time() - before - interval) * 1000.0
            if lag_ms > 0:
                self.record(loop_name, lag_ms)
            else:
                self.ticks += 1

    def status(self) -> dict:
        return {
            "ticks": self.ticks,
            "worst_ms": round(self.worst_ms, 3),
            "max_stall_ms": self.max_stall_ms,
            "violations": [v.render() for v in self.violations],
        }


#: The installed witness, when enabled.
_active: Optional[LoopWitness] = None


def enable(max_stall_ms: float = DEFAULT_MAX_STALL_MS,
           interval_ms: float = DEFAULT_INTERVAL_MS) -> LoopWitness:
    """Install a witness: loops started from now on arm heartbeats."""
    global _active
    witness = LoopWitness(max_stall_ms=max_stall_ms,
                          interval_ms=interval_ms)
    _active = witness
    return witness


def disable() -> None:
    global _active
    _active = None


def active() -> Optional[LoopWitness]:
    return _active
