"""gsn-lint: deployment-time static analysis for GSN.

A multi-pass analyzer over virtual-sensor deployment descriptors (schema
inference & type checking, dependency-graph analysis, resource
estimation) plus a concurrency lint over Python sources following the
``# guarded-by:`` convention. See ``docs/analysis-reference.md`` for the
rule catalogue.

Programmatic entry points::

    from repro.analysis import analyze, analyze_descriptor, lint_files

    report = analyze(descriptors, registry=default_registry())
    if not report.ok:
        print(report.render())

Command line::

    gsn-lint examples/descriptors/*.xml
    python -m repro.analysis --self-check
"""

from repro.analysis.asyncgraph import AsyncAnalysis, analyze_async
from repro.analysis.callgraph import ProgramIndex
from repro.analysis.crashwitness import CrashWitness
from repro.analysis.flowgraph import FlowAnalysis, analyze_flow
from repro.analysis.lockgraph import (
    DeadlockAnalysis, LockGraph, analyze_deadlocks, expand_paths,
)
from repro.analysis.locklint import lint_file, lint_files, lint_source
from repro.analysis.lockwitness import LockOrderViolation, LockWitness
from repro.analysis.loopwitness import LoopLagViolation, LoopWitness
from repro.analysis.passes import (
    DEFAULT_MEMORY_BUDGET, analyze, analyze_descriptor,
    attach_descriptor_lines, estimate_window_memory, schema_check,
)
from repro.analysis.planpass import (
    AnnotatedPlan, DescriptorPlan, PlanVerdict, annotate_plan,
    descriptor_verdicts, plan_descriptor, source_query_verdict,
    structural_verdict,
)
from repro.analysis.racegraph import RaceAnalysis, analyze_races
from repro.analysis.racewitness import RaceWitness, RaceWitnessViolation
from repro.analysis.rules import (
    ERROR, WARNING, Finding, Report, Rule, catalogue, describe,
)
from repro.analysis.schema_infer import (
    SchemaInferencer, infer_output_schema, wrapper_relation_schema,
)

__all__ = [
    "DEFAULT_MEMORY_BUDGET", "ERROR", "WARNING",
    "AnnotatedPlan", "AsyncAnalysis", "CrashWitness", "DeadlockAnalysis",
    "DescriptorPlan",
    "Finding", "FlowAnalysis", "LockGraph", "LockOrderViolation",
    "LockWitness", "LoopLagViolation", "LoopWitness",
    "PlanVerdict", "ProgramIndex",
    "RaceAnalysis", "RaceWitness", "RaceWitnessViolation",
    "Report", "Rule", "SchemaInferencer",
    "analyze", "analyze_async", "analyze_deadlocks", "analyze_descriptor",
    "analyze_flow",
    "analyze_races", "annotate_plan", "attach_descriptor_lines",
    "catalogue", "describe", "descriptor_verdicts",
    "estimate_window_memory", "expand_paths",
    "infer_output_schema", "lint_file", "lint_files", "lint_source",
    "plan_descriptor", "schema_check", "source_query_verdict",
    "structural_verdict", "wrapper_relation_schema",
]
