"""Runtime race witness: guarded-attribute enforcement at mutate-time.

The static race pass (:mod:`repro.analysis.racegraph`, GSN8xx) proves
what it can about ``# guarded-by:`` declarations; this module enforces
the same declarations dynamically while the test suite runs — the
third runtime witness next to :mod:`repro.analysis.lockwitness`
(acquisition order) and :mod:`repro.analysis.crashwitness` (silent
thread deaths).

:func:`enable` does two things:

1. installs a *tracking* lock factory that wraps whatever factory is
   currently installed (usually the lock-order witness's), so
   :func:`repro.concurrency.new_lock` locks record which threads hold
   them right now.  Only locks whose registry names are declared
   guards of an instrumented class are wrapped — every other lock
   (windows, storage backends, clocks) passes through untouched, so
   the hot acquisition paths the witness never queries stay at native
   speed;
2. instruments the core runtime classes (:data:`CORE_CLASSES`): their
   declared guarded attributes are checked on every rebind
   (``__setattr__``) and — for list/dict/deque values — wrapped in
   checking proxies that assert on every in-place mutator
   (``append``, ``__setitem__``, ``update``, ...) that the declared
   guard is held by the mutating thread.

A violation raises :class:`RaceWitnessViolation` (an
``AssertionError``) at the exact mutate site — the data race becomes a
deterministic stack trace instead of a once-a-week corruption.  All
violations are also recorded on the witness; the conftest fixture
fails the session if any unexpected one occurred.  Use
:meth:`RaceWitness.expected` around deliberately racy test code.

Off by default: with the witness disabled nothing is patched and
``new_lock`` returns whatever it returned before — zero overhead.
Opt out of the suite-wide fixture with ``GSN_RACE_WITNESS=0``.

Limitations (by design, documented in docs/concurrency.md): only
declared guards on the instrumented classes are enforced; collection
proxies check mutators, not reads; attributes set before ``__init__``
returns are not checked (construction is single-threaded by
convention); locks not created through ``new_lock`` are invisible to
the tracker, so attributes guarded by them are skipped rather than
reported.
"""

from __future__ import annotations

import functools
import importlib
import inspect
import re
import threading
from collections import deque
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro import concurrency

#: The classes the suite-wide witness instruments: every major
#: subsystem that aggregates status or counts across threads.
CORE_CLASSES: Tuple[Tuple[str, str], ...] = (
    ("repro.vsensor.virtual_sensor", "VirtualSensor"),
    ("repro.vsensor.pool", "WorkerPool"),
    ("repro.network.peer", "PeerNode"),
    ("repro.notifications.manager", "NotificationManager"),
    ("repro.metrics.registry", "MetricsRegistry"),
    ("repro.metrics.flight", "FlightRecorder"),
)

#: ``self.<attr> ... = ...  # guarded-by: <lock>`` on one line — the
#: declaration form the static pass verifies (GSN806), reused here as
#: the single source of truth for what to instrument.
_DECLARATION = re.compile(
    r"self\.(\w+)\s*[:=][^#\n]*#\s*guarded-by:\s*([A-Za-z_][\w.]*)"
)

_READY = "_gsn_race_ready"


class RaceWitnessViolation(AssertionError):
    """A guarded attribute was mutated without its guard held."""


@dataclass(frozen=True)
class Violation:
    """One recorded mutate-without-guard event."""

    cls: str
    attr: str
    guard: str
    thread: str
    expected: bool


def declared_guards(cls: type) -> Dict[str, str]:
    """``{attr: lock attribute}`` parsed from the class's source.

    Declarations may name the lock bare (``_lock``) or by its registry
    name (``WorkerPool._lock``); the tail is the attribute the lock is
    stored in, which is all the runtime check needs.
    """
    try:
        source = inspect.getsource(cls)
    except (OSError, TypeError):
        return {}
    guards: Dict[str, str] = {}
    for match in _DECLARATION.finditer(source):
        attr, lock = match.group(1), match.group(2)
        guards.setdefault(attr, lock.rsplit(".", 1)[-1])
    return guards


def declared_guard_names(cls: type) -> set:
    """Registry names of the locks guarding ``cls``'s declared state.

    These are the only names the tracking factory needs to wrap; a
    bare declaration (``# guarded-by: _lock``) is qualified with the
    class name, matching the registry convention.
    """
    try:
        source = inspect.getsource(cls)
    except (OSError, TypeError):
        return set()
    names = set()
    for match in _DECLARATION.finditer(source):
        lock = match.group(2)
        names.add(lock if "." in lock else f"{cls.__name__}.{lock}")
    return names


# --------------------------------------------------------------------------
# held-lock tracking
# --------------------------------------------------------------------------

_held = threading.local()


def _held_ids() -> Dict[int, int]:
    ids = getattr(_held, "ids", None)
    if ids is None:
        ids = _held.ids = {}
    return ids


class TrackingLock:
    """Delegates to the wrapped lock and tracks per-thread holds.

    Wraps whatever the previously installed factory produces (a plain
    stdlib lock, or the lock-order witness's instrumented lock) so the
    witnesses compose: ordering is asserted by the inner lock, holds
    are recorded here.
    """

    __slots__ = ("name", "_inner")

    def __init__(self, name: str, inner: Any) -> None:
        self.name = name
        self._inner = inner

    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        ok = self._inner.acquire(blocking, timeout)
        if ok:
            ids = _held_ids()
            ids[id(self)] = ids.get(id(self), 0) + 1
        return ok

    def release(self) -> None:
        ids = _held_ids()
        count = ids.get(id(self), 0)
        if count <= 1:
            ids.pop(id(self), None)
        else:
            ids[id(self)] = count - 1
        self._inner.release()

    def held_by_current_thread(self) -> bool:
        return id(self) in _held_ids()

    def locked(self) -> bool:
        locked = getattr(self._inner, "locked", None)
        return bool(locked()) if callable(locked) else False

    # ``with lock:`` is the hot path — one inner acquire plus two
    # thread-local dict operations, no delegation through acquire().
    def __enter__(self) -> "TrackingLock":
        self._inner.acquire()
        ids = getattr(_held, "ids", None)
        if ids is None:
            ids = _held.ids = {}
        key = id(self)
        ids[key] = ids.get(key, 0) + 1
        return self

    def __exit__(self, *exc_info: object) -> bool:
        ids = _held.ids
        key = id(self)
        count = ids[key]
        if count <= 1:
            del ids[key]
        else:
            ids[key] = count - 1
        self._inner.release()
        return False

    def __repr__(self) -> str:
        return f"<TrackingLock {self.name} inner={self._inner!r}>"


# --------------------------------------------------------------------------
# guarded collection proxies
# --------------------------------------------------------------------------

def _checked(method: Callable) -> Callable:
    @functools.wraps(method)
    def wrapper(self, *args: Any, **kwargs: Any) -> Any:
        gsn = self._gsn
        if gsn is not None:
            witness, owner, attr, lock_attr = gsn
            witness._check(owner, attr, lock_attr)
        return method(self, *args, **kwargs)
    return wrapper


class GuardedList(list):
    """A list that asserts its owner's guard on every mutator."""

    _gsn: Optional[tuple] = None

    append = _checked(list.append)
    extend = _checked(list.extend)
    insert = _checked(list.insert)
    remove = _checked(list.remove)
    pop = _checked(list.pop)
    clear = _checked(list.clear)
    sort = _checked(list.sort)
    reverse = _checked(list.reverse)
    __setitem__ = _checked(list.__setitem__)
    __delitem__ = _checked(list.__delitem__)
    __iadd__ = _checked(list.__iadd__)


class GuardedDict(dict):
    """A dict that asserts its owner's guard on every mutator."""

    _gsn: Optional[tuple] = None

    pop = _checked(dict.pop)
    popitem = _checked(dict.popitem)
    clear = _checked(dict.clear)
    update = _checked(dict.update)
    setdefault = _checked(dict.setdefault)
    __setitem__ = _checked(dict.__setitem__)
    __delitem__ = _checked(dict.__delitem__)


class GuardedDeque(deque):
    """A deque that asserts its owner's guard on every mutator."""

    _gsn: Optional[tuple] = None

    append = _checked(deque.append)
    appendleft = _checked(deque.appendleft)
    extend = _checked(deque.extend)
    extendleft = _checked(deque.extendleft)
    pop = _checked(deque.pop)
    popleft = _checked(deque.popleft)
    remove = _checked(deque.remove)
    clear = _checked(deque.clear)
    rotate = _checked(deque.rotate)
    __setitem__ = _checked(deque.__setitem__)
    __delitem__ = _checked(deque.__delitem__)
    __iadd__ = _checked(deque.__iadd__)


#: concrete built-in -> checking proxy; consulted on every guarded
#: rebind, so a module constant rather than a per-call literal.
_PROXY_TYPES: Dict[type, type] = {
    list: GuardedList, dict: GuardedDict, deque: GuardedDeque,
}


# --------------------------------------------------------------------------
# the witness
# --------------------------------------------------------------------------

@dataclass
class _Saved:
    init: Callable
    setattr_: Optional[Callable]
    guards: Dict[str, str]


class RaceWitness:
    """Patches classes so guarded-attribute mutations assert the guard."""

    def __init__(self, strict: bool = True) -> None:
        self.strict = strict
        self.violations: List[Violation] = []
        self.checks = 0  # guard checks performed (for the bench gate)
        # Plain stdlib lock on purpose: a leaf outside the witnessed
        # lock graph, like the crash witness's.
        self._mutex = threading.Lock()
        self._expected_depth = 0
        self._instrumented: Dict[type, _Saved] = {}
        #: registry names the tracking factory must wrap — the declared
        #: guards of every instrumented class. Grows as classes are
        #: instrumented; consulted live by the factory installed in
        #: :func:`enable`.
        self.tracked_names: set = set()

    # -- the check ---------------------------------------------------------

    def _check(self, owner: Any, attr: str, lock_attr: str) -> None:
        self.checks += 1
        lock = owner.__dict__.get(lock_attr)
        if type(lock) is not TrackingLock:
            return  # untracked lock (created before enable): no verdict
        if id(lock) in _held_ids():
            return
        self._violation(owner, attr, lock, lock_attr)

    def _violation(self, owner: Any, attr: str, lock: "TrackingLock",
                   lock_attr: str) -> None:
        """The slow path: record the event and (strict) raise."""
        cls_name = type(owner).__name__
        with self._mutex:
            expected = self._expected_depth > 0
            self.violations.append(Violation(
                cls_name, attr, lock.name,
                threading.current_thread().name, expected,
            ))
        if self.strict and not expected:
            raise RaceWitnessViolation(
                f"race witness: {cls_name}.{attr} mutated on thread "
                f"{threading.current_thread().name!r} without holding its "
                f"declared guard {lock.name} — wrap the mutation in "
                f"'with self.{lock_attr}:'"
            )

    @contextmanager
    def expected(self):
        """Mark deliberate violations (tests of the witness itself)."""
        with self._mutex:
            self._expected_depth += 1
        try:
            yield self
        finally:
            with self._mutex:
                self._expected_depth -= 1

    def unexpected(self) -> List[Violation]:
        with self._mutex:
            return [v for v in self.violations if not v.expected]

    # -- instrumentation ---------------------------------------------------

    def _wrap(self, owner: Any, attr: str, lock_attr: str,
              value: Any) -> Any:
        proxy_type = _PROXY_TYPES.get(type(value))
        if proxy_type is None:
            return value
        if proxy_type is GuardedDeque:
            proxy = GuardedDeque(value, maxlen=value.maxlen)
        else:
            proxy = proxy_type(value)
        proxy._gsn = (self, owner, attr, lock_attr)
        return proxy

    def instrument(self, cls: type,
                   guards: Optional[Dict[str, str]] = None) -> None:
        """Patch ``cls`` so its declared guarded attributes are checked.

        ``guards`` (``{attr: lock attribute}``) defaults to the
        ``# guarded-by:`` declarations parsed from the class source.
        """
        if cls in self._instrumented:
            return
        if guards is None:
            guards = declared_guards(cls)
        if not guards:
            return
        self.tracked_names |= declared_guard_names(cls)
        witness = self
        saved = _Saved(cls.__init__, cls.__dict__.get("__setattr__"),
                       dict(guards))
        original_setattr = cls.__setattr__

        def checked_setattr(obj: Any, name: str, value: Any) -> None:
            # Hot on every pipeline trigger: the unguarded-attribute
            # and not-yet-armed exits must stay a dict probe each, and
            # the guarded exit avoids the _wrap call for scalars.
            lock_attr = guards.get(name)
            if lock_attr is not None:
                d = obj.__dict__
                if _READY in d:
                    witness.checks += 1
                    lock = d.get(lock_attr)
                    if (type(lock) is TrackingLock
                            and id(lock) not in _held_ids()):
                        witness._violation(obj, name, lock, lock_attr)
                    if value.__class__ in _PROXY_TYPES:
                        value = witness._wrap(obj, name, lock_attr, value)
            original_setattr(obj, name, value)

        @functools.wraps(saved.init)
        def witnessed_init(obj: Any, *args: Any, **kwargs: Any) -> None:
            saved.init(obj, *args, **kwargs)
            if type(obj).__init__ is not witnessed_init:
                return  # subclass __init__ still running: stay silent
            for attr, lock_attr in guards.items():
                value = obj.__dict__.get(attr)
                wrapped = witness._wrap(obj, attr, lock_attr, value)
                if wrapped is not value:
                    object.__setattr__(obj, attr, wrapped)
            object.__setattr__(obj, _READY, True)

        cls.__setattr__ = checked_setattr  # type: ignore[method-assign]
        cls.__init__ = witnessed_init  # type: ignore[method-assign]
        self._instrumented[cls] = saved

    def restore(self, cls: type) -> None:
        saved = self._instrumented.pop(cls, None)
        if saved is None:
            return
        cls.__init__ = saved.init  # type: ignore[method-assign]
        if saved.setattr_ is not None:
            cls.__setattr__ = saved.setattr_  # type: ignore[method-assign]
        else:
            del cls.__setattr__

    def restore_all(self) -> None:
        for cls in list(self._instrumented):
            self.restore(cls)


# --------------------------------------------------------------------------
# module-level enable/disable (the conftest surface)
# --------------------------------------------------------------------------

_active: Optional[RaceWitness] = None
_previous_factory: Optional[Callable[[str, bool], object]] = None


def enable(strict: bool = True) -> RaceWitness:
    """Install the tracking factory and instrument the core classes.

    Idempotent: a second ``enable`` returns the active witness.  Locks
    created *before* enable are invisible to the tracker; instances of
    the core classes constructed before enable keep their original
    behavior (only construction after enable arms the checks).
    """
    global _active, _previous_factory
    if _active is not None:
        return _active
    witness = RaceWitness(strict=strict)
    _previous_factory = concurrency.current_factory()
    previous = _previous_factory

    def tracking_factory(name: str, reentrant: bool = False) -> object:
        if previous is not None:
            inner = previous(name, reentrant)
        else:
            inner = threading.RLock() if reentrant else threading.Lock()
        # Wrap only declared guards of instrumented classes; the
        # tracker never queries any other lock, so wrapping them would
        # be pure overhead on the hottest acquisition paths.
        if name in witness.tracked_names:
            return TrackingLock(name, inner)
        return inner

    concurrency.install_witness(tracking_factory)
    for module_name, cls_name in CORE_CLASSES:
        module = importlib.import_module(module_name)
        witness.instrument(getattr(module, cls_name))
    _active = witness
    return witness


def disable() -> None:
    """Undo :func:`enable`: restore classes and the previous factory."""
    global _active, _previous_factory
    if _active is None:
        return
    _active.restore_all()
    concurrency.install_witness(_previous_factory)
    _previous_factory = None
    _active = None


def active() -> Optional[RaceWitness]:
    return _active
