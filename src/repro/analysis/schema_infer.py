"""Schema and type inference over SQL ASTs.

Given relation schemas for every table a query may read (column name →
:class:`~repro.datatypes.DataType`, ``None`` when statically unknown),
this module derives the output schema of a ``SELECT`` statement and
reports unknown columns, unknown functions, and type-mismatched
comparisons/joins as findings. Inference mirrors the executor: output
column names come from :mod:`repro.sqlengine.introspect` so the derived
schema matches the relation the engine would actually produce.

Unknown types propagate silently (``None``): the analyzer only flags
what it can *prove* wrong, never what it merely cannot see.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.datatypes import DataType, sql_affinity
from repro.exceptions import SchemaError
from repro.sqlengine.ast_nodes import (
    AGGREGATE_FUNCTIONS, BetweenExpr, BinaryOp, CaseExpr, CastExpr,
    ColumnRef, ExistsExpr, FunctionCall, InExpr, IsNullExpr, Join,
    LikeExpr, Literal, Node, ScalarSubquery, SelectStatement, Star,
    SubqueryRef, TableRef, UnaryOp,
)
from repro.sqlengine.functions import SCALAR_FUNCTIONS
from repro.sqlengine.introspect import dedupe_columns, expression_name
from repro.streams.schema import TIMED_FIELD, StreamSchema

from repro.analysis.rules import Report

#: An inferred relation schema: ordered column name -> type (None=unknown).
RelSchema = Dict[str, Optional[DataType]]

_COMPARISONS = {"=", "==", "!=", "<>", "<", "<=", ">", ">="}
_ARITHMETIC = {"+", "-", "*", "/", "%"}
_NUMERIC = {DataType.INTEGER, DataType.DOUBLE, DataType.BOOLEAN,
            DataType.TIMESTAMP}

#: Return-type rules for scalar functions: a DataType, "arg" (same as the
#: first argument), or None (statically unknown).
_SCALAR_RETURNS: Dict[str, object] = {
    "abs": "arg", "round": "arg", "mod": "arg",
    "floor": DataType.INTEGER, "ceil": DataType.INTEGER,
    "ceiling": DataType.INTEGER, "sign": DataType.INTEGER,
    "length": DataType.INTEGER, "instr": DataType.INTEGER,
    "octet_length": DataType.INTEGER,
    "sqrt": DataType.DOUBLE, "power": DataType.DOUBLE,
    "upper": DataType.VARCHAR, "lower": DataType.VARCHAR,
    "trim": DataType.VARCHAR, "ltrim": DataType.VARCHAR,
    "rtrim": DataType.VARCHAR, "substr": DataType.VARCHAR,
    "substring": DataType.VARCHAR, "replace": DataType.VARCHAR,
    "concat": DataType.VARCHAR,
    "coalesce": "arg", "ifnull": "arg", "nullif": "arg",
}

#: Scalar functions whose arguments must be numeric.
_NUMERIC_ARG_FUNCTIONS = {"abs", "round", "floor", "ceil", "ceiling",
                          "sqrt", "power", "mod", "sign"}

#: Argument-count rules: ``(min, max)``; ``max=None`` means variadic.
#: Mirrors the callables in :mod:`repro.sqlengine.functions` — a call
#: that violates these would raise SQLExecutionError on the first row.
_SCALAR_ARITY: Dict[str, Tuple[int, Optional[int]]] = {
    "abs": (1, 1), "floor": (1, 1), "ceil": (1, 1), "ceiling": (1, 1),
    "sqrt": (1, 1), "sign": (1, 1), "upper": (1, 1), "lower": (1, 1),
    "length": (1, 1), "trim": (1, 1), "ltrim": (1, 1), "rtrim": (1, 1),
    "octet_length": (1, 1),
    "round": (1, 2),
    "power": (2, 2), "mod": (2, 2), "instr": (2, 2), "nullif": (2, 2),
    "ifnull": (2, 2),
    "substr": (2, 3), "substring": (2, 3),
    "replace": (3, 3),
    "concat": (1, None), "coalesce": (1, None),
}


def _arity_text(low: int, high: Optional[int]) -> str:
    if high is None:
        return f"at least {low}"
    if low == high:
        return str(low)
    return f"{low}-{high}"

_AGGREGATE_RETURNS: Dict[str, object] = {
    "avg": DataType.DOUBLE, "stddev": DataType.DOUBLE,
    "variance": DataType.DOUBLE, "median": DataType.DOUBLE,
    "count": DataType.INTEGER,
    "sum": "arg", "min": "arg", "max": "arg",
    "first": "arg", "last": "arg",
    "group_concat": DataType.VARCHAR,
}

#: Aggregates whose argument must be numeric.
_NUMERIC_AGGREGATES = {"avg", "sum", "stddev", "variance", "median"}


def wrapper_relation_schema(schema: StreamSchema) -> RelSchema:
    """The relation a source window exposes as ``WRAPPER``: the wrapper's
    fields plus the implicit ``timed`` timestamp column."""
    relation: RelSchema = {f.name: f.type for f in schema}
    relation[TIMED_FIELD] = DataType.TIMESTAMP
    return relation


def type_group(dtype: DataType) -> str:
    if dtype in _NUMERIC:
        return "numeric"
    return dtype.value  # varchar / binary form their own groups


def comparable(left: Optional[DataType], right: Optional[DataType]) -> bool:
    """Whether a comparison between the two types can ever be true without
    a runtime type error. Unknown types compare with anything."""
    if left is None or right is None:
        return True
    return type_group(left) == type_group(right)


class _Scope:
    """Resolution scope: the FROM bindings of a query, chained outward for
    correlated subqueries (inner-first lookup, like the executor's Env)."""

    def __init__(self, bindings: "Dict[str, RelSchema]",
                 outer: "Optional[_Scope]" = None) -> None:
        self.bindings = bindings
        self.outer = outer

    def resolve(self, ref: ColumnRef) -> Tuple[bool, List[str],
                                               Optional[DataType]]:
        """Resolve a column reference.

        Returns ``(found, bindings_that_have_it, type)``; more than one
        binding means the unqualified reference is ambiguous (the
        executor takes the first, and so do we).
        """
        scope: Optional[_Scope] = self
        while scope is not None:
            if ref.table is not None:
                relation = scope.bindings.get(ref.table)
                if relation is not None:
                    if ref.name in relation:
                        return True, [ref.table], relation[ref.name]
                    return False, [ref.table], None
            else:
                hits = [
                    binding for binding, relation in scope.bindings.items()
                    if ref.name in relation
                ]
                if hits:
                    return True, hits, scope.bindings[hits[0]][ref.name]
            scope = scope.outer
        return False, [], None

    def known_columns(self) -> List[str]:
        names: List[str] = []
        for relation in self.bindings.values():
            for column in relation:
                if column not in names:
                    names.append(column)
        return names


class SchemaInferencer:
    """Infers output schemas and type-checks expressions, accumulating
    findings into a :class:`Report` instead of raising."""

    def __init__(self, tables: Dict[str, RelSchema], report: Report,
                 context: str, source: str = "") -> None:
        self.tables = tables
        self.report = report
        self.context = context
        self.source = source

    def _add(self, rule_id: str, message: str) -> None:
        self.report.add(rule_id, message, location=self.context,
                        source=self.source)

    # -- statement level ---------------------------------------------------

    def infer_statement(self, statement: SelectStatement,
                        outer: Optional[_Scope] = None
                        ) -> Optional[RelSchema]:
        """Infer the output schema of a SELECT, or ``None`` when the FROM
        clause is unresolvable (findings are reported either way)."""
        scope = self._build_scope(statement, outer)
        if scope is None:
            return None

        for clause in (statement.where, statement.having):
            if clause is not None:
                self.infer_expression(clause, scope)
        for expr in statement.group_by:
            self.infer_expression(expr, scope)
        for order in statement.order_by:
            # ORDER BY may name an output column or a positional index;
            # only check obvious expression forms.
            if not isinstance(order.expression, (ColumnRef, Literal)):
                self.infer_expression(order.expression, scope)

        names: List[str] = []
        types: List[Optional[DataType]] = []
        for item in statement.items:
            expr = item.expression
            if isinstance(expr, Star):
                for column, dtype in self._expand_star(expr, scope):
                    names.append(column)
                    types.append(dtype)
                continue
            dtype = self.infer_expression(expr, scope)
            names.append(item.alias or expression_name(expr))
            types.append(dtype)

        for op in statement.set_operations:
            self.infer_statement(op.right, outer)

        deduped = dedupe_columns(names)
        return dict(zip(deduped, types))

    def _build_scope(self, statement: SelectStatement,
                     outer: Optional[_Scope]) -> Optional[_Scope]:
        bindings: Dict[str, RelSchema] = {}
        resolvable = True
        join_conditions: List[Node] = []

        def collect(item: Node) -> None:
            nonlocal resolvable
            if isinstance(item, TableRef):
                relation = self.tables.get(item.name)
                if relation is None:
                    self._add(
                        "GSN102",
                        f"query reads unknown table {item.name!r}; "
                        f"known: {sorted(self.tables)}",
                    )
                    resolvable = False
                else:
                    bindings[item.binding] = relation
            elif isinstance(item, SubqueryRef):
                inner = self.infer_statement(item.subquery, outer)
                if inner is None:
                    resolvable = False
                else:
                    bindings[item.alias] = inner
            elif isinstance(item, Join):
                collect(item.left)
                collect(item.right)
                if item.condition is not None:
                    join_conditions.append(item.condition)

        for item in statement.from_items:
            collect(item)
        if not resolvable:
            return None
        scope = _Scope(bindings, outer)
        for condition in join_conditions:
            self.infer_expression(condition, scope)
        return scope

    def _expand_star(self, star: Star, scope: _Scope
                     ) -> List[Tuple[str, Optional[DataType]]]:
        columns: List[Tuple[str, Optional[DataType]]] = []
        if star.table is not None:
            relation = scope.bindings.get(star.table)
            if relation is None:
                self._add("GSN102",
                          f"{star.table}.* references unknown table "
                          f"{star.table!r}")
                return columns
            return list(relation.items())
        for relation in scope.bindings.values():
            columns.extend(relation.items())
        return columns

    # -- expression level --------------------------------------------------

    def infer_expression(self, node: Node, scope: _Scope
                         ) -> Optional[DataType]:
        if isinstance(node, Literal):
            try:
                return sql_affinity(node.value)
            except SchemaError:
                return None
        if isinstance(node, ColumnRef):
            return self._infer_column(node, scope)
        if isinstance(node, UnaryOp):
            operand = self.infer_expression(node.operand, scope)
            if node.op in ("-", "+"):
                if operand is not None and operand not in _NUMERIC:
                    self._add("GSN103",
                              f"unary {node.op!r} on non-numeric "
                              f"{operand.value} operand")
                return operand
            return DataType.BOOLEAN  # not
        if isinstance(node, BinaryOp):
            return self._infer_binary(node, scope)
        if isinstance(node, FunctionCall):
            return self._infer_call(node, scope)
        if isinstance(node, InExpr):
            operand = self.infer_expression(node.operand, scope)
            if node.options:
                for option in node.options:
                    option_type = self.infer_expression(option, scope)
                    if not comparable(operand, option_type):
                        self._add(
                            "GSN103",
                            f"IN list mixes {operand.value} with "  # type: ignore[union-attr]
                            f"{option_type.value}",  # type: ignore[union-attr]
                        )
            if node.subquery is not None:
                self.infer_statement(node.subquery, scope)
            return DataType.BOOLEAN
        if isinstance(node, BetweenExpr):
            operand = self.infer_expression(node.operand, scope)
            for bound in (node.low, node.high):
                bound_type = self.infer_expression(bound, scope)
                if not comparable(operand, bound_type):
                    self._add(
                        "GSN103",
                        f"BETWEEN bound type {bound_type.value} does not "  # type: ignore[union-attr]
                        f"match operand type {operand.value}",  # type: ignore[union-attr]
                    )
            return DataType.BOOLEAN
        if isinstance(node, LikeExpr):
            operand = self.infer_expression(node.operand, scope)
            self.infer_expression(node.pattern, scope)
            if operand is DataType.BINARY:
                self._add("GSN103", "LIKE on a binary operand")
            return DataType.BOOLEAN
        if isinstance(node, IsNullExpr):
            self.infer_expression(node.operand, scope)
            return DataType.BOOLEAN
        if isinstance(node, ExistsExpr):
            self.infer_statement(node.subquery, scope)
            return DataType.BOOLEAN
        if isinstance(node, ScalarSubquery):
            inner = self.infer_statement(node.subquery, scope)
            if inner:
                return next(iter(inner.values()))
            return None
        if isinstance(node, CastExpr):
            self.infer_expression(node.operand, scope)
            try:
                return DataType.parse(node.target)
            except SchemaError:
                return None
        if isinstance(node, CaseExpr):
            if node.operand is not None:
                self.infer_expression(node.operand, scope)
            result: Optional[DataType] = None
            for condition, branch in node.branches:
                self.infer_expression(condition, scope)
                branch_type = self.infer_expression(branch, scope)
                result = result or branch_type
            if node.default is not None:
                default_type = self.infer_expression(node.default, scope)
                result = result or default_type
            return result
        return None

    def _infer_column(self, ref: ColumnRef, scope: _Scope
                      ) -> Optional[DataType]:
        found, hits, dtype = scope.resolve(ref)
        if not found:
            if hits:  # qualified reference into a known table
                relation = scope.bindings.get(hits[0], {})
                self._add(
                    "GSN101",
                    f"unknown column {ref!s}; {hits[0]!r} has: "
                    f"{', '.join(relation) or '(none)'}",
                )
            else:
                self._add(
                    "GSN101",
                    f"unknown column {ref!s}; known: "
                    f"{', '.join(scope.known_columns()) or '(none)'}",
                )
            return None
        if len(hits) > 1:
            self._add(
                "GSN110",
                f"unqualified column {ref.name!r} exists in "
                f"{sorted(hits)}; using {hits[0]!r}",
            )
        return dtype

    def _infer_binary(self, node: BinaryOp, scope: _Scope
                      ) -> Optional[DataType]:
        left = self.infer_expression(node.left, scope)
        right = self.infer_expression(node.right, scope)
        op = node.op
        if op in _COMPARISONS:
            if not comparable(left, right):
                self._add(
                    "GSN103",
                    f"comparison {left.value} {op} {right.value} "  # type: ignore[union-attr]
                    f"can never hold",
                )
            return DataType.BOOLEAN
        if op in ("and", "or"):
            return DataType.BOOLEAN
        if op == "||":
            return DataType.VARCHAR
        if op in _ARITHMETIC:
            for side, name in ((left, "left"), (right, "right")):
                if side is not None and side not in _NUMERIC:
                    self._add(
                        "GSN103",
                        f"arithmetic {op!r} on non-numeric {name} operand "
                        f"({side.value})",
                    )
            if op == "/":
                return DataType.DOUBLE
            if left is DataType.DOUBLE or right is DataType.DOUBLE:
                return DataType.DOUBLE
            if left is None or right is None:
                return None
            return DataType.INTEGER
        return None

    def _infer_call(self, node: FunctionCall, scope: _Scope
                    ) -> Optional[DataType]:
        name = node.name
        arg_types = [self.infer_expression(arg, scope) for arg in node.args]
        first = arg_types[0] if arg_types else None

        if name in AGGREGATE_FUNCTIONS:
            if name in _NUMERIC_AGGREGATES and first is not None \
                    and first not in _NUMERIC:
                self._add("GSN103",
                          f"aggregate {name}() over non-numeric "
                          f"{first.value} argument")
            if node.star and name == "count":
                return DataType.INTEGER
            if not node.star and len(node.args) != 1:
                star_hint = (" (or count(*))" if name == "count" else "")
                self._add("GSN111",
                          f"{name}() takes 1 argument{star_hint}, "
                          f"got {len(node.args)}")
            returns = _AGGREGATE_RETURNS.get(name)
            return first if returns == "arg" else returns  # type: ignore[return-value]

        if name not in SCALAR_FUNCTIONS:
            self._add("GSN104",
                      f"unknown function {name}(); known functions: "
                      f"{', '.join(sorted(SCALAR_FUNCTIONS))}")
            return None
        low, high = _SCALAR_ARITY.get(name, (0, None))
        if len(node.args) < low or (high is not None
                                    and len(node.args) > high):
            self._add("GSN111",
                      f"{name}() takes {_arity_text(low, high)} "
                      f"argument(s), got {len(node.args)}")
        if name in _NUMERIC_ARG_FUNCTIONS and first is not None \
                and first not in _NUMERIC:
            self._add("GSN103",
                      f"{name}() expects a numeric argument, got "
                      f"{first.value}")
        returns = _SCALAR_RETURNS.get(name)
        if returns == "arg":
            return first
        return returns  # type: ignore[return-value]


def infer_output_schema(statement: SelectStatement,
                        tables: Dict[str, RelSchema],
                        report: Report, context: str,
                        source: str = "") -> Optional[RelSchema]:
    """Convenience wrapper: infer ``statement``'s output schema over
    ``tables``, reporting findings into ``report``."""
    inferencer = SchemaInferencer(tables, report, context, source)
    return inferencer.infer_statement(statement)
